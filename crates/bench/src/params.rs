//! Table 3 — parameter ranges and defaults, the single source of truth for
//! every harness binary.
//!
//! `lg` and `ε` are expressed as a fraction of the workload's maximal
//! extent, exactly as in the paper. The temporal constraints are scaled to
//! the harness's shorter streams (the paper's K = 120…240 presumes half a
//! million snapshots); each binary prints both the paper's range and the
//! scaled one it actually ran.

use icpe_types::Constraints;

/// The three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// GeoLife-shaped synthetic (mixed 1–5 s sampling, anchor commutes).
    GeoLife,
    /// Taxi-shaped synthetic (fleet on a road network, hot spots, 5 s).
    Taxi,
    /// Brinkhoff-style network movement (1 s sampling).
    Brinkhoff,
}

impl Dataset {
    /// All three datasets.
    pub const ALL: [Dataset; 3] = [Dataset::GeoLife, Dataset::Taxi, Dataset::Brinkhoff];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::GeoLife => "GeoLife",
            Dataset::Taxi => "Taxi",
            Dataset::Brinkhoff => "Brinkhoff",
        }
    }
}

/// Harness parameters (Table 3, scaled).
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Number of moving objects per dataset (paper: 10 000–20 151).
    pub objects: usize,
    /// Stream length in ticks (paper: 92 645–502 559 snapshots).
    pub ticks: u32,
    /// ε as a fraction of the spatial extent — paper range
    /// {0.02%, …, 0.12%}, default 0.06%. Scaled ×10 here because the scaled
    /// workloads have ~100× fewer objects over the same relative area (the
    /// paper's absolute densities would make every cluster empty).
    pub eps_fractions: Vec<f64>,
    /// Default ε fraction.
    pub eps_default: f64,
    /// lg as a fraction of the extent — paper range {0.2%, …, 6.4%}.
    pub lg_fractions: Vec<f64>,
    /// Default lg fraction.
    pub lg_default: f64,
    /// minPts (paper fixes 10; scaled to the smaller clusters here).
    pub min_pts: usize,
    /// M sweep (paper {5,10,15,20,25}).
    pub m_values: Vec<usize>,
    /// K sweep (paper {120,…,240}).
    pub k_values: Vec<usize>,
    /// L sweep (paper {10,…,50}).
    pub l_values: Vec<usize>,
    /// G sweep (paper {10,…,50}).
    pub g_values: Vec<u32>,
    /// Object-ratio sweep Or (paper {10%,…,100%}).
    pub or_values: Vec<f64>,
    /// Parallelism sweep N (paper {1,…,10} machines).
    pub n_values: Vec<usize>,
    /// Default constraints CP(M, K, L, G), scaled.
    pub constraints: Constraints,
}

impl Default for BenchParams {
    fn default() -> Self {
        let objects = env_usize("ICPE_BENCH_OBJECTS", 400);
        let ticks = env_usize("ICPE_BENCH_TICKS", 200) as u32;
        BenchParams {
            objects,
            ticks,
            eps_fractions: vec![0.002, 0.004, 0.006, 0.008, 0.010, 0.012],
            eps_default: 0.006,
            lg_fractions: vec![0.002, 0.004, 0.008, 0.016, 0.032, 0.064],
            lg_default: 0.016,
            min_pts: 4,
            m_values: vec![3, 4, 5, 6, 8],
            k_values: vec![12, 15, 18, 21, 24],
            l_values: vec![3, 4, 6, 8, 10],
            g_values: vec![2, 3, 4, 5, 6],
            or_values: vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            n_values: vec![1, 2, 4, 6, 8, 10],
            constraints: Constraints::new(4, 18, 6, 4).expect("valid defaults"),
        }
    }
}

impl BenchParams {
    /// Prints the Table-3 header with paper-vs-scaled values.
    pub fn print_header(&self, title: &str) {
        println!("================================================================");
        println!("{title}");
        println!("================================================================");
        println!(
            "scaled workload: {} objects × {} ticks per dataset",
            self.objects, self.ticks
        );
        println!(
            "defaults: eps = {:.3}% of extent (paper 0.06%), lg = {:.1}% (paper 1.6%), minPts = {} (paper 10)",
            self.eps_default * 100.0,
            self.lg_default * 100.0,
            self.min_pts
        );
        let c = &self.constraints;
        println!(
            "constraints: CP(M={}, K={}, L={}, G={})  [paper defaults: M=10, K=180, L=30, G=30, scaled to stream length]",
            c.m(), c.k(), c.l(), c.g()
        );
        println!("----------------------------------------------------------------");
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let p = BenchParams::default();
        assert!(p.eps_fractions.contains(&p.eps_default));
        assert!(p.lg_fractions.contains(&p.lg_default));
        assert!(p.constraints.k() >= p.constraints.l());
        assert_eq!(Dataset::ALL.len(), 3);
        assert_eq!(Dataset::Taxi.name(), "Taxi");
    }
}
