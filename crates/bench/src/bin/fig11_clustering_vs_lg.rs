//! Figure 11 — clustering latency and throughput vs. the grid cell width
//! `lg`, for RJC / SRJ / GDC on all three datasets.
//!
//! Expected shape (paper): RJC and SRJ have a U-shaped latency curve (too
//! many partitions when lg is small, too little pruning when large); GDC is
//! flat — it does not use lg at all.

use icpe_bench::{build_traces, extent, measure_clustering, BenchParams, Dataset};
use icpe_cluster::{GdcClusterer, RjcClusterer, SnapshotClusterer, SrjClusterer};
use icpe_types::{DbscanParams, DistanceMetric};

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 11 — Clustering Performance vs. lg");

    for dataset in Dataset::ALL {
        let traces = build_traces(dataset, &params);
        let snapshots = traces.to_snapshots();
        let ext = extent(&traces);
        let eps = params.eps_default * ext;
        let dbscan = DbscanParams::new(eps, params.min_pts).expect("valid params");
        let metric = DistanceMetric::Chebyshev;

        // GDC once: independent of lg.
        let gdc = GdcClusterer::new(dbscan, metric);
        let gdc_row = measure_clustering(&gdc, &snapshots);

        println!(
            "\n--- {} (extent {:.0}, eps {:.3}) ---",
            dataset.name(),
            ext,
            eps
        );
        println!(
            "{:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            "lg", "RJC ms", "SRJ ms", "GDC ms", "RJC tps", "SRJ tps", "GDC tps"
        );
        for &frac in &params.lg_fractions {
            let lg = frac * ext;
            let methods: Vec<Box<dyn SnapshotClusterer + Send>> = vec![
                Box::new(RjcClusterer::new(lg, dbscan, metric)),
                Box::new(SrjClusterer::new(lg, dbscan, metric)),
            ];
            let rows: Vec<_> = methods
                .iter()
                .map(|m| measure_clustering(m.as_ref(), &snapshots))
                .collect();
            println!(
                "{:>7.2}% | {:>10.3} {:>10.3} {:>10.3} | {:>10.0} {:>10.0} {:>10.0}",
                frac * 100.0,
                rows[0].avg_latency_ms,
                rows[1].avg_latency_ms,
                gdc_row.avg_latency_ms,
                rows[0].throughput_tps,
                rows[1].throughput_tps,
                gdc_row.throughput_tps,
            );
        }
    }
}
