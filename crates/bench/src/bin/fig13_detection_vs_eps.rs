//! Figure 13 — pattern-detection latency/throughput and average cluster
//! size vs. ε, for the F and V methods.
//!
//! Expected shape (paper): both degrade as ε grows (larger join search
//! space *and* larger clusters to enumerate); F keeps the latency edge,
//! V the throughput edge.

use icpe_bench::{measure_detection, pattern_workload, BenchParams};
use icpe_core::{EnumeratorKind, IcpeConfig};

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 13 — Pattern Detection vs. ε");

    let (_, traces) = pattern_workload(params.objects, params.ticks, 0xF17);
    let snapshots = traces.to_snapshots();

    println!(
        "\n{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "eps", "F ms", "V ms", "F tps", "V tps", "avg|C|"
    );
    // ε sweep in workload units around the group cohesion scale.
    for eps in [1.0, 1.5, 2.0, 3.0, 4.5, 6.0] {
        let mut cells = Vec::new();
        let mut avg_cluster = 0.0;
        for kind in [EnumeratorKind::Fba, EnumeratorKind::Vba] {
            let config = IcpeConfig::builder()
                .constraints(params.constraints)
                .epsilon(eps)
                .min_pts(params.min_pts)
                .enumerator(kind)
                .build()
                .expect("valid config");
            let row = measure_detection(&config, &snapshots);
            avg_cluster = row.avg_cluster_size;
            cells.push((row.total_ms(), row.throughput_tps));
        }
        println!(
            "{:>8.2} | {:>9.3} {:>9.3} | {:>9.0} {:>9.0} | {:>8.1}",
            eps, cells[0].0, cells[1].0, cells[0].1, cells[1].1, avg_cluster,
        );
    }
}
