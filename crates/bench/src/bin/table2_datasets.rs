//! Table 2 — dataset statistics.
//!
//! Regenerates the paper's dataset summary for the harness-scale synthetic
//! substitutes (and prints the paper's original numbers for reference).

use icpe_bench::{build_traces, BenchParams, Dataset};
use icpe_gen::dataset_stats;

fn main() {
    let params = BenchParams::default();
    params.print_header("Table 2 — Datasets Used in the Experiments");

    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "#trajectories", "#locations", "#snapshots", "size"
    );
    for dataset in Dataset::ALL {
        let traces = build_traces(dataset, &params);
        let s = dataset_stats(&traces);
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>11.1}M",
            dataset.name(),
            s.trajectories,
            s.locations,
            s.snapshots,
            s.storage_bytes as f64 / 1e6,
        );
    }

    println!("\npaper originals (for reference):");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "dataset", "#trajectories", "#locations", "#snapshots", "size"
    );
    for (name, tr, loc, snap, size) in [
        ("GeoLife", 18_670, 24_876_978u64, 92_645, "1.5G"),
        ("Taxi", 20_151, 189_419_934, 502_559, "14G"),
        ("Brinkhoff", 10_000, 23_906_131, 97_241, "1.7G"),
    ] {
        println!("{name:<12} {tr:>14} {loc:>14} {snap:>12} {size:>12}");
    }
}
