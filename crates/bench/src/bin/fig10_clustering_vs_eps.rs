//! Figure 10 — clustering latency and throughput vs. the distance
//! threshold ε, for RJC (ours) against the SRJ and GDC baselines, on all
//! three datasets.
//!
//! Expected shape (paper): RJC beats SRJ (Lemmas 1–2 remove replication and
//! verification work) and GDC (ε-sized cells over-partition); latency grows
//! and throughput falls as ε grows.

use icpe_bench::{build_traces, extent, measure_clustering, BenchParams, Dataset};
use icpe_cluster::{GdcClusterer, RjcClusterer, SnapshotClusterer, SrjClusterer};
use icpe_types::{DbscanParams, DistanceMetric};

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 10 — Clustering Performance vs. ε");

    for dataset in Dataset::ALL {
        let traces = build_traces(dataset, &params);
        let snapshots = traces.to_snapshots();
        let ext = extent(&traces);
        let lg = params.lg_default * ext;

        println!(
            "\n--- {} (extent {:.0}, lg {:.2}) ---",
            dataset.name(),
            ext,
            lg
        );
        println!(
            "{:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            "eps", "RJC ms", "SRJ ms", "GDC ms", "RJC tps", "SRJ tps", "GDC tps"
        );
        for &frac in &params.eps_fractions {
            let eps = frac * ext;
            let dbscan = DbscanParams::new(eps, params.min_pts).expect("valid params");
            let metric = DistanceMetric::Chebyshev;
            let methods: Vec<Box<dyn SnapshotClusterer + Send>> = vec![
                Box::new(RjcClusterer::new(lg, dbscan, metric)),
                Box::new(SrjClusterer::new(lg, dbscan, metric)),
                Box::new(GdcClusterer::new(dbscan, metric)),
            ];
            let rows: Vec<_> = methods
                .iter()
                .map(|m| measure_clustering(m.as_ref(), &snapshots))
                .collect();
            println!(
                "{:>7.3}% | {:>10.3} {:>10.3} {:>10.3} | {:>10.0} {:>10.0} {:>10.0}",
                frac * 100.0,
                rows[0].avg_latency_ms,
                rows[1].avg_latency_ms,
                rows[2].avg_latency_ms,
                rows[0].throughput_tps,
                rows[1].throughput_tps,
                rows[2].throughput_tps,
            );
        }
    }
}
