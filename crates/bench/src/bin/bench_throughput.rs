//! End-to-end throughput bench — the repo's first records/second baseline,
//! and the proof run of the vectorized micro-batch dataflow.
//!
//! Two measurement paths over the same group-walk workload:
//!
//! * **in-process**: records pre-materialized, pushed through
//!   `IcpePipeline::launch` as fast as the dataflow accepts them, wall
//!   clock from first push to `finish()` — the §8-style "how many points
//!   per second can the job absorb" number, sweeping the exchange-hop
//!   batch size (batch 1 = the record-at-a-time dataflow this PR
//!   replaces) and the keyed-stage parallelism;
//! * **serve edge**: the same records streamed over real TCP through a
//!   full `icpe-serve` instance by the `gen`-backed load generator, wall
//!   clock from first byte to `Server::finish()` — the number a fleet of
//!   reporting devices would actually observe.
//!
//! Writes a `BENCH_throughput.json` summary. The sealed **pattern
//! multiset** is asserted identical across every batch size and
//! parallelism (via an order-independent fingerprint — batching and
//! sharding must be invisible to detection semantics), and the serve-edge
//! delivery count must match it exactly-once.
//!
//! ```text
//! bench_throughput [--check] [--objects N] [--ticks T] [--parallelism P]
//!                  [--batches 1,4,16,64,256] [--fanin F]
//!                  [--serve-producers K] [--scaling-floor X]
//!                  [--overhead-cap F] [--out PATH]
//!
//! --check   CI smoke mode: assert the default batch size beats batch 1 by
//!           a generous margin (≥1.2× records/s) at parallelism P, that
//!           N = P in-process beats N = 1 by the scaling floor (default
//!           1.2×; the sharded-sync regression gate — enforced only on
//!           hosts with ≥2 CPUs, where wall-clock parallelism exists),
//!           that the serve edge sustains ≥5k records/s, that stage
//!           instrumentation costs at most `--overhead-cap` (default 5%)
//!           of throughput vs an `instrument(false)` run, and that the
//!           busy-time bottleneck is not a serial head stage (the sharded
//!           aligner gate: `align`/`allocate`/`align-route` ranking first
//!           means the head re-serialized) — exit non-zero otherwise.
//! ```
//!
//! The summary also records where the wall clock goes: per-stage busy
//! seconds (from the metric registry's `stage_batch_seconds` histograms)
//! as shares of total stage time, plus the resulting bottleneck stage.

use icpe_bench::{arg, workloads::pattern_workload};
use icpe_core::{EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent, DEFAULT_SYNC_FANIN};
use icpe_serve::{loadgen, loadgen::LoadConfig, ServeConfig, Server, Subscription, Topic};
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug, Clone, Copy)]
struct RunStats {
    records_per_s: f64,
    avg_latency_ms: f64,
    patterns: u64,
    /// Order-independent hash of the sealed pattern multiset (objects +
    /// witnessing times of every pattern, duplicates included).
    fingerprint: u64,
    elapsed_s: f64,
}

fn config(parallelism: usize, batch: usize, fanin: usize) -> IcpeConfig {
    config_with_instrument(parallelism, batch, fanin, true)
}

fn config_with_instrument(
    parallelism: usize,
    batch: usize,
    fanin: usize,
    instrument: bool,
) -> IcpeConfig {
    // Group-walk workload with real co-movement so every stage (grid join,
    // DBSCAN, enumeration) does genuine work; constraints sized so pattern
    // volume stays a workload, not a blowup.
    IcpeConfig::builder()
        .constraints(Constraints::new(4, 8, 4, 2).expect("valid constraints"))
        .epsilon(1.0)
        .min_pts(5)
        .parallelism(parallelism)
        .sync_fanin(fanin)
        .enumerator(EnumeratorKind::Fba)
        .batch_size(batch)
        .instrument(instrument)
        .build()
        .expect("valid config")
}

/// The multiset fingerprint of a pattern set: canonicalize each pattern to
/// `(objects, times)`, sort the whole collection, hash. Runs with equal
/// fingerprints sealed the identical pattern multiset.
fn fingerprint(patterns: &mut [(Vec<ObjectId>, Vec<Timestamp>)]) -> u64 {
    patterns.sort();
    let mut h = DefaultHasher::new();
    for (objects, times) in patterns.iter() {
        objects.hash(&mut h);
        for t in times {
            t.0.hash(&mut h);
        }
    }
    h.finish()
}

/// In-process run: push every record, drain to completion, measure wall
/// clock around the whole ingest+drain.
fn run_inprocess(config: &IcpeConfig, records: &[GpsRecord]) -> RunStats {
    run_inprocess_obs(config, records).0
}

/// Like [`run_inprocess`], also returning the per-stage `process_batch`
/// seconds from the pipeline's metric registry (empty when the config runs
/// with `instrument(false)`).
fn run_inprocess_obs(config: &IcpeConfig, records: &[GpsRecord]) -> (RunStats, Vec<(String, f64)>) {
    let patterns: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&patterns);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            sink.lock().expect("pattern sink poisoned").push(p);
        }
    });
    let obs = live.obs().clone();
    let batch = config.runtime.batch_size.max(1);
    let started = Instant::now();
    let mut iter = records.iter().copied();
    loop {
        let chunk: Vec<GpsRecord> = iter.by_ref().take(batch).collect();
        if chunk.is_empty() {
            break;
        }
        live.push_batch(chunk).expect("pipeline alive");
    }
    let report = live.finish();
    let elapsed = started.elapsed().as_secs_f64();
    let patterns = std::mem::take(&mut *patterns.lock().expect("pattern sink poisoned"));
    let mut keys: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .into_iter()
        .map(|p| (p.objects, p.times.times().to_vec()))
        .collect();
    let count = keys.len() as u64;
    (
        RunStats {
            records_per_s: records.len() as f64 / elapsed.max(1e-9),
            avg_latency_ms: report.avg_latency.as_secs_f64() * 1e3,
            patterns: count,
            fingerprint: fingerprint(&mut keys),
            elapsed_s: elapsed,
        },
        obs.stage_seconds(),
    )
}

/// Serve-edge run: full TCP round trip through an `icpe-serve` instance.
fn run_serve(
    parallelism: usize,
    batch: usize,
    fanin: usize,
    traces: &icpe_gen::TraceSet,
    producers: usize,
    records: usize,
) -> RunStats {
    let mut serve = ServeConfig::new(config(parallelism, batch, fanin));
    serve.ingest_batch = batch;
    // The publish side must absorb the pipeline's event bursts without
    // shedding our counting subscriber (we assert exactly-once delivery
    // end to end, so a shed would break the count).
    serve.subscriber_queue = 1 << 16;
    let server = Server::start(serve).expect("bind server");
    let addr = server.local_addr().to_string();
    // A real subscriber counts every delivered pattern event — the number
    // a downstream consumer actually receives, including the end-of-stream
    // flush (`finish` closes the subscription after draining its backlog).
    let subscription = Subscription::connect(&addr, Topic::Patterns).expect("subscribe");
    let counter = std::thread::spawn(move || {
        subscription
            .collect_lines()
            .map(|lines| lines.len() as u64)
            .unwrap_or(0)
    });
    let started = Instant::now();
    let report = loadgen::run(
        &addr,
        traces,
        &LoadConfig {
            producers,
            ..LoadConfig::default()
        },
    )
    .expect("load generator");
    assert_eq!(report.records_sent as usize, records);
    let metrics = server.finish();
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(metrics.late_records, 0, "serve edge must not drop records");
    let patterns = counter.join().expect("subscriber thread");
    RunStats {
        records_per_s: records as f64 / elapsed.max(1e-9),
        avg_latency_ms: metrics.avg_latency.as_secs_f64() * 1e3,
        patterns,
        fingerprint: 0, // delivered as wire lines; compared by count
        elapsed_s: elapsed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let objects: usize = arg(&args, "--objects", 1200);
    let ticks: u32 = arg(&args, "--ticks", 200);
    let parallelism: usize = arg(&args, "--parallelism", 8);
    let fanin: usize = arg(&args, "--fanin", DEFAULT_SYNC_FANIN);
    let scaling_floor: f64 = arg(&args, "--scaling-floor", 1.2);
    let overhead_cap: f64 = arg(&args, "--overhead-cap", 0.05);
    let serve_producers: usize = arg(&args, "--serve-producers", 4);
    let batches_arg: String = arg(&args, "--batches", "1,4,16,64,256".to_string());
    let out: String = arg(&args, "--out", "BENCH_throughput.json".to_string());
    let batches: Vec<usize> = batches_arg
        .split(',')
        .filter_map(|b| b.trim().parse().ok())
        .collect();

    let (_, traces) = pattern_workload(objects, ticks, 0xB47C);
    let records = traces.to_gps_records();
    println!("throughput bench — group-walk workload");
    println!(
        "  objects {objects}, ticks {ticks}, {} records, parallelism {parallelism}, sync fanin {fanin}\n",
        records.len()
    );

    // Batch-size sweep at fixed parallelism.
    println!(
        "{:>16} | {:>12} {:>10} {:>9} {:>10}",
        "mode", "records/s", "ms/snap", "elapsed", "patterns"
    );
    let mut batch_rows = Vec::new();
    for &batch in &batches {
        let stats = run_inprocess(&config(parallelism, batch, fanin), &records);
        println!(
            "{:>16} | {:>12.0} {:>10.3} {:>8.2}s {:>10}",
            format!("batch {batch}"),
            stats.records_per_s,
            stats.avg_latency_ms,
            stats.elapsed_s,
            stats.patterns
        );
        batch_rows.push((batch, stats));
    }
    let base = batch_rows
        .iter()
        .find(|(b, _)| *b == 1)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| run_inprocess(&config(parallelism, 1, fanin), &records));
    for (b, s) in &batch_rows {
        assert_eq!(
            s.fingerprint, base.fingerprint,
            "batch size {b} changed the sealed pattern multiset"
        );
    }
    let default_batch = icpe_runtime::DEFAULT_BATCH_SIZE;
    let best = batch_rows
        .iter()
        .max_by(|a, b| a.1.records_per_s.total_cmp(&b.1.records_per_s))
        .map(|&(b, s)| (b, s))
        .expect("at least one batch size");
    let tuned = batch_rows
        .iter()
        .find(|(b, _)| *b == default_batch)
        .map(|&(_, s)| s)
        .unwrap_or(best.1);
    let speedup = tuned.records_per_s / base.records_per_s.max(1e-9);
    let best_speedup = best.1.records_per_s / base.records_per_s.max(1e-9);
    println!(
        "\nbatch {default_batch} vs batch 1: {speedup:.2}× records/s \
         (best: batch {} at {best_speedup:.2}×)",
        best.0
    );

    // Parallelism sweep at the default batch size (and at batch 1 for the
    // batching comparison). Every row must seal the identical pattern
    // multiset — sharded sync included, and (since `align_shards` follows
    // the parallelism) the sharded TimeAligner + fused GridAllocate head
    // widens with every row too.
    let mut scale_rows = Vec::new();
    for p in [1usize, 2, 4, parallelism] {
        if scale_rows.iter().any(|&(q, _, _)| q == p) {
            continue;
        }
        let unbatched = run_inprocess(&config(p, 1, fanin), &records);
        let batched = run_inprocess(&config(p, default_batch, fanin), &records);
        println!(
            "{:>16} | {:>12.0} vs {:>10.0} unbatched ({:.2}×)",
            format!("N = {p}"),
            batched.records_per_s,
            unbatched.records_per_s,
            batched.records_per_s / unbatched.records_per_s.max(1e-9)
        );
        assert_eq!(
            batched.fingerprint, base.fingerprint,
            "parallelism {p} changed the sealed pattern multiset"
        );
        assert_eq!(
            unbatched.fingerprint, base.fingerprint,
            "parallelism {p} (unbatched) changed the sealed pattern multiset"
        );
        scale_rows.push((p, batched, unbatched));
    }

    // The sharded-sync scaling headline: in-process N = P vs N = 1 at the
    // default batch size. Before the merge path was parallelized this
    // ratio sat at ≈1.0 even on multi-core hosts — the serial tail
    // (align/allocate/sync funnel) capped the whole dataflow. The ratio
    // only *means* scaling where threads can actually run concurrently,
    // so the gate is conditioned on the host's CPU count: on a single-CPU
    // host the same ratio measures scheduler overhead, and enforcing a
    // floor there would gate on noise.
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scaling_gate = if host_cpus >= 2 {
        "enforced"
    } else {
        "skipped_single_cpu_host"
    };
    let n1 = scale_rows
        .iter()
        .find(|&&(p, _, _)| p == 1)
        .map(|&(_, b, _)| b)
        .expect("N = 1 row always measured");
    let np = scale_rows
        .iter()
        .find(|&&(p, _, _)| p == parallelism)
        .map(|&(_, b, _)| b)
        .expect("N = parallelism row always measured");
    let scaling_speedup = np.records_per_s / n1.records_per_s.max(1e-9);
    println!(
        "\nscaling: N = {parallelism} at {:.0} records/s vs N = 1 at {:.0} \
         ({scaling_speedup:.2}×, floor {scaling_floor:.2}×, {host_cpus} host cpus, gate {scaling_gate})",
        np.records_per_s, n1.records_per_s
    );

    // Instrumentation overhead + per-stage time share: the observability
    // layer is always-on in production configs, so its cost is part of the
    // bench contract. Best-of-two per side — wall clock on a shared (or
    // single-CPU) host is noisy, and the *minimum* achievable elapsed time
    // is the comparable quantity.
    let cfg_on = config(parallelism, default_batch, fanin);
    let cfg_off = config_with_instrument(parallelism, default_batch, fanin, false);
    let mut rps_on = f64::MIN;
    let mut stage_secs: Vec<(String, f64)> = Vec::new();
    for _ in 0..2 {
        let (stats, stages) = run_inprocess_obs(&cfg_on, &records);
        if stats.records_per_s > rps_on {
            rps_on = stats.records_per_s;
            stage_secs = stages;
        }
    }
    let mut rps_off = f64::MIN;
    for _ in 0..2 {
        rps_off = rps_off.max(run_inprocess(&cfg_off, &records).records_per_s);
    }
    // Negative overhead is measurement noise (instrumented run happened to
    // win); report it as measured, gate on the cap.
    let overhead = 1.0 - rps_on / rps_off.max(1e-9);
    println!(
        "\ninstrumentation: {rps_on:.0} records/s on vs {rps_off:.0} off \
         ({:.1}% overhead, cap {:.0}%)",
        overhead * 100.0,
        overhead_cap * 100.0
    );

    // Where the wall clock goes: per-stage `process_batch` seconds from the
    // instrumented run, as shares of the total across all stages. With N
    // subtasks per keyed stage the shares sum busy time, not wall clock —
    // the point is the *ranking* (which stage to optimize next).
    let total_stage_secs: f64 = stage_secs.iter().map(|(_, s)| s).sum();
    let mut shares: Vec<(String, f64, f64)> = stage_secs
        .iter()
        .map(|(stage, secs)| (stage.clone(), *secs, secs / total_stage_secs.max(1e-9)))
        .collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\n{:>20} | {:>9} {:>7}", "stage", "busy s", "share");
    for (stage, secs, share) in &shares {
        println!("{stage:>20} | {secs:>9.3} {:>6.1}%", share * 100.0);
    }
    let bottleneck_stage = shares
        .first()
        .map(|(s, _, _)| s.clone())
        .unwrap_or_else(|| "none".to_string());

    // Recovery path: the same workload through a supervised pipeline with
    // one mid-stream injected panic — what a failure costs in wall clock
    // (time from failure detection to replay completion) and in replayed
    // records. Informational: recorded in the summary, not `--check`-gated.
    let (recovery_ms, replayed_records, recoveries) = {
        // Panic an aligner shard halfway through the stream, whatever the
        // workload scale. (Not the serial router: it drains its ingest
        // channel eagerly into a handful of giant batches, so its batch
        // ordinals don't track stream position.)
        let mid_batch = (records.len() / default_batch.max(1) / 2).max(1);
        let fault = icpe_runtime::FaultPlan::from_spec(&format!("panic@align-shard:0:{mid_batch}"))
            .expect("valid fault spec");
        let fault = std::sync::Arc::new(fault);
        let cfg = IcpeConfig::builder()
            .constraints(Constraints::new(4, 8, 4, 2).expect("valid constraints"))
            .epsilon(1.0)
            .min_pts(5)
            .parallelism(parallelism)
            .sync_fanin(fanin)
            .enumerator(EnumeratorKind::Fba)
            .batch_size(default_batch)
            .supervised(icpe_core::Supervision {
                checkpoint_every_records: Some(8192),
                ..icpe_core::Supervision::default()
            })
            .fault_plan(Arc::clone(&fault))
            .build()
            .expect("valid supervised config");
        let live = IcpePipeline::launch(&cfg, |_| {});
        let obs = live.obs().clone();
        let mut iter = records.iter().copied();
        loop {
            let chunk: Vec<GpsRecord> = iter.by_ref().take(default_batch).collect();
            if chunk.is_empty() {
                break;
            }
            live.push_batch(chunk).expect("supervised pipeline alive");
        }
        live.finish();
        assert!(fault.exhausted(), "the injected panic never fired");
        (
            obs.gauge("supervisor", 0, "mean_recovery_ms").get(),
            obs.counter("supervisor", 0, "replayed_records_total").get(),
            obs.counter("supervisor", 0, "pipeline_recoveries_total")
                .get(),
        )
    };
    println!(
        "\nrecovery (1 injected panic, checkpoint every 8192 records): \
         {recoveries} recovery in {recovery_ms} ms, {replayed_records} records replayed"
    );

    // Serve edge: the same workload through real TCP.
    let serve = run_serve(
        parallelism,
        default_batch,
        fanin,
        &traces,
        serve_producers,
        records.len(),
    );
    println!(
        "\nserve edge ({serve_producers} producers over TCP): {:.0} records/s, {} patterns",
        serve.records_per_s, serve.patterns
    );
    assert_eq!(
        serve.patterns, base.patterns,
        "the TCP path must deliver exactly the in-process pattern count"
    );

    let batch_json: Vec<String> = batch_rows
        .iter()
        .map(|(b, s)| {
            format!(
                "    {{\"batch\": {b}, \"records_per_s\": {:.0}, \"avg_latency_ms\": {:.3}, \"patterns\": {}}}",
                s.records_per_s, s.avg_latency_ms, s.patterns
            )
        })
        .collect();
    let scale_json: Vec<String> = scale_rows
        .iter()
        .map(|(p, batched, unbatched)| {
            format!(
                "    {{\"parallelism\": {p}, \"records_per_s\": {:.0}, \"unbatched_records_per_s\": {:.0}, \"speedup\": {:.3}}}",
                batched.records_per_s,
                unbatched.records_per_s,
                batched.records_per_s / unbatched.records_per_s.max(1e-9)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"throughput\",\n",
            "  \"workload\": {{\"kind\": \"group_walk\", \"objects\": {objects}, \"ticks\": {ticks}, \"records\": {records}}},\n",
            "  \"parallelism\": {parallelism},\n",
            "  \"default_batch\": {default_batch},\n",
            "  \"sync_fanin\": {fanin},\n",
            "  \"batch_sweep\": [\n{batch_sweep}\n  ],\n",
            "  \"parallelism_sweep\": [\n{scale_sweep}\n  ],\n",
            "  \"speedup_vs_unbatched\": {speedup:.3},\n",
            "  \"host_cpus\": {host_cpus},\n",
            "  \"scaling_speedup\": {scaling:.3},\n",
            "  \"scaling_floor\": {floor:.3},\n",
            "  \"scaling_gate\": \"{scaling_gate}\",\n",
            "  \"instrumentation\": {{\"records_per_s_on\": {rps_on:.0}, \"records_per_s_off\": {rps_off:.0}, \"overhead\": {overhead:.4}, \"overhead_cap\": {overhead_cap:.4}}},\n",
            "  \"stage_time_share\": [\n{stage_share}\n  ],\n",
            "  \"bottleneck_stage\": \"{bottleneck_stage}\",\n",
            "  \"serve_edge\": {{\"producers\": {producers}, \"records_per_s\": {serve_rps:.0}, \"patterns\": {serve_patterns}}},\n",
            "  \"recovery\": {{\"recoveries\": {recoveries}, \"recovery_ms\": {recovery_ms}, \"replayed_records\": {replayed_records}}},\n",
            "  \"recovery_ms\": {recovery_ms},\n",
            "  \"replayed_records\": {replayed_records},\n",
            "  \"patterns\": {patterns}\n",
            "}}\n"
        ),
        objects = objects,
        ticks = ticks,
        records = records.len(),
        parallelism = parallelism,
        default_batch = default_batch,
        fanin = fanin,
        batch_sweep = batch_json.join(",\n"),
        scale_sweep = scale_json.join(",\n"),
        speedup = speedup,
        host_cpus = host_cpus,
        scaling = scaling_speedup,
        floor = scaling_floor,
        scaling_gate = scaling_gate,
        rps_on = rps_on,
        rps_off = rps_off,
        overhead = overhead,
        overhead_cap = overhead_cap,
        stage_share = shares
            .iter()
            .map(|(stage, secs, share)| format!(
                "    {{\"stage\": \"{stage}\", \"seconds\": {secs:.3}, \"share\": {share:.3}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        bottleneck_stage = bottleneck_stage,
        producers = serve_producers,
        serve_rps = serve.records_per_s,
        serve_patterns = serve.patterns,
        recoveries = recoveries,
        recovery_ms = recovery_ms,
        replayed_records = replayed_records,
        patterns = base.patterns,
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!("wrote {out}");

    if check {
        // Generous CI bounds (shared runners are noisy); the committed
        // BENCH_throughput.json records the full-scale results.
        assert!(
            speedup >= 1.2,
            "CHECK FAILED: batch {default_batch} only {speedup:.2}× over batch 1"
        );
        if host_cpus >= 2 {
            assert!(
                scaling_speedup >= scaling_floor,
                "CHECK FAILED: N = {parallelism} only {scaling_speedup:.2}× over N = 1 \
                 (floor {scaling_floor:.2}×) — the serial merge tail is back"
            );
        } else {
            println!(
                "CHECK NOTE: scaling floor not enforced — single-CPU host, \
                 wall-clock N = {parallelism} vs N = 1 measures scheduler \
                 overhead instead of the merge path"
            );
        }
        assert!(
            serve.records_per_s >= 5_000.0,
            "CHECK FAILED: serve edge sustained only {:.0} records/s",
            serve.records_per_s
        );
        assert!(
            overhead <= overhead_cap,
            "CHECK FAILED: instrumentation costs {:.1}% throughput \
             (cap {:.0}%) — a hot-path metric grew a lock or allocation",
            overhead * 100.0,
            overhead_cap * 100.0
        );
        // The point of sharding the head: with N subtasks everywhere, a
        // serial stage at the top would cap the whole dataflow, so the
        // busy-time ranking must not crown one. (`align`/`allocate` are the
        // pre-sharding stage names — tripping on them means the topology
        // regressed outright; `align-route` is the residual serial router,
        // which only hashes, seals, and forwards.) Busy seconds, not wall
        // clock, so the ranking is meaningful on single-CPU hosts too.
        if parallelism >= 2 {
            let serial_head = ["align", "allocate", "align-route"];
            assert!(
                !serial_head.contains(&bottleneck_stage.as_str()),
                "CHECK FAILED: bottleneck stage is {bottleneck_stage} — \
                 the aligner head is serial again"
            );
        }
        println!("CHECK OK");
    }
}
