//! Figure 15 — enumeration latency/throughput vs. each pattern constraint
//! (M, K, L, G), FBA vs. VBA.
//!
//! Clustering is excluded (the paper notes it is unaffected by the
//! constraints): the cluster stream is computed once and each engine is
//! measured on enumeration alone. Expected shapes (paper): latency falls as
//! M, K or L grow (more pruning / fewer candidates) and rises with G (more
//! valid patterns).

use icpe_bench::BenchParams;
use icpe_cluster::{RjcClusterer, SnapshotClusterer};
use icpe_pattern::{EngineConfig, FbaEngine, PatternEngine, VbaEngine};
use icpe_types::{ClusterSnapshot, Constraints, DbscanParams, DistanceMetric};
use std::time::Instant;

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 15 — Enumeration Performance vs. M, K, L, G");

    // Cluster once. Group size 8 so the M sweep (3…8) stays satisfiable
    // until its top value.
    let (_, traces) =
        icpe_bench::workloads::pattern_workload_sized(params.objects, params.ticks, 8, 0xF19);
    let snapshots = traces.to_snapshots();
    let clusterer = RjcClusterer::new(
        16.0,
        DbscanParams::new(2.0, params.min_pts).expect("valid params"),
        DistanceMetric::Chebyshev,
    );
    let cluster_stream: Vec<ClusterSnapshot> =
        snapshots.iter().map(|s| clusterer.cluster(s)).collect();
    println!("cluster stream: {} snapshots\n", cluster_stream.len());

    let d = params.constraints;
    sweep("M", &params.m_values, &cluster_stream, |&m| {
        Constraints::new(m, d.k(), d.l(), d.g())
    });
    sweep("K", &params.k_values, &cluster_stream, |&k| {
        Constraints::new(d.m(), k, d.l(), d.g())
    });
    sweep("L", &params.l_values, &cluster_stream, |&l| {
        Constraints::new(d.m(), d.k(), l, d.g())
    });
    sweep("G", &params.g_values, &cluster_stream, |&g| {
        Constraints::new(d.m(), d.k(), d.l(), g)
    });
}

fn sweep<T: std::fmt::Display>(
    name: &str,
    values: &[T],
    stream: &[ClusterSnapshot],
    make: impl Fn(&T) -> Result<Constraints, icpe_types::TypeError>,
) {
    println!("--- varying {name} ---");
    println!(
        "{:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        name, "FBA ms", "VBA ms", "FBA tps", "VBA tps", "FBA pat", "VBA pat"
    );
    for v in values {
        let Ok(constraints) = make(v) else {
            continue;
        };
        let fba = run_engine(&mut FbaEngine::new(EngineConfig::new(constraints)), stream);
        let vba = run_engine(&mut VbaEngine::new(EngineConfig::new(constraints)), stream);
        println!(
            "{:>5} | {:>10.4} {:>10.4} | {:>10.0} {:>10.0} | {:>9} {:>9}",
            v, fba.0, vba.0, fba.1, vba.1, fba.2, vba.2,
        );
    }
    println!();
}

/// Returns (avg latency ms, throughput tps, patterns reported).
fn run_engine(engine: &mut dyn PatternEngine, stream: &[ClusterSnapshot]) -> (f64, f64, usize) {
    let started = Instant::now();
    let mut patterns = 0usize;
    for cs in stream {
        patterns += engine.push(cs).len();
    }
    patterns += engine.finish().len();
    let total = started.elapsed();
    let n = stream.len().max(1);
    (
        total.as_secs_f64() * 1e3 / n as f64,
        n as f64 / total.as_secs_f64().max(1e-12),
        patterns,
    )
}
