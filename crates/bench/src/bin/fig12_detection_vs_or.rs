//! Figure 12 — pattern-detection latency/throughput and average cluster
//! size vs. the object ratio `Or`, for the B / F / V methods.
//!
//! Or subsamples the population evenly, so the planted groups — and hence
//! the clusters — thin out at low Or and reach full size at 100%, exactly
//! the cluster-size growth the paper's figure shows. Expected shape
//! (paper): B only runs while clusters are small (its partition guard fires
//! at high Or — reported as "n/a"); F has the best per-snapshot latency of
//! the complete methods, V the best throughput; everything degrades as Or
//! grows.

use icpe_bench::workloads::{object_sample, pattern_workload_sized};
use icpe_bench::{measure_detection, BenchParams};
use icpe_core::{EnumeratorKind, IcpeConfig};
use icpe_types::Constraints;

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 12 — Pattern Detection vs. Or (object ratio)");

    // Large planted groups so clusters are big at Or = 100%.
    let (_, full_traces) = pattern_workload_sized(params.objects, params.ticks, 14, 0xF16);
    let constraints = params.constraints;

    println!(
        "\n{:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8}",
        "Or", "B ms", "F ms", "V ms", "B tps", "F tps", "V tps", "avg|C|"
    );
    for &ratio in &params.or_values {
        let traces = object_sample(&full_traces, ratio);
        let snapshots = traces.to_snapshots();
        let mut lat = Vec::new();
        let mut tps = Vec::new();
        let mut avg_cluster = 0.0;
        for kind in [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ] {
            let config = config_for(kind, constraints, &params);
            let row = measure_detection(&config, &snapshots);
            avg_cluster = row.avg_cluster_size;
            if row.overflowed > 0 {
                // The paper's "B cannot run": the exponential enumeration
                // exceeded the partition guard.
                lat.push("n/a".to_string());
                tps.push("n/a".to_string());
            } else {
                lat.push(format!("{:.3}", row.total_ms()));
                tps.push(format!("{:.0}", row.throughput_tps));
            }
        }
        println!(
            "{:>4.0}% | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8.1}",
            ratio * 100.0,
            lat[0],
            lat[1],
            lat[2],
            tps[0],
            tps[1],
            tps[2],
            avg_cluster,
        );
    }
    println!("\n'n/a' = the Baseline's exponential enumeration exceeded its partition");
    println!("guard — the paper's 'B cannot run' regime (it appears past Or = 60%).");
}

fn config_for(kind: EnumeratorKind, constraints: Constraints, params: &BenchParams) -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(constraints)
        .epsilon(2.0) // group cohesion is ~0.7; arena 250
        .min_pts(params.min_pts)
        .enumerator(kind)
        // B refuses partitions beyond 2^10 subsets; F and V have no guard.
        .max_baseline_partition(10)
        .build()
        .expect("valid config")
}
