//! Figure 14 — pattern-detection latency/throughput vs. the number of
//! "machines" N, for the F and V methods.
//!
//! N maps to the parallelism of the keyed stages (GridQuery, enumeration)
//! of the streaming pipeline — DESIGN.md §4 documents the cluster→threads
//! substitution. Expected shape (paper): latency falls and throughput rises
//! with N.

use icpe_bench::BenchParams;
use icpe_core::{EnumeratorKind, IcpeConfig, IcpePipeline};

fn main() {
    let params = BenchParams::default();
    params.print_header("Figure 14 — Pattern Detection vs. N (parallelism)");

    // A heavier workload than the other figures: the keyed stages must
    // dominate for parallelism to show (the paper's cluster has real
    // per-snapshot work; at toy scale the exchange overhead wins).
    let (_, traces) =
        icpe_bench::workloads::pattern_workload_sized(params.objects * 3, params.ticks, 10, 0xF18);
    let records = traces.to_gps_records();
    println!(
        "streaming {} records through the distributed pipeline\n",
        records.len()
    );

    println!(
        "{:>3} | {:>10} {:>10} | {:>10} {:>10}",
        "N", "F ms", "V ms", "F tps", "V tps"
    );
    for &n in &params.n_values {
        let mut cells = Vec::new();
        for kind in [EnumeratorKind::Fba, EnumeratorKind::Vba] {
            let config = IcpeConfig::builder()
                .constraints(params.constraints)
                .epsilon(2.0)
                .min_pts(params.min_pts)
                .parallelism(n)
                .enumerator(kind)
                .build()
                .expect("valid config");
            let out = IcpePipeline::run(&config, records.clone());
            cells.push((
                out.metrics.avg_latency.as_secs_f64() * 1e3,
                out.metrics.throughput_tps,
            ));
        }
        println!(
            "{:>3} | {:>10.3} {:>10.3} | {:>10.0} {:>10.0}",
            n, cells[0].0, cells[1].0, cells[0].1, cells[1].1,
        );
    }
}
