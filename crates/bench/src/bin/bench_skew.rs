//! Skew bench — static `hash(cell) % N` vs. hotspot-aware adaptive
//! routing vs. adaptive routing with sub-cell refinement, on the Zipf
//! moving-hotspot workload.
//!
//! Measures, per routing mode: pipeline throughput, average latency, and
//! the per-window `max/mean` GridQuery subtask-load ratio (p95 and mean
//! over all windows; 1.0 = perfectly balanced, `N` = everything on one
//! subtask). Every run also computes the **hindsight-LPT oracle floor**:
//! per window, the actual observed cell loads are LPT-packed into `N`
//! bins — the best any cell-granularity placement could have done — and
//! each mode's `gap_to_floor` (its p95 over the oracle p95) lands in the
//! `BENCH_skew.json` summary. Refinement splits hot cells below cell
//! granularity, so its gap can drop below what any unrefined placement
//! reaches.
//!
//! ```text
//! bench_skew [--check] [--objects N] [--ticks T] [--parallelism P]
//!            [--theta F] [--refine-depth D] [--max-gap F] [--out PATH]
//!
//! --check   CI smoke mode: assert adaptive imbalance beats static by a
//!           generous margin (p95 ratio ≥ 1.2×) at no worse than 0.6×
//!           throughput, that refinement actually split cells, and that
//!           the refined gap_to_floor is no worse than the adaptive
//!           (refinement-off) gap and within --max-gap (default 1.5)
//!           of the oracle; exit non-zero otherwise.
//! ```

use icpe_bench::arg;
use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_types::{Constraints, GpsRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Static,
    Adaptive,
    Refined,
}

#[derive(Debug, Clone, Copy)]
struct RunStats {
    throughput_tps: f64,
    avg_latency_ms: f64,
    p95_imbalance: f64,
    mean_imbalance: f64,
    routing_epoch: u64,
    cells_migrated: u64,
    splits: u64,
    coalesces: u64,
    max_refine_depth: u8,
    patterns: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one pipeline; returns its stats, its hindsight-oracle p95 (taken
/// from the static run so the floor is measured at base-cell granularity),
/// and its per-window imbalance series (so `--series` prints the very run
/// the summary numbers came from).
fn run(
    config: &IcpeConfig,
    records: &[GpsRecord],
    parallelism: usize,
) -> (RunStats, f64, Vec<(u32, f64)>) {
    let patterns = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&patterns);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(_) = e {
            sink.fetch_add(1, Ordering::Relaxed);
        }
    });
    let routing = live
        .routing()
        .cloned()
        .expect("grid clusterers expose the routing layer");
    for r in records {
        live.push(*r).expect("pipeline alive");
    }
    let report = live.finish();
    let status = routing.status();
    let series = routing.imbalance_series();
    let mut ratios: Vec<f64> = series.iter().map(|&(_, ratio)| ratio).collect();
    let mean = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));

    // Hindsight floor over this run's own observed windows: per window,
    // LPT-pack the actual cell loads — the best any placement at this
    // run's cell granularity could have done.
    let mut oracle_ratios: Vec<f64> = Vec::new();
    for (_, cells) in routing.sealed_cell_windows() {
        let mut weights: Vec<u64> = cells.iter().map(|&(_, w)| w).collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let mut bins = vec![0u64; parallelism];
        for w in weights {
            *bins.iter_mut().min().expect("bins") += w;
        }
        let total: u64 = bins.iter().sum();
        if total > 0 {
            let mean = total as f64 / parallelism as f64;
            oracle_ratios.push(*bins.iter().max().expect("bins") as f64 / mean);
        }
    }
    oracle_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let stats = RunStats {
        throughput_tps: report.throughput_tps,
        avg_latency_ms: report.avg_latency.as_secs_f64() * 1e3,
        p95_imbalance: percentile(&ratios, 0.95),
        mean_imbalance: mean,
        routing_epoch: status.epoch,
        cells_migrated: status.cells_migrated,
        splits: status.splits,
        coalesces: status.coalesces,
        max_refine_depth: status.max_refine_depth,
        patterns: patterns.load(Ordering::Relaxed),
    };
    (stats, percentile(&oracle_ratios, 0.95), series)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let objects: usize = arg(&args, "--objects", 600);
    let ticks: u32 = arg(&args, "--ticks", 120);
    let parallelism: usize = arg(&args, "--parallelism", 8);
    let theta: f64 = arg(&args, "--theta", 1.05);
    let cooldown: u32 = arg(&args, "--cooldown", 0);
    let decay: f64 = arg(&args, "--decay", 0.5);
    // The measured metric is the GridQuery stage's records+pairs split, so
    // the planner optimizes the same objective here (the serve default of
    // 2.0 trades query-stage balance for sync-merge balance, which this
    // bench does not measure).
    let pair_weight: f64 = arg(&args, "--pair-weight", 1.0);
    let refine_depth: u8 = arg(&args, "--refine-depth", 2);
    let refine_split: f64 = arg(&args, "--refine-split", 0.5);
    let refine_coalesce: f64 = arg(&args, "--refine-coalesce", 0.15);
    // Bounded in-flight data, as any deployed streaming system runs: with
    // the library default (1024 batches/channel) the whole bench workload
    // fits in channel buffers, the finalizer races tens of windows ahead
    // of the query stage, and the balancer plans every boundary blind —
    // no pair feedback ever arrives in time. A small bound keeps the
    // stages within a few windows of each other, the regime the paper's
    // feedback loop (and serve's socket backpressure) operates in. Same
    // setting for all three modes.
    let channel_capacity: usize = arg(&args, "--channel-capacity", 16);
    let max_gap: f64 = arg(&args, "--max-gap", 1.5);
    let out: String = arg(&args, "--out", "BENCH_skew.json".to_string());

    // Workload shape: long hot-site dwell (travel is load the balancer
    // cannot predict) and strong Zipf skew — the regime static hashing
    // handles worst; see the generator docs for the knobs.
    let defaults = HotspotConfig::default();
    let gen = HotspotGenerator::new(HotspotConfig {
        num_objects: objects,
        num_ticks: ticks,
        zipf_s: arg(&args, "--zipf", 1.6),
        orbit_turns: arg(&args, "--orbit", defaults.orbit_turns),
        retarget_every: arg(&args, "--retarget", 100),
        ..defaults
    });
    let records = gen.traces().to_gps_records();
    println!("skew bench — Zipf moving-hotspot workload");
    println!(
        "  objects {objects}, ticks {ticks}, parallelism {parallelism}, θ {theta}, \
         refine depth {refine_depth}"
    );
    println!("  {} records\n", records.len());

    let build = |mode: Mode| {
        // min_pts above the squad size: lone squads still produce the
        // range-join pairs that load the grid stage, but only genuine
        // slot-sharing crowds cluster — keeping enumeration cheap so the
        // bench measures the clustering stage this PR repartitions.
        // Grid width: finer than the 8×ε default so a hotspot spans
        // several cells — cells are the atomic unit of routing for the
        // unrefined modes, and the refined mode shows what splitting the
        // remaining hot cells buys on top (Figure 11 shows clustering
        // itself is flat across this range).
        let mut b = IcpeConfig::builder()
            .constraints(Constraints::new(4, 8, 4, 2).expect("valid constraints"))
            .epsilon(1.0)
            .grid_width(arg(&args, "--lg", 8.0))
            .min_pts(5)
            .parallelism(parallelism)
            .channel_capacity(channel_capacity)
            .enumerator(EnumeratorKind::Fba);
        if mode != Mode::Static {
            b = b.rebalance(BalancerConfig {
                theta,
                cooldown_windows: cooldown,
                decay,
                sync_pair_weight: pair_weight,
                ..BalancerConfig::default()
            });
        }
        if mode == Mode::Refined {
            b = b
                .refine_max_depth(refine_depth)
                .refine_split_frac(refine_split)
                .refine_coalesce_frac(refine_coalesce);
        }
        b.build().expect("valid config")
    };

    // The oracle floor comes from the *static* run's observed windows:
    // base-cell granularity, the floor the paper's placement lives above.
    let (static_run, oracle_p95, static_series) = run(&build(Mode::Static), &records, parallelism);
    let (adaptive_run, _, adaptive_series) = run(&build(Mode::Adaptive), &records, parallelism);
    let (refined_run, _, refined_series) = run(&build(Mode::Refined), &records, parallelism);
    let gap = |p95: f64| p95 / oracle_p95.max(1.0);

    if args.iter().any(|a| a == "--series") {
        for (name, series) in [
            ("static", &static_series),
            ("adaptive", &adaptive_series),
            ("refined", &refined_series),
        ] {
            let series: Vec<String> = series.iter().map(|(t, r)| format!("{t}:{r:.2}")).collect();
            println!("{name} series: {}", series.join(" "));
        }
    }

    println!(
        "{:>10} | {:>9} {:>9} | {:>8} {:>8} {:>8} | {:>6} {:>9} {:>7}",
        "mode", "tps", "ms", "p95 imb", "avg imb", "gap", "epoch", "migrated", "splits"
    );
    for (name, s) in [
        ("static", &static_run),
        ("adaptive", &adaptive_run),
        ("refined", &refined_run),
    ] {
        println!(
            "{:>10} | {:>9.1} {:>9.3} | {:>8.3} {:>8.3} {:>8.3} | {:>6} {:>9} {:>7}",
            name,
            s.throughput_tps,
            s.avg_latency_ms,
            s.p95_imbalance,
            s.mean_imbalance,
            gap(s.p95_imbalance),
            s.routing_epoch,
            s.cells_migrated,
            s.splits
        );
    }
    println!("    oracle | hindsight-LPT floor p95 {oracle_p95:.3}");
    let improvement = static_run.p95_imbalance / adaptive_run.p95_imbalance.max(1.0);
    let tps_ratio = adaptive_run.throughput_tps / static_run.throughput_tps.max(1e-9);
    let refined_tps_ratio = refined_run.throughput_tps / static_run.throughput_tps.max(1e-9);
    println!("\np95 imbalance improvement: {improvement:.2}× (throughput ratio {tps_ratio:.2})");
    println!(
        "refined gap_to_floor {:.3} vs adaptive {:.3} (throughput ratio {refined_tps_ratio:.2})",
        gap(refined_run.p95_imbalance),
        gap(adaptive_run.p95_imbalance)
    );
    assert_eq!(
        static_run.patterns, adaptive_run.patterns,
        "routing must not change the sealed pattern multiset"
    );
    assert_eq!(
        static_run.patterns, refined_run.patterns,
        "sub-cell refinement must not change the sealed pattern multiset"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"skew\",\n",
            "  \"workload\": {{\"kind\": \"hotspot\", \"objects\": {objects}, \"ticks\": {ticks}, \"zipf_s\": {zipf}}},\n",
            "  \"parallelism\": {parallelism},\n",
            "  \"theta\": {theta},\n",
            "  \"refine_depth\": {refine_depth},\n",
            "  \"oracle_p95\": {oracle:.3},\n",
            "  \"static\": {{\"throughput_tps\": {s_tps:.1}, \"avg_latency_ms\": {s_ms:.3}, \"p95_imbalance\": {s_p95:.3}, \"mean_imbalance\": {s_mean:.3}, \"gap_to_floor\": {s_gap:.3}}},\n",
            "  \"adaptive\": {{\"throughput_tps\": {a_tps:.1}, \"avg_latency_ms\": {a_ms:.3}, \"p95_imbalance\": {a_p95:.3}, \"mean_imbalance\": {a_mean:.3}, \"gap_to_floor\": {a_gap:.3}, \"routing_epoch\": {a_epoch}, \"cells_migrated\": {a_migr}}},\n",
            "  \"refined\": {{\"throughput_tps\": {r_tps:.1}, \"avg_latency_ms\": {r_ms:.3}, \"p95_imbalance\": {r_p95:.3}, \"mean_imbalance\": {r_mean:.3}, \"gap_to_floor\": {r_gap:.3}, \"routing_epoch\": {r_epoch}, \"cells_migrated\": {r_migr}, \"splits\": {r_splits}, \"coalesces\": {r_coal}, \"max_refine_depth\": {r_depth}}},\n",
            "  \"p95_imbalance_improvement\": {imp:.3},\n",
            "  \"throughput_ratio\": {tps_ratio:.3},\n",
            "  \"refined_throughput_ratio\": {r_tps_ratio:.3},\n",
            "  \"patterns\": {patterns}\n",
            "}}\n"
        ),
        objects = objects,
        ticks = ticks,
        zipf = arg(&args, "--zipf", 1.6),
        parallelism = parallelism,
        theta = theta,
        refine_depth = refine_depth,
        oracle = oracle_p95,
        s_tps = static_run.throughput_tps,
        s_ms = static_run.avg_latency_ms,
        s_p95 = static_run.p95_imbalance,
        s_mean = static_run.mean_imbalance,
        s_gap = gap(static_run.p95_imbalance),
        a_tps = adaptive_run.throughput_tps,
        a_ms = adaptive_run.avg_latency_ms,
        a_p95 = adaptive_run.p95_imbalance,
        a_mean = adaptive_run.mean_imbalance,
        a_gap = gap(adaptive_run.p95_imbalance),
        a_epoch = adaptive_run.routing_epoch,
        a_migr = adaptive_run.cells_migrated,
        r_tps = refined_run.throughput_tps,
        r_ms = refined_run.avg_latency_ms,
        r_p95 = refined_run.p95_imbalance,
        r_mean = refined_run.mean_imbalance,
        r_gap = gap(refined_run.p95_imbalance),
        r_epoch = refined_run.routing_epoch,
        r_migr = refined_run.cells_migrated,
        r_splits = refined_run.splits,
        r_coal = refined_run.coalesces,
        r_depth = refined_run.max_refine_depth,
        imp = improvement,
        tps_ratio = tps_ratio,
        r_tps_ratio = refined_tps_ratio,
        patterns = static_run.patterns,
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!("wrote {out}");

    if check {
        // Generous CI bounds: the full-scale run demonstrates ≥ 2×; the
        // smoke run only guards against regressions (and flaky machines).
        assert!(
            adaptive_run.routing_epoch > 0,
            "CHECK FAILED: the balancer never migrated on a Zipf hotspot workload"
        );
        assert!(
            improvement >= 1.2,
            "CHECK FAILED: adaptive p95 imbalance {:.3} not ≥1.2× better than static {:.3}",
            adaptive_run.p95_imbalance,
            static_run.p95_imbalance
        );
        assert!(
            tps_ratio >= 0.6,
            "CHECK FAILED: adaptive throughput dropped to {tps_ratio:.2}× of static"
        );
        assert!(
            refined_run.splits > 0,
            "CHECK FAILED: refinement never split a cell on a Zipf hotspot workload"
        );
        let (refined_gap, adaptive_gap) = (
            gap(refined_run.p95_imbalance),
            gap(adaptive_run.p95_imbalance),
        );
        // With fresh feedback both modes sit within a few percent of the
        // floor, so strict ≤ would flip on run noise; the bound still
        // catches refinement actively hurting placement.
        assert!(
            refined_gap <= adaptive_gap * 1.05,
            "CHECK FAILED: refined gap_to_floor {refined_gap:.3} worse than \
             refinement-off {adaptive_gap:.3}"
        );
        assert!(
            refined_gap <= max_gap,
            "CHECK FAILED: refined gap_to_floor {refined_gap:.3} exceeds {max_gap:.2}× \
             the hindsight-LPT oracle"
        );
        assert!(
            refined_tps_ratio >= 0.6,
            "CHECK FAILED: refined throughput dropped to {refined_tps_ratio:.2}× of static"
        );
        println!("CHECK OK");
    }
}
