//! Skew bench — static `hash(cell) % N` vs. hotspot-aware adaptive
//! routing on the Zipf moving-hotspot workload.
//!
//! Measures, per routing mode: pipeline throughput, average latency, and
//! the per-window `max/mean` GridQuery subtask-load ratio (p95 and mean
//! over all windows; 1.0 = perfectly balanced, `N` = everything on one
//! subtask). Writes a `BENCH_skew.json` summary to seed the performance
//! trajectory.
//!
//! ```text
//! bench_skew [--check] [--objects N] [--ticks T] [--parallelism P]
//!            [--theta F] [--out PATH]
//!
//! --check   CI smoke mode: assert adaptive imbalance beats static by a
//!           generous margin (p95 ratio ≥ 1.2×) at no worse than 0.6×
//!           throughput, exit non-zero otherwise.
//! ```

use icpe_bench::arg;
use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_types::{Constraints, GpsRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct RunStats {
    throughput_tps: f64,
    avg_latency_ms: f64,
    p95_imbalance: f64,
    mean_imbalance: f64,
    routing_epoch: u64,
    cells_migrated: u64,
    patterns: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run(config: &IcpeConfig, records: &[GpsRecord]) -> RunStats {
    let patterns = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&patterns);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(_) = e {
            sink.fetch_add(1, Ordering::Relaxed);
        }
    });
    let routing = live
        .routing()
        .cloned()
        .expect("grid clusterers expose the routing layer");
    for r in records {
        live.push(*r).expect("pipeline alive");
    }
    let report = live.finish();
    let status = routing.status();
    let mut ratios: Vec<f64> = routing
        .imbalance_series()
        .into_iter()
        .map(|(_, ratio)| ratio)
        .collect();
    let mean = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    RunStats {
        throughput_tps: report.throughput_tps,
        avg_latency_ms: report.avg_latency.as_secs_f64() * 1e3,
        p95_imbalance: percentile(&ratios, 0.95),
        mean_imbalance: mean,
        routing_epoch: status.epoch,
        cells_migrated: status.cells_migrated,
        patterns: patterns.load(Ordering::Relaxed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let objects: usize = arg(&args, "--objects", 600);
    let ticks: u32 = arg(&args, "--ticks", 120);
    let parallelism: usize = arg(&args, "--parallelism", 8);
    let theta: f64 = arg(&args, "--theta", 1.05);
    let cooldown: u32 = arg(&args, "--cooldown", 0);
    let decay: f64 = arg(&args, "--decay", 0.5);
    let out: String = arg(&args, "--out", "BENCH_skew.json".to_string());

    // Workload shape: long hot-site dwell (travel is load the balancer
    // cannot predict) and strong Zipf skew — the regime static hashing
    // handles worst; see the generator docs for the knobs.
    let defaults = HotspotConfig::default();
    let gen = HotspotGenerator::new(HotspotConfig {
        num_objects: objects,
        num_ticks: ticks,
        zipf_s: arg(&args, "--zipf", 1.6),
        orbit_turns: arg(&args, "--orbit", defaults.orbit_turns),
        retarget_every: arg(&args, "--retarget", 100),
        ..defaults
    });
    let records = gen.traces().to_gps_records();
    println!("skew bench — Zipf moving-hotspot workload");
    println!("  objects {objects}, ticks {ticks}, parallelism {parallelism}, θ {theta}");
    println!("  {} records\n", records.len());

    let build = |adaptive: bool| {
        // min_pts above the squad size: lone squads still produce the
        // range-join pairs that load the grid stage, but only genuine
        // slot-sharing crowds cluster — keeping enumeration cheap so the
        // bench measures the clustering stage this PR repartitions.
        // Grid width: finer than the 8×ε default so a hotspot spans
        // several cells — cells are the atomic unit of routing, and a
        // single cell as hot as a whole subtask's fair share cannot be
        // split by ANY placement (Figure 11 shows clustering itself is
        // flat across this range).
        let mut b = IcpeConfig::builder()
            .constraints(Constraints::new(4, 8, 4, 2).expect("valid constraints"))
            .epsilon(1.0)
            .grid_width(arg(&args, "--lg", 8.0))
            .min_pts(5)
            .parallelism(parallelism)
            .enumerator(EnumeratorKind::Fba);
        if adaptive {
            b = b.rebalance(BalancerConfig {
                theta,
                cooldown_windows: cooldown,
                decay,
                ..BalancerConfig::default()
            });
        }
        b.build().expect("valid config")
    };

    let static_run = run(&build(false), &records);
    let adaptive_run = run(&build(true), &records);
    if args.iter().any(|a| a == "--oracle") {
        // Hindsight floor: per window, LPT the actual cell loads — the
        // best any cell-granularity placement could have done.
        let cfg = build(false);
        let live = IcpePipeline::launch(&cfg, |_| {});
        let routing = live.routing().cloned().expect("grid stage");
        for r in &records {
            live.push(*r).expect("pipeline alive");
        }
        live.finish();
        let mut ratios: Vec<f64> = Vec::new();
        for (_, cells) in routing.sealed_cell_windows() {
            let mut weights: Vec<u64> = cells.iter().map(|&(_, w)| w).collect();
            weights.sort_unstable_by(|a, b| b.cmp(a));
            let mut bins = vec![0u64; parallelism];
            for w in weights {
                *bins.iter_mut().min().expect("bins") += w;
            }
            let total: u64 = bins.iter().sum();
            if total > 0 {
                let mean = total as f64 / parallelism as f64;
                ratios.push(*bins.iter().max().expect("bins") as f64 / mean);
            }
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "oracle (hindsight LPT): p95 {:.3}, mean {:.3}",
            percentile(&ratios, 0.95),
            ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
        );
    }
    if args.iter().any(|a| a == "--series") {
        for (name, cfg) in [("static", build(false)), ("adaptive", build(true))] {
            let live = IcpePipeline::launch(&cfg, |_| {});
            let routing = live.routing().cloned().expect("grid stage");
            for r in &records {
                live.push(*r).expect("pipeline alive");
            }
            live.finish();
            let series: Vec<String> = routing
                .imbalance_series()
                .iter()
                .map(|(t, r)| format!("{t}:{r:.2}"))
                .collect();
            println!("{name} series: {}", series.join(" "));
        }
    }

    println!(
        "{:>10} | {:>9} {:>9} | {:>8} {:>8} | {:>6} {:>9}",
        "mode", "tps", "ms", "p95 imb", "avg imb", "epoch", "migrated"
    );
    for (name, s) in [("static", &static_run), ("adaptive", &adaptive_run)] {
        println!(
            "{:>10} | {:>9.1} {:>9.3} | {:>8.3} {:>8.3} | {:>6} {:>9}",
            name,
            s.throughput_tps,
            s.avg_latency_ms,
            s.p95_imbalance,
            s.mean_imbalance,
            s.routing_epoch,
            s.cells_migrated
        );
    }
    let improvement = static_run.p95_imbalance / adaptive_run.p95_imbalance.max(1.0);
    let tps_ratio = adaptive_run.throughput_tps / static_run.throughput_tps.max(1e-9);
    println!("\np95 imbalance improvement: {improvement:.2}× (throughput ratio {tps_ratio:.2})");
    assert_eq!(
        static_run.patterns, adaptive_run.patterns,
        "routing must not change the sealed pattern multiset"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"skew\",\n",
            "  \"workload\": {{\"kind\": \"hotspot\", \"objects\": {objects}, \"ticks\": {ticks}, \"zipf_s\": {zipf}}},\n",
            "  \"parallelism\": {parallelism},\n",
            "  \"theta\": {theta},\n",
            "  \"static\": {{\"throughput_tps\": {s_tps:.1}, \"avg_latency_ms\": {s_ms:.3}, \"p95_imbalance\": {s_p95:.3}, \"mean_imbalance\": {s_mean:.3}}},\n",
            "  \"adaptive\": {{\"throughput_tps\": {a_tps:.1}, \"avg_latency_ms\": {a_ms:.3}, \"p95_imbalance\": {a_p95:.3}, \"mean_imbalance\": {a_mean:.3}, \"routing_epoch\": {a_epoch}, \"cells_migrated\": {a_migr}}},\n",
            "  \"p95_imbalance_improvement\": {imp:.3},\n",
            "  \"throughput_ratio\": {tps_ratio:.3},\n",
            "  \"patterns\": {patterns}\n",
            "}}\n"
        ),
        objects = objects,
        ticks = ticks,
        zipf = arg(&args, "--zipf", 1.6),
        parallelism = parallelism,
        theta = theta,
        s_tps = static_run.throughput_tps,
        s_ms = static_run.avg_latency_ms,
        s_p95 = static_run.p95_imbalance,
        s_mean = static_run.mean_imbalance,
        a_tps = adaptive_run.throughput_tps,
        a_ms = adaptive_run.avg_latency_ms,
        a_p95 = adaptive_run.p95_imbalance,
        a_mean = adaptive_run.mean_imbalance,
        a_epoch = adaptive_run.routing_epoch,
        a_migr = adaptive_run.cells_migrated,
        imp = improvement,
        tps_ratio = tps_ratio,
        patterns = static_run.patterns,
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!("wrote {out}");

    if check {
        // Generous CI bounds: the full-scale run demonstrates ≥ 2×; the
        // smoke run only guards against regressions (and flaky machines).
        assert!(
            adaptive_run.routing_epoch > 0,
            "CHECK FAILED: the balancer never migrated on a Zipf hotspot workload"
        );
        assert!(
            improvement >= 1.2,
            "CHECK FAILED: adaptive p95 imbalance {:.3} not ≥1.2× better than static {:.3}",
            adaptive_run.p95_imbalance,
            static_run.p95_imbalance
        );
        assert!(
            tps_ratio >= 0.6,
            "CHECK FAILED: adaptive throughput dropped to {tps_ratio:.2}× of static"
        );
        println!("CHECK OK");
    }
}
