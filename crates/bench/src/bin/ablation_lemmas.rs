//! Ablation — what each pruning lemma of §5.2 is worth.
//!
//! Four range-join configurations over the same snapshots:
//!
//! * `L1+L2` — upper-half replication (Lemma 1) and query-during-build
//!   (Lemma 2): the paper's RJC;
//! * `L1 only` — upper-half replication, but build-then-query;
//! * `L2 only` — full-region replication, query-during-build;
//! * `none` — full replication, build-then-query: the SRJ baseline.
//!
//! All four compute the same join (asserted); the table shows the work each
//! lemma removes, including the duplicate discoveries GridSync suppressed.

use icpe_bench::{build_traces, extent, BenchParams, Dataset};
use icpe_cluster::allocate::{grid_allocate, grid_allocate_full};
use icpe_cluster::query::{canonical, NeighborPair};
use icpe_cluster::sync::PairCollector;
use icpe_cluster::CellQueryEngine;
use icpe_index::{Grid, GridKey, RTree};
use icpe_types::{DistanceMetric, ObjectId, Point, Snapshot};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let params = BenchParams::default();
    params.print_header("Ablation — Lemma 1 (replication) and Lemma 2 (query-during-build)");

    let traces = build_traces(Dataset::Taxi, &params);
    let snapshots = traces.to_snapshots();
    let ext = extent(&traces);
    let eps = params.eps_default * ext;
    let grid = Grid::new(params.lg_default * ext);
    let metric = DistanceMetric::Chebyshev;

    println!(
        "\n{:<10} {:>12} {:>12} {:>14} {:>12}",
        "config", "avg ms", "tps", "replicas/snap", "dups/snap"
    );
    let mut reference: Option<usize> = None;
    for (name, lemma1, lemma2) in [
        ("L1+L2", true, true),
        ("L1 only", true, false),
        ("L2 only", false, true),
        ("none", false, false),
    ] {
        let started = Instant::now();
        let mut pairs_total = 0usize;
        let mut replicas = 0usize;
        let mut dups = 0usize;
        for s in &snapshots {
            let (pairs, stats) = join(s, &grid, eps, metric, lemma1, lemma2);
            pairs_total += pairs.len();
            replicas += stats.0;
            dups += stats.1;
        }
        let total = started.elapsed();
        let n = snapshots.len().max(1);
        match reference {
            None => reference = Some(pairs_total),
            Some(r) => assert_eq!(r, pairs_total, "{name} computed a different join!"),
        }
        println!(
            "{:<10} {:>12.3} {:>12.0} {:>14.1} {:>12.1}",
            name,
            total.as_secs_f64() * 1e3 / n as f64,
            n as f64 / total.as_secs_f64().max(1e-12),
            replicas as f64 / n as f64,
            dups as f64 / n as f64,
        );
    }
    println!(
        "\nall four configurations produced the identical {} join pairs ✓",
        reference.unwrap_or(0)
    );
}

/// Runs one configurable range join; returns the pairs and
/// `(grid objects emitted, duplicate discoveries suppressed)`.
fn join(
    snapshot: &Snapshot,
    grid: &Grid,
    eps: f64,
    metric: DistanceMetric,
    lemma1: bool,
    lemma2: bool,
) -> (Vec<NeighborPair>, (usize, usize)) {
    let objects = if lemma1 {
        grid_allocate(snapshot, grid, eps)
    } else {
        grid_allocate_full(snapshot, grid, eps)
    };
    let replicas = objects.len();
    let mut cells: HashMap<GridKey, Vec<&icpe_cluster::GridObject>> = HashMap::new();
    for o in &objects {
        cells.entry(o.key).or_default().push(o);
    }
    let mut collector = PairCollector::new();
    let mut scratch: Vec<NeighborPair> = Vec::new();
    for (_, cell) in cells {
        scratch.clear();
        if lemma2 {
            let mut engine = CellQueryEngine::new(eps, metric);
            for o in cell.iter().filter(|o| !o.is_query) {
                engine.push_data(o.id, o.location, &mut scratch);
            }
            for o in cell.iter().filter(|o| o.is_query) {
                engine.push_query(o.id, o.location, &mut scratch);
            }
        } else {
            let mut items: Vec<(Point, ObjectId)> = cell
                .iter()
                .filter(|o| !o.is_query)
                .map(|o| (o.location, o.id))
                .collect();
            let tree = RTree::bulk_load_with_max_entries(16, &mut items);
            let mut hits = Vec::new();
            for o in &cell {
                hits.clear();
                tree.query_within(&o.location, eps, metric, &mut hits);
                for (_, &other) in &hits {
                    if other != o.id {
                        scratch.push(canonical(o.id, other));
                    }
                }
            }
        }
        collector.extend(scratch.drain(..));
    }
    let dups = collector.duplicates();
    (collector.into_pairs(), (replicas, dups))
}
