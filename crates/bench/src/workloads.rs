//! Dataset construction for the harness: the three workloads of Table 2 at
//! harness scale, with a co-movement substrate so the pattern phase has
//! something to find.

use crate::params::{BenchParams, Dataset};
use icpe_gen::{
    BrinkhoffConfig, BrinkhoffGenerator, GeoLifeConfig, GeoLifeGenerator, GroupWalkConfig,
    GroupWalkGenerator, TaxiConfig, TaxiGenerator, TraceSet,
};
use icpe_types::Point;

/// Builds the traces of one dataset at harness scale.
pub fn build_traces(dataset: Dataset, params: &BenchParams) -> TraceSet {
    match dataset {
        Dataset::GeoLife => GeoLifeGenerator::new(GeoLifeConfig {
            num_objects: params.objects,
            num_ticks: params.ticks,
            area: 300.0,
            seed: 0xFEE1,
            ..GeoLifeConfig::default()
        })
        .traces(),
        Dataset::Taxi => TaxiGenerator::new(TaxiConfig {
            num_objects: params.objects,
            num_ticks: params.ticks,
            seed: 0xFEE2,
            ..TaxiConfig::default()
        })
        .traces(),
        Dataset::Brinkhoff => BrinkhoffGenerator::new(BrinkhoffConfig {
            num_objects: params.objects,
            num_ticks: params.ticks,
            seed: 0xFEE3,
            ..BrinkhoffConfig::default()
        })
        .traces(),
    }
}

/// A pattern-rich workload: planted groups with episodic co-movement, used
/// by the enumeration-focused experiments (Figures 12–15) where cluster
/// structure must be controlled.
pub fn pattern_workload(objects: usize, ticks: u32, seed: u64) -> (GroupWalkGenerator, TraceSet) {
    pattern_workload_sized(objects, ticks, 6, seed)
}

/// [`pattern_workload`] with an explicit group size — the direct control
/// over average cluster size (the "avg cluster size" series of Figs 12–13).
pub fn pattern_workload_sized(
    objects: usize,
    ticks: u32,
    group_size: usize,
    seed: u64,
) -> (GroupWalkGenerator, TraceSet) {
    let num_groups = ((objects / 3) / group_size).max(1); // a third grouped
    let gen = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: objects.max(num_groups * group_size),
        num_groups,
        group_size,
        num_snapshots: ticks,
        area: 250.0,
        speed: 2.0,
        cohesion_radius: 0.7,
        active_len: 12,
        gap_len: 3,
        dispersal_radius: 25.0,
        seed,
    });
    let traces = gen.traces();
    (gen, traces)
}

/// The spatial extent (max of width/height) of a trace set — the reference
/// for the paper's percent-of-extent parameters.
pub fn extent(traces: &TraceSet) -> f64 {
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for (_, trace) in traces.iter() {
        for &(_, p) in trace {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
    }
    (max.x - min.x).max(max.y - min.y).max(1e-9)
}

/// Restricts a trace set to the first `ratio` fraction of object ids —
/// the paper's `Or` (ratio of objects) knob.
pub fn object_ratio(traces: &TraceSet, ratio: f64) -> TraceSet {
    let keep = ((traces.num_trajectories() as f64) * ratio).ceil() as usize;
    let mut out = TraceSet::new();
    for (id, trace) in traces.iter().take(keep) {
        for &(tick, p) in trace {
            out.push(id, tick, p);
        }
    }
    out
}

/// Strided subsampling to `ratio` of the objects: keeps every k-th id, so
/// planted groups (contiguous id ranges) *thin out* proportionally — the way
/// subsampling a real fleet shrinks its co-moving clusters. This is the
/// `Or` knob used by the detection experiments, where average cluster size
/// must grow with Or as in the paper's Figure 12.
pub fn object_sample(traces: &TraceSet, ratio: f64) -> TraceSet {
    let n = traces.num_trajectories().max(1) as f64;
    let keep = (n * ratio).round().max(1.0) as usize;
    let mut out = TraceSet::new();
    let mut taken = 0usize;
    for (i, (id, trace)) in traces.iter().enumerate() {
        // Evenly spaced selection: take object i when its quota index
        // advances (Bresenham-style).
        let due = ((i + 1) * keep) / traces.num_trajectories();
        if due > taken {
            taken = due;
            for &(tick, p) in trace {
                out.push(id, tick, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchParams {
        BenchParams {
            objects: 40,
            ticks: 30,
            ..BenchParams::default()
        }
    }

    #[test]
    fn all_datasets_build() {
        for d in Dataset::ALL {
            let t = build_traces(d, &tiny());
            assert_eq!(t.num_trajectories(), 40, "{d:?}");
            assert!(t.num_locations() > 0);
        }
    }

    #[test]
    fn extent_is_positive() {
        let t = build_traces(Dataset::Taxi, &tiny());
        assert!(extent(&t) > 10.0);
    }

    #[test]
    fn object_ratio_scales_population() {
        let t = build_traces(Dataset::Brinkhoff, &tiny());
        let half = object_ratio(&t, 0.5);
        assert_eq!(half.num_trajectories(), 20);
        let all = object_ratio(&t, 1.0);
        assert_eq!(all.num_trajectories(), 40);
    }

    #[test]
    fn pattern_workload_has_groups() {
        let (gen, traces) = pattern_workload(60, 40, 1);
        assert!(!gen.planted_groups().is_empty());
        assert_eq!(traces.num_trajectories(), 60);
    }
}
