//! # icpe-bench — the evaluation harness (§7 of the paper)
//!
//! One binary per table/figure regenerates the corresponding experiment;
//! `cargo bench` runs the Criterion micro-benchmarks (component ablations).
//!
//! ```text
//! cargo run -p icpe-bench --release --bin table2_datasets
//! cargo run -p icpe-bench --release --bin fig10_clustering_vs_eps
//! cargo run -p icpe-bench --release --bin fig11_clustering_vs_lg
//! cargo run -p icpe-bench --release --bin fig12_detection_vs_or
//! cargo run -p icpe-bench --release --bin fig13_detection_vs_eps
//! cargo run -p icpe-bench --release --bin fig14_detection_vs_n
//! cargo run -p icpe-bench --release --bin fig15_enum_constraints
//! ```
//!
//! The workloads are scaled-down substitutes for the paper's datasets (see
//! DESIGN.md §4); scale can be raised with the environment variables
//! `ICPE_BENCH_OBJECTS` and `ICPE_BENCH_TICKS`. Absolute numbers differ from
//! the paper's 11-node cluster; EXPERIMENTS.md records whether the *shapes*
//! reproduce.

pub mod measure;
pub mod params;
pub mod workloads;

pub use measure::{measure_clustering, measure_detection, ClusteringRow, DetectionRow};
pub use params::{BenchParams, Dataset};
pub use workloads::{build_traces, extent, object_ratio, pattern_workload};

/// Parses `--flag value` from a raw argv slice, falling back to `default`
/// when the flag is absent or unparsable — the shared CLI helper of the
/// bench binaries.
pub fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
