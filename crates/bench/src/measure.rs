//! Measurement helpers shared by the harness binaries.
//!
//! The paper reports two metrics (§7 "Performance Metrics"): the **average
//! latency** per snapshot and the **throughput** in snapshots per second.
//! Clustering rows measure the clustering phase alone (Figures 10–11);
//! detection rows measure the full two-phase flow with the per-phase split
//! shown as stacked bars in Figures 12–13.

use icpe_cluster::SnapshotClusterer;
use icpe_core::{IcpeConfig, IcpeEngine};
use icpe_types::Snapshot;
use std::time::Instant;

/// One measured point of a clustering experiment.
#[derive(Debug, Clone, Copy)]
pub struct ClusteringRow {
    /// Mean per-snapshot latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Snapshots processed per second.
    pub throughput_tps: f64,
    /// Mean cluster size over the run.
    pub avg_cluster_size: f64,
}

/// Runs a clusterer over a snapshot stream and measures it.
pub fn measure_clustering(
    clusterer: &(dyn SnapshotClusterer + Send),
    snapshots: &[Snapshot],
) -> ClusteringRow {
    let started = Instant::now();
    let mut members = 0usize;
    let mut clusters = 0usize;
    for s in snapshots {
        let cs = clusterer.cluster(s);
        clusters += cs.clusters.len();
        members += cs.clusters.iter().map(|c| c.len()).sum::<usize>();
    }
    let total = started.elapsed();
    let n = snapshots.len().max(1);
    ClusteringRow {
        avg_latency_ms: total.as_secs_f64() * 1e3 / n as f64,
        throughput_tps: n as f64 / total.as_secs_f64().max(1e-12),
        avg_cluster_size: if clusters == 0 {
            0.0
        } else {
            members as f64 / clusters as f64
        },
    }
}

/// One measured point of a full-detection experiment.
#[derive(Debug, Clone, Copy)]
pub struct DetectionRow {
    /// Mean clustering latency per snapshot (ms) — the lower bar segment.
    pub clustering_ms: f64,
    /// Mean enumeration latency per snapshot (ms) — the upper bar segment.
    pub enumeration_ms: f64,
    /// Snapshots per second over the whole run.
    pub throughput_tps: f64,
    /// Mean cluster size (the line series of Figures 12–13).
    pub avg_cluster_size: f64,
    /// Patterns reported (windows × sets; not deduplicated).
    pub patterns: usize,
    /// Partitions the engine refused (Baseline guard; 0 for FBA/VBA).
    /// Non-zero = the paper's "B cannot run" regime.
    pub overflowed: usize,
}

impl DetectionRow {
    /// Total mean latency (both phases).
    pub fn total_ms(&self) -> f64 {
        self.clustering_ms + self.enumeration_ms
    }
}

/// Runs the full two-phase engine over a snapshot stream and measures it.
pub fn measure_detection(config: &IcpeConfig, snapshots: &[Snapshot]) -> DetectionRow {
    let mut engine = IcpeEngine::new(config.clone());
    let started = Instant::now();
    let mut patterns = 0usize;
    for s in snapshots {
        patterns += engine.push_snapshot(s.clone()).len();
    }
    patterns += engine.finish().len();
    let total = started.elapsed();
    let t = engine.timings();
    let n = snapshots.len().max(1);
    DetectionRow {
        clustering_ms: t.avg_clustering().as_secs_f64() * 1e3,
        enumeration_ms: t.avg_enumeration().as_secs_f64() * 1e3,
        throughput_tps: n as f64 / total.as_secs_f64().max(1e-12),
        avg_cluster_size: t.avg_cluster_size(),
        patterns,
        overflowed: engine.overflowed_partitions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_cluster::RjcClusterer;
    use icpe_types::{Constraints, DbscanParams, DistanceMetric, ObjectId, Point, Timestamp};

    fn snapshots() -> Vec<Snapshot> {
        // Four well-separated groups of five (one cluster each; keeping
        // clusters small bounds the pattern count, which is exponential in
        // cluster size by problem definition).
        (0..10)
            .map(|t| {
                Snapshot::from_pairs(
                    Timestamp(t),
                    (0..20).map(|i| {
                        (
                            ObjectId(i),
                            Point::new((i % 5) as f64 * 0.3 + (i / 5) as f64 * 100.0, t as f64),
                        )
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn clustering_measurement_is_sane() {
        let rjc = RjcClusterer::new(
            4.0,
            DbscanParams::new(1.0, 3).unwrap(),
            DistanceMetric::Chebyshev,
        );
        let row = measure_clustering(&rjc, &snapshots());
        assert!(row.avg_latency_ms > 0.0);
        assert!(row.throughput_tps > 0.0);
        assert!(row.avg_cluster_size > 0.0);
    }

    #[test]
    fn detection_measurement_is_sane() {
        let config = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(1.0)
            .min_pts(3)
            .build()
            .unwrap();
        let row = measure_detection(&config, &snapshots());
        assert!(row.total_ms() > 0.0);
        assert!(row.throughput_tps > 0.0);
        assert!(row.patterns > 0);
    }
}
