//! End-to-end pipeline benchmark: the distributed deployment at N = 1 vs.
//! N = 4 — the scaling claim of Figure 14 as a repeatable micro-benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icpe_bench::pattern_workload;
use icpe_core::{IcpeConfig, IcpePipeline};
use icpe_types::{Constraints, GpsRecord};
use std::hint::black_box;

fn records() -> Vec<GpsRecord> {
    let (_, traces) = pattern_workload(120, 80, 0xB1);
    traces.to_gps_records()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    let recs = records();
    for n in [1usize, 4] {
        let config = IcpeConfig::builder()
            .constraints(Constraints::new(3, 10, 4, 2).unwrap())
            .epsilon(2.0)
            .min_pts(4)
            .parallelism(n)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("N", n), &recs, |b, recs| {
            b.iter(|| {
                let out = IcpePipeline::run(&config, recs.clone());
                black_box(out.patterns.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
