//! Enumeration-engine comparison: BA vs. FBA vs. VBA on a planted cluster
//! stream — the exponential-to-linear claim of §6, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icpe_bench::pattern_workload;
use icpe_cluster::{RjcClusterer, SnapshotClusterer};
use icpe_pattern::{BaselineEngine, EngineConfig, FbaEngine, PatternEngine, VbaEngine};
use icpe_types::{ClusterSnapshot, Constraints, DbscanParams, DistanceMetric};
use std::hint::black_box;

fn cluster_stream(objects: usize, ticks: u32) -> Vec<ClusterSnapshot> {
    let (_, traces) = pattern_workload(objects, ticks, 0xBE);
    let clusterer = RjcClusterer::new(
        16.0,
        DbscanParams::new(2.0, 4).unwrap(),
        DistanceMetric::Chebyshev,
    );
    traces
        .to_snapshots()
        .iter()
        .map(|s| clusterer.cluster(s))
        .collect()
}

fn run(engine: &mut dyn PatternEngine, stream: &[ClusterSnapshot]) -> usize {
    let mut n = 0;
    for cs in stream {
        n += engine.push(cs).len();
    }
    n + engine.finish().len()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    let constraints = Constraints::new(3, 10, 4, 2).unwrap();
    let config = EngineConfig::new(constraints);

    for objects in [60usize, 120] {
        let stream = cluster_stream(objects, 60);
        group.bench_with_input(BenchmarkId::new("BA", objects), &stream, |b, s| {
            b.iter(|| black_box(run(&mut BaselineEngine::new(config), s)))
        });
        group.bench_with_input(BenchmarkId::new("FBA", objects), &stream, |b, s| {
            b.iter(|| black_box(run(&mut FbaEngine::new(config), s)))
        });
        group.bench_with_input(BenchmarkId::new("VBA", objects), &stream, |b, s| {
            b.iter(|| black_box(run(&mut VbaEngine::new(config), s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
