//! Bit-compression micro-benchmarks: the word-parallel AND and the
//! (K,L,G)-validity check that replace the Baseline's exponential subset
//! storage (§6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use icpe_pattern::{BitString, Semantics};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_bits(len: usize, density: f64, seed: u64) -> BitString {
    let mut rng = StdRng::seed_from_u64(seed);
    let bools: Vec<bool> = (0..len).map(|_| rng.random_bool(density)).collect();
    BitString::from_bools(&bools)
}

fn bench_and(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitstring_and");
    for len in [64usize, 1024] {
        let a = random_bits(len, 0.7, 1);
        let b = random_bits(len, 0.7, 2);
        group.bench_function(format!("and_{len}"), |bencher| {
            bencher.iter(|| black_box(a.and(&b).count_ones()))
        });
    }
    group.finish();
}

fn bench_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitstring_validity");
    let strings: Vec<BitString> = (0..64).map(|i| random_bits(256, 0.6, i)).collect();
    for (name, sem) in [
        ("subsequence", Semantics::Subsequence),
        ("paper_greedy", Semantics::PaperGreedy),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut valid = 0usize;
                for s in &strings {
                    if s.satisfies_klg(20, 5, 3, sem) {
                        valid += 1;
                    }
                }
                black_box(valid)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_and, bench_validity);
criterion_main!(benches);
