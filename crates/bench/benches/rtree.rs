//! R-tree micro-benchmarks: incremental insert vs. STR bulk load, range
//! queries vs. brute-force scan — the local-index layer of the GR-index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icpe_index::RTree;
use icpe_types::{DistanceMetric, Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn points(n: usize, seed: u64) -> Vec<(Point, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)),
                i as u32,
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let items = points(n, 7);
        group.bench_with_input(BenchmarkId::new("incremental", n), &items, |b, items| {
            b.iter(|| {
                let mut t = RTree::with_max_entries(16);
                for (p, v) in items {
                    t.insert(*p, *v);
                }
                black_box(t.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("str_bulk", n), &items, |b, items| {
            b.iter(|| {
                let mut cloned = items.clone();
                let t = RTree::bulk_load_with_max_entries(16, &mut cloned);
                black_box(t.len())
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_query");
    group.sample_size(30);
    let items = points(20_000, 9);
    let tree = RTree::bulk_load(items.clone());
    let queries = points(200, 11);

    group.bench_function("rtree_range", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut out = Vec::new();
            for (q, _) in &queries {
                out.clear();
                tree.query_within(q, 5.0, DistanceMetric::Chebyshev, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });
    group.bench_function("brute_force_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (q, _) in &queries {
                let r = Rect::range_region(*q, 5.0);
                total += items.iter().filter(|(p, _)| r.contains_point(p)).count();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
