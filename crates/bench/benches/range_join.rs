//! Range-join ablations: RJC (Lemmas 1 + 2) vs. SRJ (full replication,
//! build-then-query) vs. GDC (ε-grid) vs. the O(n²) naive join — the
//! clustering-side comparison of Figures 10–11 in microcosm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icpe_cluster::naive::naive_range_join;
use icpe_cluster::{GdcClusterer, RjcClusterer, SrjClusterer};
use icpe_types::{DbscanParams, DistanceMetric, ObjectId, Point, Snapshot, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn snapshot(n: usize, seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    Snapshot::from_pairs(
        Timestamp(0),
        (0..n).map(|i| {
            (
                ObjectId(i as u32),
                Point::new(rng.random_range(0.0..500.0), rng.random_range(0.0..500.0)),
            )
        }),
    )
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_join");
    group.sample_size(20);
    let eps = 3.0;
    let lg = 24.0;
    let metric = DistanceMetric::Chebyshev;
    let dbscan = DbscanParams::new(eps, 4).unwrap();

    for n in [500usize, 2_000] {
        let snap = snapshot(n, 3);
        let rjc = RjcClusterer::new(lg, dbscan, metric);
        let srj = SrjClusterer::new(lg, dbscan, metric);
        let gdc = GdcClusterer::new(dbscan, metric);

        group.bench_with_input(BenchmarkId::new("RJC", n), &snap, |b, s| {
            b.iter(|| black_box(rjc.range_join(s).len()))
        });
        group.bench_with_input(BenchmarkId::new("SRJ", n), &snap, |b, s| {
            b.iter(|| black_box(srj.range_join(s).len()))
        });
        group.bench_with_input(BenchmarkId::new("GDC", n), &snap, |b, s| {
            b.iter(|| black_box(gdc.range_join(s).len()))
        });
        if n <= 500 {
            group.bench_with_input(BenchmarkId::new("naive", n), &snap, |b, s| {
                b.iter(|| black_box(naive_range_join(s, eps, metric).len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
