//! DBSCAN ablation: the pair-stream union-find DBSCAN (O(pairs), the
//! paper's "O(n)" post-join step) vs. the textbook O(n²) implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icpe_cluster::naive::naive_dbscan;
use icpe_cluster::RjcClusterer;
use icpe_types::{DbscanParams, DistanceMetric, ObjectId, Point, Snapshot, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn clustered_snapshot(n: usize, seed: u64) -> Snapshot {
    // A grid of blobs so DBSCAN has real work.
    let mut rng = StdRng::seed_from_u64(seed);
    Snapshot::from_pairs(
        Timestamp(0),
        (0..n).map(|i| {
            let cx = ((i % 10) * 50) as f64;
            let cy = ((i / 10 % 10) * 50) as f64;
            (
                ObjectId(i as u32),
                Point::new(
                    cx + rng.random_range(-4.0..4.0),
                    cy + rng.random_range(-4.0..4.0),
                ),
            )
        }),
    )
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    group.sample_size(20);
    let params = DbscanParams::new(2.0, 4).unwrap();
    let metric = DistanceMetric::Chebyshev;

    for n in [500usize, 2_000] {
        let snap = clustered_snapshot(n, 5);
        let rjc = RjcClusterer::new(16.0, params, metric);
        group.bench_with_input(BenchmarkId::new("join_plus_unionfind", n), &snap, |b, s| {
            b.iter(|| black_box(rjc.cluster_detailed(s).snapshot.clusters.len()))
        });
        if n <= 500 {
            group.bench_with_input(BenchmarkId::new("naive_n_squared", n), &snap, |b, s| {
                b.iter(|| black_box(naive_dbscan(s, &params, metric).clusters.len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan);
criterion_main!(benches);
