//! Cross-engine equivalence: BA ≡ FBA ≡ VBA ≡ exhaustive oracle on random
//! cluster streams, under the default (Definition-4 / subsequence)
//! semantics; plus bit-string validity ≡ the tiny exhaustive subset search.

use icpe_pattern::reference::ExhaustiveMiner;
use icpe_pattern::runs::{exhaustive_subsequence_valid, runs_from_times, runs_valid};
use icpe_pattern::{
    unique_object_sets, BaselineEngine, EngineConfig, FbaEngine, PatternEngine, Semantics,
    VbaEngine,
};
use icpe_types::{ClusterSnapshot, Constraints, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;

/// A random dense cluster stream over a small population: at each tick,
/// objects are grouped by a random assignment; group 0 means "noise".
fn arb_stream(
    num_objects: u32,
    num_groups: u32,
    ticks: usize,
) -> impl Strategy<Value = Vec<ClusterSnapshot>> {
    prop::collection::vec(
        prop::collection::vec(0..=num_groups, num_objects as usize),
        1..ticks,
    )
    .prop_map(move |assignments| {
        assignments
            .into_iter()
            .enumerate()
            .map(|(t, assign)| {
                let mut groups: Vec<Vec<ObjectId>> = vec![Vec::new(); num_groups as usize];
                for (obj, &g) in assign.iter().enumerate() {
                    if g > 0 {
                        groups[(g - 1) as usize].push(ObjectId(obj as u32));
                    }
                }
                ClusterSnapshot::from_groups(
                    Timestamp(t as u32),
                    groups.into_iter().filter(|g| g.len() >= 2),
                )
            })
            .collect()
    })
}

fn run_engine(engine: &mut dyn PatternEngine, stream: &[ClusterSnapshot]) -> Vec<Pattern> {
    let mut out = Vec::new();
    for s in stream {
        out.extend(engine.push(s));
    }
    out.extend(engine.finish());
    out
}

fn arb_constraints() -> impl Strategy<Value = Constraints> {
    (2usize..4, 2usize..6, 1usize..3, 1u32..4).prop_map(|(m, k, l, g)| {
        let l = l.min(k);
        Constraints::new(m, k, l, g).expect("valid constraints")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The central theorem of the reproduction: all three streaming engines
    /// report exactly the oracle's object sets under subsequence semantics.
    #[test]
    fn engines_agree_with_oracle(
        stream in arb_stream(7, 2, 14),
        constraints in arb_constraints(),
    ) {
        let config = EngineConfig::new(constraints);
        let mut ba = BaselineEngine::new(config);
        let mut fba = FbaEngine::new(config);
        let mut vba = VbaEngine::new(config);
        let ba_sets = unique_object_sets(&run_engine(&mut ba, &stream));
        let fba_sets = unique_object_sets(&run_engine(&mut fba, &stream));
        let vba_sets = unique_object_sets(&run_engine(&mut vba, &stream));

        let mut miner = ExhaustiveMiner::new();
        for s in &stream {
            miner.push(s.clone());
        }
        let oracle_sets = miner.mine_object_sets(&constraints, Semantics::Subsequence);

        prop_assert_eq!(&ba_sets, &oracle_sets, "BA disagrees with oracle");
        prop_assert_eq!(&fba_sets, &oracle_sets, "FBA disagrees with oracle");
        prop_assert_eq!(&vba_sets, &oracle_sets, "VBA disagrees with oracle");
    }

    /// Every reported pattern satisfies the constraints it was mined under,
    /// and its witnessing times are genuinely co-clustered times.
    #[test]
    fn reported_patterns_are_sound(
        stream in arb_stream(6, 2, 12),
        constraints in arb_constraints(),
    ) {
        let config = EngineConfig::new(constraints);
        for engine in [&mut BaselineEngine::new(config) as &mut dyn PatternEngine,
                       &mut FbaEngine::new(config),
                       &mut VbaEngine::new(config)] {
            let name = engine.name();
            for p in run_engine(engine, &stream) {
                prop_assert!(p.satisfies(&constraints), "{name}: {p}");
                for t in p.times.times() {
                    let snap = stream.iter().find(|s| s.time == *t)
                        .expect("witness time within stream");
                    let together = snap.clusters.iter()
                        .any(|c| p.objects.iter().all(|&o| c.contains(o)));
                    prop_assert!(together, "{name}: {p} not co-clustered at {t}");
                }
            }
        }
    }

    /// Bit-run validity equals the exhaustive subset search (the independent
    /// definition of Definition-4 semantics).
    #[test]
    fn subsequence_validity_matches_exhaustive(
        bits in prop::collection::vec(prop::bool::ANY, 1..16),
        k in 1usize..6,
        l in 1usize..4,
        g in 1u32..4,
    ) {
        let times: Vec<u32> = bits.iter().enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
            .collect();
        let fast = runs_valid(&runs_from_times(&times), k, l, g, Semantics::Subsequence);
        let slow = exhaustive_subsequence_valid(&times, k, l, g);
        prop_assert_eq!(fast, slow, "times {:?} k={} l={} g={}", times, k, l, g);
    }

    /// PaperGreedy never reports more than Subsequence (it is a strict
    /// subset relation: every greedy-valid candidate is subsequence-valid).
    #[test]
    fn greedy_is_a_subset_of_subsequence(
        bits in prop::collection::vec(prop::bool::ANY, 1..20),
        k in 1usize..6,
        l in 1usize..4,
        g in 1u32..4,
    ) {
        let times: Vec<u32> = bits.iter().enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
            .collect();
        let runs = runs_from_times(&times);
        if runs_valid(&runs, k, l, g, Semantics::PaperGreedy) {
            prop_assert!(runs_valid(&runs, k, l, g, Semantics::Subsequence));
        }
    }
}
