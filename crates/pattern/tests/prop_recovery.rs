//! Property tests for engine checkpoint/restore across all three
//! enumeration engines: canonical (byte-identical) re-serialization,
//! behavioural equivalence on arbitrary cluster streams, and typed
//! rejection of semantically corrupt checkpoints.

use icpe_pattern::{BaselineEngine, EngineConfig, FbaEngine, PatternEngine, VbaEngine};
use icpe_types::{
    CheckpointError, ClusterSnapshot, Constraints, EngineCheckpoint, ObjectId, Pattern, Timestamp,
};
use proptest::prelude::*;

fn constraints() -> Constraints {
    // CP(2, 3, 1, 2): small enough that random streams regularly produce
    // patterns, with η = (3−1)·1 + 2 + 1 − 1 = 4 keeping windows open
    // across cuts.
    Constraints::new(2, 3, 1, 2).unwrap()
}

/// One cluster per tick from the generated member sets (dense stream).
fn stream(spec: &[Vec<u32>]) -> Vec<ClusterSnapshot> {
    spec.iter()
        .enumerate()
        .map(|(t, members)| {
            let mut ids: Vec<ObjectId> = members.iter().map(|&v| ObjectId(v)).collect();
            ids.sort_unstable();
            ids.dedup();
            ClusterSnapshot::from_groups(Timestamp(t as u32), [ids])
        })
        .collect()
}

fn keys(patterns: &[Pattern]) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut out: Vec<(Vec<u32>, Vec<u32>)> = patterns
        .iter()
        .map(|p| {
            (
                p.objects.iter().map(|o| o.0).collect(),
                p.times.times().iter().map(|t| t.0).collect(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Drives one engine kind through the cut-restore-compare harness.
fn check_engine<E, R>(make: impl Fn() -> E, restore: R, snaps: &[ClusterSnapshot], cut: usize)
where
    E: PatternEngine,
    R: Fn(&EngineCheckpoint) -> E,
{
    let mut original = make();
    let mut reference = make();
    let mut got = Vec::new();
    let mut want = Vec::new();
    for s in &snaps[..cut] {
        got.extend(original.push(s));
        want.extend(reference.push(s));
    }
    let ckpt = original.checkpoint().expect("engines support checkpoint");

    // Canonical form: serialize → parse → restore → checkpoint is
    // byte-identical.
    let json = serde_json::to_string(&ckpt).unwrap();
    let parsed: EngineCheckpoint = serde_json::from_str(&json).unwrap();
    prop_assert_eq!(&parsed, &ckpt);
    let mut restored = restore(&parsed);
    let json2 = serde_json::to_string(&restored.checkpoint().unwrap()).unwrap();
    prop_assert_eq!(json2, json, "re-serialization is not canonical");

    // Behaviour: restored engine + suffix == uninterrupted engine.
    for s in &snaps[cut..] {
        got.extend(restored.push(s));
        want.extend(reference.push(s));
    }
    got.extend(restored.finish());
    want.extend(reference.finish());
    prop_assert_eq!(keys(&got), keys(&want));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fba_checkpoint_restore_equivalence(
        spec in prop::collection::vec(prop::collection::vec(0u32..8, 0..5), 1..24),
        cut_frac in 0usize..100,
    ) {
        let snaps = stream(&spec);
        let cut = snaps.len() * cut_frac / 100;
        let config = EngineConfig::new(constraints());
        check_engine(
            || FbaEngine::new(config),
            |ckpt| FbaEngine::from_checkpoint(config, ckpt, |_| true).unwrap(),
            &snaps,
            cut,
        );
    }

    #[test]
    fn vba_checkpoint_restore_equivalence(
        spec in prop::collection::vec(prop::collection::vec(0u32..8, 0..5), 1..24),
        cut_frac in 0usize..100,
    ) {
        let snaps = stream(&spec);
        let cut = snaps.len() * cut_frac / 100;
        let config = EngineConfig::new(constraints());
        check_engine(
            || VbaEngine::new(config),
            |ckpt| VbaEngine::from_checkpoint(config, ckpt, |_| true).unwrap(),
            &snaps,
            cut,
        );
    }

    #[test]
    fn baseline_checkpoint_restore_equivalence(
        spec in prop::collection::vec(prop::collection::vec(0u32..8, 0..5), 1..24),
        cut_frac in 0usize..100,
    ) {
        let snaps = stream(&spec);
        let cut = snaps.len() * cut_frac / 100;
        let config = EngineConfig::new(constraints());
        check_engine(
            || BaselineEngine::new(config),
            |ckpt| BaselineEngine::from_checkpoint(config, ckpt, |_| true).unwrap(),
            &snaps,
            cut,
        );
    }

    /// Corrupting a VBA episode (span/bits disagreement, broken framing
    /// bits, non-binary characters) yields a typed error, never a panic or
    /// a silently wrong engine.
    #[test]
    fn corrupt_vba_episodes_are_rejected(
        spec in prop::collection::vec(prop::collection::vec(0u32..8, 1..5), 4..16),
        tamper in 0usize..3,
    ) {
        let config = EngineConfig::new(constraints());
        let mut engine = VbaEngine::new(config);
        for s in stream(&spec) {
            engine.push(&s);
        }
        let mut ckpt = engine.checkpoint().unwrap();
        let Some(owner) = ckpt.vba_owners.iter_mut().find(|o| !o.open.is_empty()) else {
            return; // nothing open to corrupt this round
        };
        let episode = &mut owner.open[0];
        match tamper {
            0 => episode.et += 1,                     // span no longer matches bits
            1 => episode.bits = format!("0{}", &episode.bits[1..]), // leading 1 lost
            _ => episode.bits = episode.bits.replace('1', "x"),     // non-binary
        }
        let err = VbaEngine::from_checkpoint(config, &ckpt, |_| true).err();
        prop_assert!(
            matches!(err, Some(CheckpointError::Invalid(_))),
            "corruption accepted: {err:?}"
        );
    }
}

#[test]
fn engines_reject_foreign_checkpoints() {
    let config = EngineConfig::new(constraints());
    let mut fba = FbaEngine::new(config);
    fba.push(&ClusterSnapshot::from_groups(
        Timestamp(0),
        [vec![ObjectId(1), ObjectId(2)]],
    ));
    let ckpt = fba.checkpoint().unwrap();
    assert!(matches!(
        VbaEngine::from_checkpoint(config, &ckpt, |_| true),
        Err(CheckpointError::EngineMismatch { .. })
    ));
    assert!(matches!(
        BaselineEngine::from_checkpoint(config, &ckpt, |_| true),
        Err(CheckpointError::EngineMismatch { .. })
    ));
}

/// Splitting a checkpoint across disjoint owner filters and merging the
/// re-checkpointed pieces reproduces the original — the resharding
/// invariant the distributed restore relies on.
#[test]
fn owner_filter_partition_roundtrip() {
    let config = EngineConfig::new(constraints());
    let mut engine = FbaEngine::new(config);
    for t in 0..6u32 {
        engine.push(&ClusterSnapshot::from_groups(
            Timestamp(t),
            [
                vec![ObjectId(1), ObjectId(2), ObjectId(3)],
                vec![ObjectId(7), ObjectId(8)],
            ],
        ));
    }
    let full = engine.checkpoint().unwrap();
    let pieces: Vec<EngineCheckpoint> = (0..3)
        .map(|i| {
            FbaEngine::from_checkpoint(config, &full, |o| o.0 % 3 == i)
                .unwrap()
                .checkpoint()
                .unwrap()
        })
        .collect();
    let merged = EngineCheckpoint::merge(pieces).unwrap();
    assert_eq!(merged, full);
}
