//! Bit strings — the compression layer of FBA and VBA (§6.2–6.3).
//!
//! A trajectory's cluster co-membership with the partition owner is one bit
//! per discretized time. The Baseline stores `O(2^n)` subsets; a bit string
//! stores `O(η)` bits per trajectory, and candidate combination is a word-
//! parallel `AND` (the paper's "Bit Operation").

use crate::runs::{runs_valid, runs_witness, Run, Semantics};

/// A packed bit string of fixed length.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// All-zero string of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitString {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut s = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i);
            }
        }
        s
    }

    /// Builds from a `1`/`0` ASCII string (test/diagnostic convenience;
    /// mirrors the paper's `110111` notation).
    pub fn from_str01(s: &str) -> Self {
        let bits: Vec<bool> = s
            .chars()
            .map(|c| match c {
                '1' => true,
                '0' => false,
                _ => panic!("bit strings contain only 0 and 1, got {c:?}"),
            })
            .collect();
        Self::from_bools(&bits)
    }

    /// Renders the `1`/`0` ASCII form (inverse of
    /// [`BitString::from_str01`]) — the checkpoint wire form, chosen over
    /// packed words for being self-describing and trivially auditable.
    pub fn to_str01(&self) -> String {
        (0..self.len)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the string has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Appends one bit (grows the string by one).
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if bit {
            self.set(self.len - 1);
        }
    }

    /// Number of 1-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Word-parallel `B[O] = B[O] & other` (the paper's bit operation).
    /// Both strings must have equal length.
    pub fn and_assign(&mut self, other: &BitString) {
        assert_eq!(self.len, other.len, "AND of unequal-length bit strings");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `a & b` as a new string.
    pub fn and(&self, other: &BitString) -> BitString {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Number of trailing 0-bits (from the logical end); `len` if all zero.
    pub fn trailing_zeros(&self) -> usize {
        for i in (0..self.len).rev() {
            if self.get(i) {
                return self.len - 1 - i;
            }
        }
        self.len
    }

    /// Truncates to the first `new_len` bits.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len);
        self.len = new_len;
        self.words.truncate(new_len.div_ceil(64));
        // Clear any bits beyond the new logical end in the last word.
        let rem = new_len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// The maximal runs of 1-bits, as positions `0..len`.
    pub fn runs(&self) -> Vec<Run> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < self.len {
            if self.get(i) {
                let start = i;
                while i < self.len && self.get(i) {
                    i += 1;
                }
                out.push(Run {
                    start: start as u32,
                    len: (i - start) as u32,
                });
            } else {
                i += 1;
            }
        }
        out
    }

    /// Validity against `(K, L, G)` under the given semantics.
    pub fn satisfies_klg(&self, k: usize, l: usize, g: u32, semantics: Semantics) -> bool {
        runs_valid(&self.runs(), k, l, g, semantics)
    }

    /// A witnessing sequence of bit positions, if valid.
    pub fn witness(&self, k: usize, l: usize, g: u32, semantics: Semantics) -> Option<Vec<u32>> {
        runs_witness(&self.runs(), k, l, g, semantics)
    }

    /// The positions of the 1-bits.
    pub fn ones(&self) -> Vec<u32> {
        (0..self.len)
            .filter(|&i| self.get(i))
            .map(|i| i as u32)
            .collect()
    }
}

impl std::fmt::Display for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_round_trip() {
        let s = BitString::from_str01("110111");
        assert_eq!(s.len(), 6);
        assert_eq!(s.count_ones(), 5);
        assert_eq!(s.to_string(), "110111");
        assert!(s.get(0) && s.get(1) && !s.get(2));
    }

    #[test]
    fn paper_fig8_bit_operations() {
        // B[{o5,o6}] = B[o5] & B[o6] = 110111;
        // B[{o5,o6,o7}] = ... = 110011.
        let o5 = BitString::from_str01("111111");
        let o6 = BitString::from_str01("110111");
        let o7 = BitString::from_str01("110011");
        assert_eq!(o5.and(&o6).to_string(), "110111");
        assert_eq!(o5.and(&o6).and(&o7).to_string(), "110011");
    }

    #[test]
    fn paper_fig8_candidate_filtering() {
        // K=4, L=2: o5 = 111111 and o6 = 110111 are valid; o8 = 100000 is
        // not. Note on o7 = 110011: Figure 8 of the paper marks it valid
        // under G = 2, but its times {0,1,4,5} have a neighboring difference
        // of 3, violating Definition 3 (`T[i+1] − T[i] ≤ G`). We implement
        // Definition 3 strictly (the η formula and Lemma 6 also use the
        // difference form), so 110011 needs G = 3. See DESIGN.md.
        let sem = Semantics::Subsequence;
        assert!(BitString::from_str01("111111").satisfies_klg(4, 2, 2, sem));
        assert!(BitString::from_str01("110111").satisfies_klg(4, 2, 2, sem));
        assert!(!BitString::from_str01("110011").satisfies_klg(4, 2, 2, sem));
        assert!(BitString::from_str01("110011").satisfies_klg(4, 2, 3, sem));
        assert!(!BitString::from_str01("100000").satisfies_klg(4, 2, 2, sem));
        // Same under the paper's greedy check.
        let gr = Semantics::PaperGreedy;
        assert!(BitString::from_str01("110011").satisfies_klg(4, 2, 3, gr));
        assert!(!BitString::from_str01("100000").satisfies_klg(4, 2, 2, gr));
    }

    #[test]
    fn push_and_grow_across_word_boundary() {
        let mut s = BitString::zeros(0);
        for i in 0..130 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 44);
        assert!(s.get(129) && !s.get(128));
    }

    #[test]
    fn trailing_zeros_and_truncate() {
        let mut s = BitString::from_str01("1101000");
        assert_eq!(s.trailing_zeros(), 3);
        s.truncate(4);
        assert_eq!(s.to_string(), "1101");
        assert_eq!(s.trailing_zeros(), 0);
        // Truncation must clear dropped bits so a later push sees zeros.
        s.truncate(3);
        s.push(false);
        assert_eq!(s.to_string(), "1100");
        assert_eq!(BitString::zeros(5).trailing_zeros(), 5);
    }

    #[test]
    fn runs_extraction() {
        let s = BitString::from_str01("110111001");
        assert_eq!(
            s.runs(),
            vec![
                Run { start: 0, len: 2 },
                Run { start: 3, len: 3 },
                Run { start: 8, len: 1 }
            ]
        );
        assert!(BitString::zeros(8).runs().is_empty());
    }

    #[test]
    fn ones_positions() {
        assert_eq!(BitString::from_str01("0101").ones(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn and_length_mismatch_panics() {
        let a = BitString::zeros(4);
        let b = BitString::zeros(5);
        let _ = a.and(&b);
    }

    #[test]
    fn large_and_is_wordwise() {
        let mut a = BitString::zeros(200);
        let mut b = BitString::zeros(200);
        for i in (0..200).step_by(2) {
            a.set(i);
        }
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        let c = a.and(&b);
        for i in 0..200 {
            assert_eq!(c.get(i), i % 6 == 0);
        }
    }
}
