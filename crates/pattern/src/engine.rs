//! The common pattern-engine interface and the shared η-window bookkeeping
//! used by BA and FBA.

use crate::partition::{id_partitions, Partition};
use crate::runs::Semantics;
use icpe_types::{
    ClusterSnapshot, Constraints, EngineCheckpoint, HistoryRowCheckpoint, ObjectId, Pattern,
    Timestamp, WindowOwnerCheckpoint,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Configuration shared by all three enumeration engines.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The `CP(M, K, L, G)` constraints.
    pub constraints: Constraints,
    /// Validity semantics (see [`Semantics`]).
    pub semantics: Semantics,
    /// Baseline guard: partitions larger than this are skipped (and counted)
    /// instead of enumerating `2^n` subsets — the paper's "B cannot run on
    /// large datasets" behaviour, made explicit.
    pub max_baseline_partition: usize,
}

impl EngineConfig {
    /// Default engine configuration for the given constraints.
    pub fn new(constraints: Constraints) -> Self {
        EngineConfig {
            constraints,
            semantics: Semantics::default(),
            max_baseline_partition: 22,
        }
    }

    /// Overrides the validity semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }
}

/// A streaming pattern-enumeration engine. Cluster snapshots must be pushed
/// in strictly increasing time order (the runtime's time aligner guarantees
/// a dense, ordered stream).
pub trait PatternEngine {
    /// Engine name ("BA", "FBA", "VBA").
    fn name(&self) -> &'static str;

    /// Ingests one cluster snapshot; returns patterns that became reportable.
    fn push(&mut self, snapshot: &ClusterSnapshot) -> Vec<Pattern> {
        let parts = id_partitions(snapshot, self.significance());
        self.push_partitions(snapshot.time, parts)
    }

    /// The engine's significance constraint `M` (used by the default
    /// [`PatternEngine::push`] to compute partitions).
    fn significance(&self) -> usize;

    /// Ingests the id-based partitions of one time tick directly — the entry
    /// point of the distributed deployment, where a keyed exchange delivers
    /// each subtask only the partitions of the owners it is responsible for
    /// (plus empty ticks to advance time).
    fn push_partitions(&mut self, time: Timestamp, partitions: Vec<Partition>) -> Vec<Pattern>;

    /// Flushes at end of stream; returns the remaining patterns.
    fn finish(&mut self) -> Vec<Pattern>;

    /// How many partitions this engine refused to enumerate (the Baseline's
    /// exponential-blow-up guard; always 0 for FBA/VBA). Non-zero means the
    /// result is incomplete — the paper's "B cannot run on large datasets".
    fn overflowed_partitions(&self) -> usize {
        0
    }

    /// Captures the engine's full streaming state in durable form, or
    /// `None` for engines that do not support checkpointing (the default).
    /// Restore is per-engine ([`FbaEngine::from_checkpoint`] etc.) because
    /// it needs the concrete type back.
    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        None
    }
}

/// Deduplicates patterns by object set (the same set may be reported from
/// several windows with different witnessing sequences).
pub fn unique_object_sets(patterns: &[Pattern]) -> Vec<Vec<ObjectId>> {
    let mut sets: Vec<Vec<ObjectId>> = patterns.iter().map(|p| p.objects.clone()).collect();
    sets.sort();
    sets.dedup();
    sets
}

/// One ready-to-process enumeration window: the owner's partitions over
/// `[start, start + window.len())`, where `window[0]` is the partition the
/// candidates are drawn from (always non-empty).
///
/// Rows are shared (`Arc<[ObjectId]>`): one partition's member list is
/// referenced by every overlapping window of its owner (up to η of them),
/// so releasing a window clones reference counts, never member vectors.
#[derive(Debug)]
pub(crate) struct WindowTask {
    pub owner: ObjectId,
    pub start: u32,
    /// Partition member lists per window offset (sorted ascending each).
    pub window: Vec<Arc<[ObjectId]>>,
}

/// Shared η-window state: buffers each owner's partitions, schedules a
/// window per (owner, start time where the owner has a partition), and
/// releases windows once η snapshots are available (or at end of stream).
#[derive(Debug)]
pub(crate) struct WindowState {
    eta: u32,
    histories: HashMap<ObjectId, BTreeMap<u32, Arc<[ObjectId]>>>,
    starts: HashMap<ObjectId, VecDeque<u32>>,
    /// deadline time → owners whose oldest pending start completes then.
    deadlines: BTreeMap<u32, Vec<ObjectId>>,
    last_time: Option<u32>,
    /// The shared empty row filled into window offsets without a partition.
    empty_row: Arc<[ObjectId]>,
}

impl WindowState {
    pub fn new(constraints: &Constraints) -> Self {
        WindowState {
            eta: constraints.eta() as u32,
            histories: HashMap::new(),
            starts: HashMap::new(),
            deadlines: BTreeMap::new(),
            last_time: None,
            empty_row: Arc::from(Vec::new()),
        }
    }

    /// Ingests pre-computed partitions for one time tick.
    pub fn push_partitions(
        &mut self,
        time: Timestamp,
        partitions: Vec<Partition>,
    ) -> Vec<WindowTask> {
        let t = time.0;
        if let Some(prev) = self.last_time {
            assert!(t > prev, "cluster snapshots must arrive in time order");
        }
        self.last_time = Some(t);

        for part in partitions {
            self.histories
                .entry(part.owner)
                .or_default()
                .insert(t, Arc::from(part.members));
            self.starts.entry(part.owner).or_default().push_back(t);
            self.deadlines
                .entry(t + self.eta - 1)
                .or_default()
                .push(part.owner);
        }

        let mut tasks = Vec::new();
        let due: Vec<u32> = self.deadlines.range(..=t).map(|(&d, _)| d).collect();
        for d in due {
            for owner in self.deadlines.remove(&d).unwrap() {
                tasks.push(self.release(owner, d + 1 - self.eta));
            }
        }
        tasks
    }

    /// Flushes the remaining (truncated) windows at end of stream.
    pub fn finish(&mut self) -> Vec<WindowTask> {
        let Some(last) = self.last_time else {
            return Vec::new();
        };
        let mut pending: Vec<(u32, ObjectId)> = Vec::new();
        for (&owner, starts) in &self.starts {
            for &s in starts {
                pending.push((s, owner));
            }
        }
        pending.sort_unstable();
        let mut tasks = Vec::new();
        for (s, owner) in pending {
            let end = last.min(s + self.eta - 1);
            let window = self.window_slice(owner, s, end);
            tasks.push(WindowTask {
                owner,
                start: s,
                window,
            });
        }
        self.histories.clear();
        self.starts.clear();
        self.deadlines.clear();
        tasks
    }

    /// Captures the open-window state in durable, canonical form (owners
    /// ascend by id; starts and history rows ascend by time).
    pub(crate) fn checkpoint(&self) -> (Option<u32>, Vec<WindowOwnerCheckpoint>) {
        let mut owners: Vec<WindowOwnerCheckpoint> = self
            .starts
            .iter()
            .map(|(&owner, starts)| WindowOwnerCheckpoint {
                owner,
                starts: starts.iter().copied().collect(),
                history: self
                    .histories
                    .get(&owner)
                    .map(|h| {
                        h.iter()
                            .map(|(&time, members)| HistoryRowCheckpoint {
                                time,
                                members: members.to_vec(),
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        owners.sort_by_key(|o| o.owner);
        (self.last_time, owners)
    }

    /// Rebuilds the window state from a checkpoint, keeping only owners for
    /// which `keep` returns true (the restore-time resharding hook: a
    /// restored deployment may run a different parallelism, and each
    /// subtask loads only the owners routed to it). Window release
    /// deadlines are derived from the pending starts, exactly as the
    /// original pushes scheduled them.
    pub(crate) fn restore(
        constraints: &Constraints,
        last_time: Option<u32>,
        owners: &[WindowOwnerCheckpoint],
        keep: impl Fn(ObjectId) -> bool,
    ) -> Self {
        let mut ws = WindowState::new(constraints);
        ws.last_time = last_time;
        for o in owners {
            if !keep(o.owner) {
                continue;
            }
            if !o.starts.is_empty() {
                ws.starts
                    .insert(o.owner, o.starts.iter().copied().collect());
                for &s in &o.starts {
                    ws.deadlines
                        .entry(s + ws.eta - 1)
                        .or_default()
                        .push(o.owner);
                }
            }
            if !o.history.is_empty() {
                ws.histories.insert(
                    o.owner,
                    o.history
                        .iter()
                        .map(|row| (row.time, Arc::from(row.members.as_slice())))
                        .collect(),
                );
            }
        }
        ws
    }

    fn release(&mut self, owner: ObjectId, start: u32) -> WindowTask {
        let popped = self
            .starts
            .get_mut(&owner)
            .and_then(|q| q.pop_front())
            .expect("deadline for owner without pending start");
        debug_assert_eq!(popped, start, "window starts must release in order");
        let window = self.window_slice(owner, start, start + self.eta - 1);
        // Prune history no future window of this owner can reference.
        let keep_from = self.starts.get(&owner).and_then(|q| q.front().copied());
        match keep_from {
            Some(f) => {
                let hist = self.histories.get_mut(&owner).unwrap();
                *hist = hist.split_off(&f);
            }
            None => {
                self.histories.remove(&owner);
                self.starts.remove(&owner);
            }
        }
        WindowTask {
            owner,
            start,
            window,
        }
    }

    fn window_slice(&self, owner: ObjectId, start: u32, end: u32) -> Vec<Arc<[ObjectId]>> {
        let hist = self.histories.get(&owner);
        (start..=end)
            .map(|j| {
                hist.and_then(|h| h.get(&j))
                    .cloned()
                    .unwrap_or_else(|| Arc::clone(&self.empty_row))
            })
            .collect()
    }
}

/// Shared window-task helpers for BA and FBA.
impl WindowTask {
    /// Bitmask rows: for each window offset `j`, a mask over the indices of
    /// `window[0]` marking which candidates are co-clustered with the owner
    /// at offset `j`. Requires `window[0].len() ≤ 64`.
    pub fn member_masks(&self) -> Vec<u64> {
        let members = &self.window[0];
        debug_assert!(members.len() <= 64);
        self.window
            .iter()
            .map(|row| {
                let mut mask = 0u64;
                let mut mi = 0usize;
                // Both lists sorted: merge scan.
                for &id in row.iter() {
                    while mi < members.len() && members[mi] < id {
                        mi += 1;
                    }
                    if mi < members.len() && members[mi] == id {
                        mask |= 1 << mi;
                        mi += 1;
                    }
                }
                mask
            })
            .collect()
    }
}

/// Validity semantics re-export for engine configs.
pub use crate::runs::Semantics as EngineSemantics;

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Timestamp;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(t: u32, groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(t),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    fn constraints() -> Constraints {
        // K = 2, L = 1, G = 2 → η = (2−1)×1 + 2 + 1 − 1 = 3.
        Constraints::new(2, 2, 1, 2).unwrap()
    }

    /// Test shim replicating the old snapshot-level push.
    fn push(ws: &mut WindowState, snapshot: ClusterSnapshot) -> Vec<WindowTask> {
        ws.push_partitions(snapshot.time, id_partitions(&snapshot, 2))
    }

    #[test]
    fn window_releases_after_eta_snapshots() {
        let c = constraints();
        assert_eq!(c.eta(), 3);
        let mut ws = WindowState::new(&c);
        assert!(push(&mut ws, cs(0, &[&[1, 2]])).is_empty());
        assert!(push(&mut ws, cs(1, &[&[1, 2]])).is_empty());
        let tasks = push(&mut ws, cs(2, &[&[1, 2]]));
        assert_eq!(tasks.len(), 1);
        let t = &tasks[0];
        assert_eq!(t.owner, oid(1));
        assert_eq!(t.start, 0);
        assert_eq!(t.window.len(), 3);
        assert_eq!(t.window[0].to_vec(), vec![oid(2)]);
    }

    #[test]
    fn missing_times_become_empty_rows() {
        let c = constraints();
        let mut ws = WindowState::new(&c);
        push(&mut ws, cs(0, &[&[1, 2]]));
        push(&mut ws, cs(1, &[]));
        let tasks = push(&mut ws, cs(2, &[]));
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].window[1].to_vec(), Vec::<ObjectId>::new());
        assert_eq!(tasks[0].window[2].to_vec(), Vec::<ObjectId>::new());
    }

    #[test]
    fn finish_truncates_windows() {
        let c = constraints();
        let mut ws = WindowState::new(&c);
        push(&mut ws, cs(5, &[&[1, 2]]));
        push(&mut ws, cs(6, &[&[1, 2]]));
        let tasks = ws.finish();
        assert_eq!(tasks.len(), 2); // starts at 5 and 6
        assert_eq!(tasks[0].start, 5);
        assert_eq!(tasks[0].window.len(), 2);
        assert_eq!(tasks[1].start, 6);
        assert_eq!(tasks[1].window.len(), 1);
    }

    #[test]
    fn member_masks_track_membership() {
        let task = WindowTask {
            owner: oid(1),
            start: 0,
            window: vec![
                Arc::from(vec![oid(2), oid(5), oid(9)]),
                Arc::from(vec![oid(5)]),
                Arc::from(vec![oid(2), oid(9)]),
            ],
        };
        let masks = task.member_masks();
        assert_eq!(masks, vec![0b111, 0b010, 0b101]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut ws = WindowState::new(&constraints());
        push(&mut ws, cs(3, &[&[1, 2]]));
        push(&mut ws, cs(3, &[&[1, 2]]));
    }

    #[test]
    fn multiple_owners_release_independently() {
        let c = constraints();
        let mut ws = WindowState::new(&c);
        push(&mut ws, cs(0, &[&[1, 2], &[5, 6]]));
        push(&mut ws, cs(1, &[&[5, 6]]));
        let tasks = push(&mut ws, cs(2, &[]));
        assert_eq!(tasks.len(), 2);
        let owners: Vec<ObjectId> = tasks.iter().map(|t| t.owner).collect();
        assert!(owners.contains(&oid(1)) && owners.contains(&oid(5)));
        // Owner 5's second start is still pending.
        let rest = ws.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].owner, oid(5));
        assert_eq!(rest[0].start, 1);
    }
}
