//! # icpe-pattern — co-movement pattern enumeration
//!
//! The second phase of ICPE (§6): given the stream of cluster snapshots,
//! find every `CP(M, K, L, G)` pattern. Three engines are provided, exactly
//! mirroring the paper:
//!
//! * [`BaselineEngine`] (**BA**, Algorithm 3) — SPARE adapted to streams via
//!   id-based partitioning; exponential subset enumeration per partition;
//! * [`FbaEngine`] (**FBA**, Algorithm 4) — fixed-length bit compression
//!   over the η-snapshot window plus candidate-based (apriori) enumeration;
//! * [`VbaEngine`] (**VBA**, Algorithm 5) — variable-length bit compression
//!   with maximal pattern time sequences; verifies each snapshot once,
//!   trading latency for throughput.
//!
//! [`reference::ExhaustiveMiner`] is the test oracle: an exhaustive offline
//! miner over the full cluster history.
//!
//! ## Validity semantics
//!
//! Definition 4 asks for the *existence* of a time sequence `T` satisfying
//! `(K, L, G)`. The paper's Lemmas 5–6 verify candidates greedily and
//! discard a candidate as soon as its greedily grown sequence breaks — which
//! is not always equivalent to existence (a doomed short segment in the
//! middle of the window can mask a valid sub-sequence that skips it). Both
//! behaviours are implemented behind [`Semantics`]:
//!
//! * [`Semantics::Subsequence`] (default) — existence semantics, faithful to
//!   Definition 4; also the semantics under which bit-AND validity is
//!   anti-monotone, making the paper's candidate/apriori pruning provably
//!   lossless;
//! * [`Semantics::PaperGreedy`] — the literal Algorithm-3 discard rules,
//!   applied from every possible start.
//!
//! All three engines and the oracle honor the chosen semantics, and property
//! tests assert their agreement under both.

pub mod baseline;
pub mod bitstring;
pub mod engine;
pub mod fba;
pub mod partition;
pub mod postprocess;
pub mod reference;
pub mod runs;
pub mod vba;

pub use baseline::BaselineEngine;
pub use bitstring::BitString;
pub use engine::{unique_object_sets, EngineConfig, PatternEngine};
pub use fba::FbaEngine;
pub use partition::id_partitions;
pub use postprocess::{maximal_patterns, merge_patterns, PatternSummary};
pub use runs::{Run, Semantics};
pub use vba::VbaEngine;
