//! The exhaustive offline oracle: mines every `CP(M, K, L, G)` pattern from
//! the full cluster history by brute force. Exponential — test workloads
//! keep clusters small — but independent of the windowing, bit compression
//! and candidate machinery of the streaming engines, which makes it the
//! ground truth they are validated against.

use crate::runs::{runs_from_times, runs_witness, Semantics};
use icpe_types::{ClusterSnapshot, Constraints, ObjectId, Pattern, TimeSequence};
use std::collections::{BTreeSet, HashMap};

/// Maximum cluster size the oracle will expand (2^16 subsets).
const MAX_CLUSTER: usize = 16;

/// Collects cluster snapshots and mines patterns exhaustively.
#[derive(Debug, Default)]
pub struct ExhaustiveMiner {
    history: Vec<ClusterSnapshot>,
}

impl ExhaustiveMiner {
    /// An empty miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cluster snapshot (any time order; sorted at mine time).
    pub fn push(&mut self, snapshot: ClusterSnapshot) {
        self.history.push(snapshot);
    }

    /// Mines all patterns under the given constraints and semantics,
    /// returning one pattern per qualifying object set (with a witnessing
    /// time sequence).
    pub fn mine(&self, constraints: &Constraints, semantics: Semantics) -> Vec<Pattern> {
        let mut history = self.history.clone();
        history.sort_by_key(|cs| cs.time);

        // Candidate object sets: every subset (size ≥ M) of every cluster.
        let mut candidates: BTreeSet<Vec<ObjectId>> = BTreeSet::new();
        for cs in &history {
            for cluster in &cs.clusters {
                let ids = cluster.members();
                if ids.len() < constraints.m() {
                    continue;
                }
                assert!(
                    ids.len() <= MAX_CLUSTER,
                    "oracle cluster too large: {} > {MAX_CLUSTER}",
                    ids.len()
                );
                for mask in 1u32..(1 << ids.len()) {
                    if (mask.count_ones() as usize) < constraints.m() {
                        continue;
                    }
                    let subset: Vec<ObjectId> = (0..ids.len())
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| ids[i])
                        .collect();
                    candidates.insert(subset);
                }
            }
        }

        // Times at which each candidate is co-clustered.
        let mut co_times: HashMap<&Vec<ObjectId>, Vec<u32>> = HashMap::new();
        for cand in &candidates {
            let mut times = Vec::new();
            for cs in &history {
                let together = cs
                    .clusters
                    .iter()
                    .any(|c| cand.iter().all(|&id| c.contains(id)));
                if together {
                    times.push(cs.time.0);
                }
            }
            co_times.insert(cand, times);
        }

        let mut out = Vec::new();
        for (cand, times) in co_times {
            let runs = runs_from_times(&times);
            if let Some(witness) = runs_witness(
                &runs,
                constraints.k(),
                constraints.l(),
                constraints.g(),
                semantics,
            ) {
                let seq = TimeSequence::from_raw(witness).expect("witness is increasing");
                out.push(Pattern::new(cand.clone(), seq));
            }
        }
        out.sort_by(|a, b| a.objects.cmp(&b.objects));
        out
    }

    /// The qualifying object sets only (sorted, deduplicated).
    pub fn mine_object_sets(
        &self,
        constraints: &Constraints,
        semantics: Semantics,
    ) -> Vec<Vec<ObjectId>> {
        self.mine(constraints, semantics)
            .into_iter()
            .map(|p| p.objects)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Timestamp;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(t: u32, groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(t),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn finds_the_fig2_cp_3_4_2_2_pattern() {
        let mut miner = ExhaustiveMiner::new();
        // {o4,o5,o6} together at times 3,4,6,7 (plus distractors).
        miner.push(cs(3, &[&[4, 5, 6], &[1, 2]]));
        miner.push(cs(4, &[&[4, 5, 6]]));
        miner.push(cs(5, &[&[4, 5]]));
        miner.push(cs(6, &[&[4, 5, 6]]));
        miner.push(cs(7, &[&[4, 5, 6]]));
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let sets = miner.mine_object_sets(&c, Semantics::Subsequence);
        assert_eq!(sets, vec![vec![oid(4), oid(5), oid(6)]]);
    }

    #[test]
    fn subsets_of_patterns_also_qualify() {
        let mut miner = ExhaustiveMiner::new();
        for t in 0..4 {
            miner.push(cs(t, &[&[1, 2, 3]]));
        }
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let sets = miner.mine_object_sets(&c, Semantics::Subsequence);
        assert_eq!(sets.len(), 4); // {1,2}, {1,3}, {2,3}, {1,2,3}
    }

    #[test]
    fn witness_times_satisfy_constraints() {
        let mut miner = ExhaustiveMiner::new();
        for t in [0, 1, 3, 4, 8, 9] {
            miner.push(cs(t, &[&[1, 2]]));
        }
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        for p in miner.mine(&c, Semantics::Subsequence) {
            assert!(p.satisfies(&c), "{p}");
        }
    }

    #[test]
    fn empty_history_mines_nothing() {
        let miner = ExhaustiveMiner::new();
        let c = Constraints::new(2, 2, 1, 1).unwrap();
        assert!(miner.mine(&c, Semantics::Subsequence).is_empty());
    }
}
