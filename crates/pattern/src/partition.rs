//! Id-based partitioning (§6.1) and Lemma 3.
//!
//! Each trajectory id is a partition key (a Flink subtask in the paper). At
//! time `t`, the partition `P_t(o)` of owner `o` holds the *other* members
//! of `o`'s cluster with ids **larger** than `o` — so every pattern is
//! discovered exactly once, in the subtask of its minimum id. Clusters
//! smaller than the significance threshold `M` are discarded up front
//! (Lemma 3).

use icpe_types::{ClusterSnapshot, ObjectId};

/// One owner's partition at one time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The partition owner (subtask key).
    pub owner: ObjectId,
    /// Cluster co-members with ids greater than `owner`, ascending.
    pub members: Vec<ObjectId>,
}

/// Computes all non-empty partitions of one cluster snapshot, applying the
/// Lemma-3 significance filter (`|C| ≥ m`).
pub fn id_partitions(snapshot: &ClusterSnapshot, m: usize) -> Vec<Partition> {
    let mut out = Vec::new();
    for cluster in &snapshot.clusters {
        if cluster.len() < m {
            continue; // Lemma 3
        }
        let ids = cluster.members(); // sorted ascending
        for (i, &owner) in ids.iter().enumerate() {
            let members = ids[i + 1..].to_vec();
            if members.is_empty() {
                continue; // the largest id owns nothing; no pattern starts here
            }
            out.push(Partition { owner, members });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Timestamp;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(1),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn paper_fig7_partitions_at_time_1() {
        // Clusters {o1,o2}, {o3,o4}, {o5,o6,o7} → P(o1)={o2}, P(o3)={o4},
        // P(o5)={o6,o7}, P(o6)={o7}; owners with empty partitions omitted.
        let parts = id_partitions(&cs(&[&[1, 2], &[3, 4], &[5, 6, 7]]), 2);
        let find = |o: u32| {
            parts
                .iter()
                .find(|p| p.owner == oid(o))
                .map(|p| p.members.clone())
        };
        assert_eq!(find(1), Some(vec![oid(2)]));
        assert_eq!(find(3), Some(vec![oid(4)]));
        assert_eq!(find(5), Some(vec![oid(6), oid(7)]));
        assert_eq!(find(6), Some(vec![oid(7)]));
        assert_eq!(find(2), None);
        assert_eq!(find(4), None);
        assert_eq!(find(7), None);
    }

    #[test]
    fn lemma3_discards_small_clusters() {
        // M = 3: clusters of size 2 are discarded entirely.
        let parts = id_partitions(&cs(&[&[1, 2], &[3, 4], &[5, 6, 7]]), 3);
        assert!(parts.iter().all(|p| p.owner >= oid(5)));
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn empty_snapshot_has_no_partitions() {
        assert!(id_partitions(&cs(&[]), 2).is_empty());
    }

    #[test]
    fn singleton_cluster_never_partitions() {
        assert!(id_partitions(&cs(&[&[9]]), 1).is_empty());
    }
}
