//! **VBA** — Variable-length Bit Compression based Algorithm (Algorithm 5).
//!
//! Instead of re-verifying η-windows per start time (BA/FBA re-examine each
//! snapshot up to η times), VBA maintains *one* variable-length bit string
//! per (owner, member) across all times (Definition 14). A string *closes*
//! once `G + 1` zeros follow its last 1 (Lemma 7 — no later time can be
//! G-connected to it); closed valid strings become candidates with *maximal
//! pattern time sequences*, and enumeration runs only at closure, against
//! candidates overlapping long enough to matter (Lemma 8). Each snapshot is
//! touched once — higher throughput, at the cost of reporting latency
//! (patterns surface only after their episode ends), the trade-off §6.3
//! describes.
//!
//! Two deliberate deviations from the paper's pseudo-code, both documented
//! in DESIGN.md:
//!
//! * Lemma 8 is applied as `min(et) − max(st) + 1 < K → prune` (overlap
//!   *length*); the paper's `min(et) − max(st) < K` would also prune
//!   overlaps of exactly K times, which can carry a valid pattern.
//! * Candidates closed in the same tick are inserted into the global list
//!   sequentially *before* processing the next one, so two members whose
//!   episodes end simultaneously can still combine (Algorithm 5 as written
//!   only unions `Cl` into `C` after the loop and would miss them).

use crate::bitstring::BitString;
use crate::engine::{EngineConfig, PatternEngine};
use crate::partition::Partition;
use icpe_types::{
    CheckpointError, EngineCheckpoint, EpisodeCheckpoint, ObjectId, Pattern, TimeSequence,
    Timestamp, VbaOwnerCheckpoint,
};
use std::collections::{BTreeMap, HashMap};

/// An open variable-length bit string for one (owner, member) episode.
#[derive(Debug, Clone)]
struct OpenString {
    /// Start time (Definition 14's `st`): time of the first 1.
    st: u32,
    /// Time of the most recent 1; the string logically ends here.
    last_one: u32,
    /// Bits over `[st, last_one]` (always starts and ends with 1).
    bits: BitString,
}

/// A closed candidate: a maximal pattern time sequence (Definition 15).
#[derive(Debug, Clone)]
struct Candidate {
    member: ObjectId,
    st: u32,
    et: u32,
    bits: BitString,
}

/// Per-owner VBA state: the open strings (`H` in Algorithm 5) and the
/// global candidate list (`C`).
#[derive(Debug, Default)]
struct OwnerState {
    open: HashMap<ObjectId, OpenString>,
    /// Scheduled closure checks: time → members possibly closing then.
    closures: BTreeMap<u32, Vec<ObjectId>>,
    candidates: Vec<Candidate>,
}

/// The VBA pattern-enumeration engine.
#[derive(Debug)]
pub struct VbaEngine {
    config: EngineConfig,
    owners: HashMap<ObjectId, OwnerState>,
    last_time: Option<u32>,
    /// Optional retention horizon: candidates whose episode ended more than
    /// this many intervals ago are dropped (bounds memory on unbounded
    /// streams; `None` retains everything, like the paper).
    retention: Option<u32>,
}

impl VbaEngine {
    /// Creates the engine.
    pub fn new(config: EngineConfig) -> Self {
        VbaEngine {
            config,
            owners: HashMap::new(),
            last_time: None,
            retention: None,
        }
    }

    /// Sets the candidate retention horizon.
    pub fn with_retention(mut self, intervals: u32) -> Self {
        self.retention = Some(intervals);
        self
    }

    /// Rebuilds a VBA engine from a checkpoint, loading only owners for
    /// which `keep` returns true. Closure checks are re-derived from the
    /// open episodes (deadline = `last_one + G + 1`), exactly as the
    /// original pushes scheduled them; semantically broken episodes (bit
    /// length disagreeing with the span, missing leading/trailing 1) are
    /// rejected with a typed error rather than corrupting enumeration.
    ///
    /// The retention horizon is a configuration knob, not engine state,
    /// and is not recorded in the checkpoint: callers that bound candidate
    /// memory must re-apply it —
    /// `VbaEngine::from_checkpoint(..)?.with_retention(n)`.
    pub fn from_checkpoint(
        config: EngineConfig,
        ckpt: &EngineCheckpoint,
        keep: impl Fn(ObjectId) -> bool,
    ) -> Result<Self, CheckpointError> {
        if ckpt.kind != "VBA" {
            return Err(CheckpointError::EngineMismatch {
                checkpoint: ckpt.kind.clone(),
                config: "VBA".into(),
            });
        }
        let g = config.constraints.g();
        let mut owners: HashMap<ObjectId, OwnerState> = HashMap::new();
        for o in &ckpt.vba_owners {
            if !keep(o.owner) {
                continue;
            }
            let mut state = OwnerState::default();
            for ep in &o.open {
                let bits = decode_episode_bits(o.owner, ep)?;
                state.open.insert(
                    ep.member,
                    OpenString {
                        st: ep.st,
                        last_one: ep.et,
                        bits,
                    },
                );
                state
                    .closures
                    .entry(ep.et + g + 1)
                    .or_default()
                    .push(ep.member);
            }
            for ep in &o.candidates {
                let bits = decode_episode_bits(o.owner, ep)?;
                state.candidates.push(Candidate {
                    member: ep.member,
                    st: ep.st,
                    et: ep.et,
                    bits,
                });
            }
            owners.insert(o.owner, state);
        }
        Ok(VbaEngine {
            config,
            owners,
            last_time: ckpt.last_time,
            retention: None,
        })
    }

    fn tick(&mut self, time: Timestamp, partitions: Vec<Partition>) -> Vec<Pattern> {
        let t = time.0;
        if let Some(prev) = self.last_time {
            assert!(t > prev, "cluster snapshots must arrive in time order");
        }
        self.last_time = Some(t);
        let g = self.config.constraints.g();
        let mut out = Vec::new();

        // 1. Extend or create strings from this tick's partitions.
        for part in partitions {
            let state = self.owners.entry(part.owner).or_default();
            for member in part.members {
                match state.open.get_mut(&member) {
                    Some(open) if t - open.last_one <= g => {
                        // Still G-connected: pad zeros, append the 1.
                        for _ in open.last_one + 1..t {
                            open.bits.push(false);
                        }
                        open.bits.push(true);
                        open.last_one = t;
                        state.closures.entry(t + g + 1).or_default().push(member);
                    }
                    Some(_) => {
                        // Gap exceeded G while unnoticed (lazy closure):
                        // close the old episode now, then start a new one.
                        let closed = state.open.remove(&member).unwrap();
                        Self::close_string(
                            member,
                            closed,
                            &self.config,
                            state,
                            &mut out,
                            part.owner,
                        );
                        Self::open_new(state, member, t, g);
                    }
                    None => {
                        Self::open_new(state, member, t, g);
                    }
                }
            }
        }

        // 2. Fire scheduled closure checks (Lemma 7): a string whose last 1
        // is G+1 ticks in the past is maximal.
        let owners: Vec<ObjectId> = self.owners.keys().copied().collect();
        for owner in owners {
            let state = self.owners.get_mut(&owner).unwrap();
            let due: Vec<u32> = state.closures.range(..=t).map(|(&d, _)| d).collect();
            for d in due {
                for member in state.closures.remove(&d).unwrap() {
                    let still_stale = state.open.get(&member).is_some_and(|o| o.last_one + g < t);
                    if still_stale {
                        let closed = state.open.remove(&member).unwrap();
                        Self::close_string(member, closed, &self.config, state, &mut out, owner);
                    }
                }
            }
            if let Some(r) = self.retention {
                state.candidates.retain(|c| c.et.saturating_add(r) >= t);
            }
        }
        out
    }

    fn open_new(state: &mut OwnerState, member: ObjectId, t: u32, g: u32) {
        let mut bits = BitString::zeros(0);
        bits.push(true);
        state.open.insert(
            member,
            OpenString {
                st: t,
                last_one: t,
                bits,
            },
        );
        state.closures.entry(t + g + 1).or_default().push(member);
    }

    /// Lemma 7 closure: the string's content is final. If its maximal time
    /// sequence satisfies `(K, L, G)`, it becomes a candidate and is
    /// enumerated against the overlapping candidates; otherwise it is
    /// dropped (Algorithm 5, tag = −1).
    fn close_string(
        member: ObjectId,
        open: OpenString,
        config: &EngineConfig,
        state: &mut OwnerState,
        out: &mut Vec<Pattern>,
        owner: ObjectId,
    ) {
        let c = &config.constraints;
        // The stored bits end at the last 1 (lazy zero-padding never adds
        // trailing zeros), so no trimming is needed.
        debug_assert!(open.bits.get(open.bits.len() - 1));
        if !open
            .bits
            .satisfies_klg(c.k(), c.l(), c.g(), config.semantics)
        {
            return;
        }
        let cand = Candidate {
            member,
            st: open.st,
            et: open.last_one,
            bits: open.bits,
        };
        out.extend(Self::enumerate_with(&cand, state, config, owner));
        state.candidates.push(cand);
    }

    /// Enumerates every valid pattern containing the newly closed candidate
    /// (plus the owner), apriori-style over the Lemma-8-filtered overlap
    /// list.
    fn enumerate_with(
        cand: &Candidate,
        state: &OwnerState,
        config: &EngineConfig,
        owner: ObjectId,
    ) -> Vec<Pattern> {
        let c = &config.constraints;
        let k = c.k();
        // Lemma 8 (length form): candidates must overlap cand on ≥ K times.
        let pool: Vec<&Candidate> = state
            .candidates
            .iter()
            .filter(|o| {
                o.member != cand.member && overlap_len(o.st, o.et, cand.st, cand.et) >= k as u32
            })
            .collect();

        let need = c.m() - 1; // owner is implicit
        let mut out = Vec::new();
        if need == 0 {
            return out;
        }

        // Base: {cand} alone (cardinality 1).
        let base_sets: Vec<Vec<usize>> = combinations(pool.len(), need - 1);
        let mut level: Vec<(Vec<usize>, u32, u32, BitString)> = Vec::new();
        for set in base_sets {
            if let Some(merged) = merge(cand, &set, &pool, k) {
                level.push((set, merged.0, merged.1, merged.2));
            }
        }

        while !level.is_empty() {
            let mut next = Vec::new();
            for (set, st, et, bits) in level {
                let Some(witness) = bits.witness(k, c.l(), c.g(), config.semantics) else {
                    continue;
                };
                let mut objects: Vec<ObjectId> = set.iter().map(|&i| pool[i].member).collect();
                objects.push(cand.member);
                objects.push(owner);
                let times = TimeSequence::from_raw(witness.into_iter().map(|j| st + j))
                    .expect("witness offsets are strictly increasing");
                out.push(Pattern::new(objects, times));

                let from = set.last().map_or(0, |&i| i + 1);
                for (ext, cand_ext) in pool.iter().enumerate().skip(from) {
                    let mut ext_set = set.clone();
                    ext_set.push(ext);
                    if let Some(merged) = merge_one(st, et, &bits, cand_ext, k) {
                        next.push((ext_set, merged.0, merged.1, merged.2));
                    }
                }
            }
            level = next;
        }
        out
    }
}

/// Validates and decodes one episode's checkpoint bits.
fn decode_episode_bits(
    owner: ObjectId,
    ep: &EpisodeCheckpoint,
) -> Result<BitString, CheckpointError> {
    let span = ep
        .et
        .checked_sub(ep.st)
        .map(|d| d as usize + 1)
        .ok_or_else(|| {
            CheckpointError::Invalid(format!(
                "episode ({owner},{}) ends at {} before it starts at {}",
                ep.member, ep.et, ep.st
            ))
        })?;
    if ep.bits.len() != span {
        return Err(CheckpointError::Invalid(format!(
            "episode ({owner},{}) spans {span} ticks but carries {} bits",
            ep.member,
            ep.bits.len()
        )));
    }
    if !ep.bits.starts_with('1') || !ep.bits.ends_with('1') {
        return Err(CheckpointError::Invalid(format!(
            "episode ({owner},{}) bits must start and end with 1, got `{}`",
            ep.member, ep.bits
        )));
    }
    if ep.bits.bytes().any(|b| b != b'0' && b != b'1') {
        return Err(CheckpointError::Invalid(format!(
            "episode ({owner},{}) bits contain non-binary characters",
            ep.member
        )));
    }
    Ok(BitString::from_str01(&ep.bits))
}

/// Overlap length of two closed intervals (0 when disjoint).
fn overlap_len(st1: u32, et1: u32, st2: u32, et2: u32) -> u32 {
    let st = st1.max(st2);
    let et = et1.min(et2);
    (et + 1).saturating_sub(st)
}

/// All size-`k` index combinations of `0..n`.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo = Vec::new();
    fn rec(n: usize, k: usize, from: usize, combo: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if combo.len() == k {
            out.push(combo.clone());
            return;
        }
        for i in from..n {
            if n - i < k - combo.len() {
                break;
            }
            combo.push(i);
            rec(n, k, i + 1, combo, out);
            combo.pop();
        }
    }
    rec(n, k, 0, &mut combo, &mut out);
    out
}

/// Intersects `cand` with the candidates at `set`, returning the combined
/// `(st, et, bits)` over the common overlap, or `None` if the overlap
/// shrinks below `k` (Lemma 8 applied per merge step).
fn merge(
    cand: &Candidate,
    set: &[usize],
    pool: &[&Candidate],
    k: usize,
) -> Option<(u32, u32, BitString)> {
    let mut st = cand.st;
    let mut et = cand.et;
    let mut bits = cand.bits.clone();
    for &i in set {
        let (nst, net, nbits) = merge_one(st, et, &bits, pool[i], k)?;
        st = nst;
        et = net;
        bits = nbits;
    }
    Some((st, et, bits))
}

/// One AND step over the overlap of `[st, et]` and `other`'s episode.
fn merge_one(
    st: u32,
    et: u32,
    bits: &BitString,
    other: &Candidate,
    k: usize,
) -> Option<(u32, u32, BitString)> {
    let nst = st.max(other.st);
    let net = et.min(other.et);
    if overlap_len(st, et, other.st, other.et) < k as u32 {
        return None;
    }
    let len = (net - nst + 1) as usize;
    let mut out = BitString::zeros(len);
    for j in 0..len {
        let t = nst + j as u32;
        if bits.get((t - st) as usize) && other.bits.get((t - other.st) as usize) {
            out.set(j);
        }
    }
    Some((nst, net, out))
}

impl PatternEngine for VbaEngine {
    fn name(&self) -> &'static str {
        "VBA"
    }

    fn significance(&self) -> usize {
        self.config.constraints.m()
    }

    fn push_partitions(&mut self, time: Timestamp, partitions: Vec<Partition>) -> Vec<Pattern> {
        self.tick(time, partitions)
    }

    fn finish(&mut self) -> Vec<Pattern> {
        let mut out = Vec::new();
        let owners: Vec<ObjectId> = self.owners.keys().copied().collect();
        for owner in owners {
            let state = self.owners.get_mut(&owner).unwrap();
            let members: Vec<ObjectId> = state.open.keys().copied().collect();
            for member in members {
                let open = state.open.remove(&member).unwrap();
                Self::close_string(member, open, &self.config, state, &mut out, owner);
            }
            state.closures.clear();
        }
        out
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        let mut vba_owners: Vec<VbaOwnerCheckpoint> = self
            .owners
            .iter()
            .map(|(&owner, state)| {
                let mut open: Vec<EpisodeCheckpoint> = state
                    .open
                    .iter()
                    .map(|(&member, s)| EpisodeCheckpoint {
                        member,
                        st: s.st,
                        et: s.last_one,
                        bits: s.bits.to_str01(),
                    })
                    .collect();
                open.sort_by_key(|e| e.member);
                // Candidate order is deterministic (single-threaded
                // insertion) and affects enumeration sequencing: preserve
                // it instead of sorting.
                let candidates: Vec<EpisodeCheckpoint> = state
                    .candidates
                    .iter()
                    .map(|c| EpisodeCheckpoint {
                        member: c.member,
                        st: c.st,
                        et: c.et,
                        bits: c.bits.to_str01(),
                    })
                    .collect();
                VbaOwnerCheckpoint {
                    owner,
                    open,
                    candidates,
                }
            })
            .collect();
        vba_owners.sort_by_key(|o| o.owner);
        Some(EngineCheckpoint {
            kind: "VBA".into(),
            last_time: self.last_time,
            skipped_partitions: 0,
            window_owners: Vec::new(),
            vba_owners,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unique_object_sets;
    use icpe_types::{ClusterSnapshot, Constraints, Timestamp};

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(t: u32, groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(t),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    fn run_stream(engine: &mut VbaEngine, stream: &[ClusterSnapshot]) -> Vec<Pattern> {
        let mut out = Vec::new();
        for s in stream {
            out.extend(engine.push(s));
        }
        out.extend(engine.finish());
        out
    }

    #[test]
    fn overlap_len_cases() {
        assert_eq!(overlap_len(0, 5, 3, 9), 3); // [3,5]
        assert_eq!(overlap_len(0, 5, 6, 9), 0);
        assert_eq!(overlap_len(2, 2, 2, 2), 1);
        assert_eq!(overlap_len(0, 9, 3, 4), 2);
    }

    #[test]
    fn detects_persistent_group() {
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c));
        let stream: Vec<ClusterSnapshot> = (0..8).map(|t| cs(t, &[&[1, 2, 3]])).collect();
        let patterns = run_stream(&mut engine, &stream);
        let sets = unique_object_sets(&patterns);
        assert!(sets.contains(&vec![oid(1), oid(2), oid(3)]), "{sets:?}");
        for p in &patterns {
            assert!(p.satisfies(&c));
        }
    }

    #[test]
    fn paper_fig9_maximal_sequences() {
        // Subtask of o4: B[o5] = ⟨2,8,1111111⟩, B[o6] = ⟨3,8,110111⟩,
        // B[o7] = ⟨3,8,110011⟩; nothing co-clusters after time 8, so all
        // three close as maximal candidates. As in the FBA test, o7's bit
        // string needs G = 3 under a strict Definition 3 (the paper's
        // figure uses G = 2; see DESIGN.md).
        let mut stream = Vec::new();
        for t in 2u32..=8 {
            let mut cluster = vec![4u32];
            // o5: with o4 at times 2..=8.
            cluster.push(5);
            // o6: bits 110111 over 3..=8 → times 3,4,6,7,8.
            if [3, 4, 6, 7, 8].contains(&t) {
                cluster.push(6);
            }
            // o7: bits 110011 over 3..=8 → times 3,4,7,8.
            if [3, 4, 7, 8].contains(&t) {
                cluster.push(7);
            }
            stream.push(cs(t, &[&cluster]));
        }
        // Quiet period to trigger Lemma-7 closures (G+1 = 4 empty ticks).
        for t in 9u32..=14 {
            stream.push(cs(t, &[]));
        }
        let c = Constraints::new(2, 4, 2, 3).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c));
        let mut mid_patterns = Vec::new();
        for s in &stream {
            mid_patterns.extend(engine.push(s));
        }
        // Closures fire during the quiet period, *before* finish().
        let sets = unique_object_sets(&mid_patterns);
        assert!(sets.contains(&vec![oid(4), oid(5)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(4), oid(6)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(4), oid(7)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(4), oid(5), oid(6)]), "{sets:?}");
        // {o4,o5,o6,o7}: B[O] = 110011 over 3..=8 → valid (K=4,L=2,G=2).
        assert!(
            sets.contains(&vec![oid(4), oid(5), oid(6), oid(7)]),
            "{sets:?}"
        );
    }

    #[test]
    fn simultaneous_closures_still_combine() {
        // Both members end their episodes at the same tick; the paper's
        // literal Cl handling would miss the pair. We must not.
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c));
        let mut stream: Vec<ClusterSnapshot> = (0..6).map(|t| cs(t, &[&[1, 2, 3]])).collect();
        for t in 6..12 {
            stream.push(cs(t, &[]));
        }
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        assert!(sets.contains(&vec![oid(1), oid(2), oid(3)]), "{sets:?}");
    }

    #[test]
    fn episodes_split_by_long_gaps() {
        // Together 0..=3, apart 4..=9 (gap > G), together again 10..=13:
        // two separate episodes, each valid on its own; no pattern spans.
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c));
        let mut stream = Vec::new();
        for t in 0..14u32 {
            let together = t <= 3 || t >= 10;
            stream.push(if together {
                cs(t, &[&[1, 2]])
            } else {
                cs(t, &[])
            });
        }
        let patterns = run_stream(&mut engine, &stream);
        assert!(patterns.len() >= 2);
        for p in &patterns {
            assert!(p.satisfies(&c));
            let all_early = p.times.times().iter().all(|t| t.0 <= 3);
            let all_late = p.times.times().iter().all(|t| t.0 >= 10);
            assert!(all_early || all_late, "pattern spans the gap: {p}");
        }
    }

    #[test]
    fn retention_bounds_candidate_list() {
        let c = Constraints::new(2, 2, 1, 1).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c)).with_retention(5);
        for t in 0..100u32 {
            // A fresh pair every 10 ticks, each lasting 2 ticks.
            let a = (t / 10) * 2 + 100;
            let together = t % 10 < 2;
            let snap = if together {
                cs(t, &[&[1, a]])
            } else {
                cs(t, &[])
            };
            engine.push(&snap);
        }
        let state = engine.owners.get(&oid(1)).unwrap();
        assert!(
            state.candidates.len() <= 3,
            "retention failed: {} candidates",
            state.candidates.len()
        );
    }

    #[test]
    fn no_duplicate_simultaneous_pairing() {
        // Regression guard: when two strings close in one tick, the pair
        // must be reported but not twice.
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = VbaEngine::new(EngineConfig::new(c));
        let mut stream: Vec<ClusterSnapshot> = (0..5).map(|t| cs(t, &[&[1, 2, 3]])).collect();
        for t in 5..10 {
            stream.push(cs(t, &[]));
        }
        let patterns = run_stream(&mut engine, &stream);
        let pair_count = patterns
            .iter()
            .filter(|p| p.objects == vec![oid(1), oid(2)])
            .count();
        assert_eq!(pair_count, 1, "{patterns:?}");
    }
}
