//! **FBA** — Fixed-length Bit Compression based Algorithm (Algorithm 4).
//!
//! Per window: build an η-bit string per partition member (Definition 13),
//! keep only members whose own string already satisfies `(K, L, G)` (the
//! candidate set `C`), then enumerate patterns apriori-style starting at
//! cardinality `M − 1`, combining candidates with word-parallel `AND`s.
//! Storage drops from `O(2^n)` to `O(η·n)`; enumeration from `O(2^n)` to
//! `O(|R|·|C| + C(|C|, M−1))`.

use crate::bitstring::BitString;
use crate::engine::{EngineConfig, PatternEngine, WindowState, WindowTask};
use crate::runs::Semantics;
use icpe_types::{CheckpointError, Constraints, EngineCheckpoint, ObjectId, Pattern, TimeSequence};

/// The FBA pattern-enumeration engine.
#[derive(Debug)]
pub struct FbaEngine {
    config: EngineConfig,
    windows: WindowState,
}

impl FbaEngine {
    /// Creates the engine.
    pub fn new(config: EngineConfig) -> Self {
        FbaEngine {
            windows: WindowState::new(&config.constraints),
            config,
        }
    }

    fn process(&mut self, task: WindowTask) -> Vec<Pattern> {
        let c = &self.config.constraints;
        let members = task.window[0].clone();
        if members.len() < c.m() - 1 {
            return Vec::new();
        }
        let masks = task.member_masks();
        let window_len = task.window.len();

        // Definition 13: B[oi][j] = 1 iff owner and oi share a cluster at
        // offset j. (Transpose of the per-time masks.)
        let mut strings: Vec<BitString> = Vec::with_capacity(members.len());
        for i in 0..members.len() {
            let mut b = BitString::zeros(window_len);
            for (j, &mask) in masks.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    b.set(j);
                }
            }
            strings.push(b);
        }

        // Candidate filtering: B[oi] must itself satisfy (K, L, G).
        let candidates: Vec<usize> = (0..members.len())
            .filter(|&i| strings[i].satisfies_klg(c.k(), c.l(), c.g(), self.validity_semantics()))
            .collect();
        if candidates.len() < c.m() - 1 {
            return Vec::new();
        }

        enumerate_candidates(
            &candidates,
            &strings,
            &members,
            task.owner,
            task.start,
            c,
            self.validity_semantics(),
        )
    }

    /// FBA filters and combines bit strings with the configured semantics.
    /// (Under [`Semantics::PaperGreedy`] the candidate filter is the paper's
    /// literal rule and is knowingly lossy; see the crate docs.)
    fn validity_semantics(&self) -> Semantics {
        self.config.semantics
    }

    /// Rebuilds an FBA engine from a checkpoint, loading only owners for
    /// which `keep` returns true (restore-time resharding).
    pub fn from_checkpoint(
        config: EngineConfig,
        ckpt: &EngineCheckpoint,
        keep: impl Fn(ObjectId) -> bool,
    ) -> Result<Self, CheckpointError> {
        if ckpt.kind != "FBA" {
            return Err(CheckpointError::EngineMismatch {
                checkpoint: ckpt.kind.clone(),
                config: "FBA".into(),
            });
        }
        Ok(FbaEngine {
            windows: WindowState::restore(
                &config.constraints,
                ckpt.last_time,
                &ckpt.window_owners,
                keep,
            ),
            config,
        })
    }
}

/// Candidate-based enumeration shared conceptually with VBA: grow object
/// sets from cardinality `M − 1`, extending only with larger candidate
/// indices (each set is generated once), pruning sets whose combined bit
/// string is invalid. Under subsequence semantics validity is anti-monotone
/// in the number of objects, so pruning is lossless.
#[allow(clippy::too_many_arguments)]
fn enumerate_candidates(
    candidates: &[usize],
    strings: &[BitString],
    members: &[ObjectId],
    owner: ObjectId,
    start: u32,
    c: &Constraints,
    semantics: Semantics,
) -> Vec<Pattern> {
    let need = c.m() - 1;
    let mut out = Vec::new();

    // Level M−1: canonical combinations of candidate indices.
    let mut level: Vec<(Vec<usize>, BitString)> = Vec::new();
    let mut combo: Vec<usize> = Vec::new();
    build_combinations(candidates, need, 0, &mut combo, &mut |chosen| {
        let mut bits = strings[chosen[0]].clone();
        for &i in &chosen[1..] {
            bits.and_assign(&strings[i]);
        }
        level.push((chosen.to_vec(), bits));
    });

    while !level.is_empty() {
        let mut next: Vec<(Vec<usize>, BitString)> = Vec::new();
        for (set, bits) in level {
            let Some(witness) = bits.witness(c.k(), c.l(), c.g(), semantics) else {
                continue;
            };
            let mut objects: Vec<ObjectId> = set.iter().map(|&i| members[i]).collect();
            objects.push(owner);
            let times = TimeSequence::from_raw(witness.into_iter().map(|j| start + j))
                .expect("witness offsets are strictly increasing");
            out.push(Pattern::new(objects, times));

            // Extend with every candidate beyond the set's largest index.
            let max_idx = *set.last().unwrap();
            for &cand in candidates.iter().filter(|&&i| i > max_idx) {
                let mut ext_bits = bits.clone();
                ext_bits.and_assign(&strings[cand]);
                let mut ext_set = set.clone();
                ext_set.push(cand);
                next.push((ext_set, ext_bits));
            }
        }
        level = next;
    }
    out
}

/// Calls `f` for every size-`k` combination of `pool` (ascending order).
fn build_combinations(
    pool: &[usize],
    k: usize,
    from: usize,
    combo: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if combo.len() == k {
        f(combo);
        return;
    }
    let remaining = k - combo.len();
    for i in from..pool.len() {
        if pool.len() - i < remaining {
            break;
        }
        combo.push(pool[i]);
        build_combinations(pool, k, i + 1, combo, f);
        combo.pop();
    }
}

impl PatternEngine for FbaEngine {
    fn name(&self) -> &'static str {
        "FBA"
    }

    fn significance(&self) -> usize {
        self.config.constraints.m()
    }

    fn push_partitions(
        &mut self,
        time: icpe_types::Timestamp,
        partitions: Vec<crate::partition::Partition>,
    ) -> Vec<Pattern> {
        let tasks = self.windows.push_partitions(time, partitions);
        tasks.into_iter().flat_map(|t| self.process(t)).collect()
    }

    fn finish(&mut self) -> Vec<Pattern> {
        let tasks = self.windows.finish();
        tasks.into_iter().flat_map(|t| self.process(t)).collect()
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        let (last_time, window_owners) = self.windows.checkpoint();
        Some(EngineCheckpoint {
            kind: "FBA".into(),
            last_time,
            skipped_partitions: 0,
            window_owners,
            vba_owners: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unique_object_sets;
    use icpe_types::{ClusterSnapshot, Timestamp};

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(t: u32, groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(t),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    fn run_stream(engine: &mut FbaEngine, stream: &[ClusterSnapshot]) -> Vec<Pattern> {
        let mut out = Vec::new();
        for s in stream {
            out.extend(engine.push(s));
        }
        out.extend(engine.finish());
        out
    }

    #[test]
    fn combinations_generator_is_exhaustive_and_canonical() {
        let pool = [2usize, 5, 7, 9];
        let mut seen = Vec::new();
        build_combinations(&pool, 2, 0, &mut Vec::new(), &mut |c| {
            seen.push(c.to_vec());
        });
        assert_eq!(
            seen,
            vec![
                vec![2, 5],
                vec![2, 7],
                vec![2, 9],
                vec![5, 7],
                vec![5, 9],
                vec![7, 9]
            ]
        );
        // k = 0 yields exactly the empty combination (M = 2 base case).
        let mut count = 0;
        build_combinations(&pool, 0, 0, &mut Vec::new(), &mut |_| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn detects_persistent_group() {
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let mut engine = FbaEngine::new(EngineConfig::new(c));
        let stream: Vec<ClusterSnapshot> = (0..8).map(|t| cs(t, &[&[1, 2, 3]])).collect();
        let patterns = run_stream(&mut engine, &stream);
        let sets = unique_object_sets(&patterns);
        assert!(sets.contains(&vec![oid(1), oid(2), oid(3)]));
        for p in &patterns {
            assert!(p.satisfies(&c));
        }
    }

    #[test]
    fn paper_fig8_enumeration() {
        // Subtask of o4 at time 3, P3(o4) = {o5,o6,o7,o8}; bits per Fig. 8:
        // B[o5]=111111, B[o6]=110111, B[o7]=110011, B[o8]=100000 over times
        // 3..=8. The paper runs this with G = 2, but o7's times have a
        // neighboring difference of 3, so under a strict Definition 3 the
        // figure's candidate set requires G = 3 (see DESIGN.md); the
        // structure of the example is otherwise unchanged: o5–o7 are
        // candidates, o8 is filtered out, and every combination with o4 is
        // a pattern.
        let bits = |s: &str| -> Vec<bool> { s.chars().map(|c| c == '1').collect() };
        let b5 = bits("111111");
        let b6 = bits("110111");
        let b7 = bits("110011");
        let b8 = bits("100000");
        let mut stream = Vec::new();
        for (j, t) in (3u32..=8).enumerate() {
            let mut cluster: Vec<u32> = vec![4];
            if b5[j] {
                cluster.push(5);
            }
            if b6[j] {
                cluster.push(6);
            }
            if b7[j] {
                cluster.push(7);
            }
            if b8[j] {
                cluster.push(8);
            }
            stream.push(cs(t, &[&cluster]));
        }
        let c = Constraints::new(3, 4, 2, 3).unwrap();
        let mut engine = FbaEngine::new(EngineConfig::new(c));
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        // Patterns of size ≥ 3 containing o4:
        assert!(sets.contains(&vec![oid(4), oid(5), oid(6)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(4), oid(5), oid(7)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(4), oid(6), oid(7)]), "{sets:?}");
        assert!(
            sets.contains(&vec![oid(4), oid(5), oid(6), oid(7)]),
            "{sets:?}"
        );
        // o8's string 100000 fails (K,L,G); no pattern contains o8.
        assert!(sets.iter().all(|s| !s.contains(&oid(8))));
    }

    #[test]
    fn m_equals_two_enumerates_singletons() {
        let c = Constraints::new(2, 3, 1, 2).unwrap();
        let mut engine = FbaEngine::new(EngineConfig::new(c));
        let stream: Vec<ClusterSnapshot> = (0..6).map(|t| cs(t, &[&[7, 9]])).collect();
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        assert!(sets.contains(&vec![oid(7), oid(9)]));
    }

    #[test]
    fn no_false_patterns_on_disjoint_groups() {
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = FbaEngine::new(EngineConfig::new(c));
        // {1,2} and {3,4} never share a cluster.
        let stream: Vec<ClusterSnapshot> = (0..8).map(|t| cs(t, &[&[1, 2], &[3, 4]])).collect();
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        for s in &sets {
            assert!(
                s == &vec![oid(1), oid(2)] || s == &vec![oid(3), oid(4)],
                "unexpected pattern {s:?}"
            );
        }
        assert_eq!(sets.len(), 2);
    }
}
