//! Temporal validity over runs of co-clustered times.
//!
//! Both bit strings (FBA/VBA) and raw time lists (BA, oracle) reduce to the
//! same structure: maximal *runs* of consecutive times at which a candidate
//! group was co-clustered. Validity of a candidate against `(K, L, G)` is
//! decided here, under either of two semantics (see [`Semantics`]), and a
//! witnessing time sequence can be extracted for reporting.

/// A maximal run of consecutive co-clustered times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First time of the run.
    pub start: u32,
    /// Number of consecutive times (≥ 1).
    pub len: u32,
}

impl Run {
    /// The last time of the run.
    #[inline]
    pub fn end(&self) -> u32 {
        self.start + self.len - 1
    }
}

/// Builds maximal runs from a strictly increasing time list.
pub fn runs_from_times(times: &[u32]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for &t in times {
        match out.last_mut() {
            Some(run) if t == run.end() + 1 => run.len += 1,
            Some(run) => {
                debug_assert!(t > run.end(), "times must be strictly increasing");
                out.push(Run { start: t, len: 1 });
            }
            None => out.push(Run { start: t, len: 1 }),
        }
    }
    out
}

/// How candidate validity against `(K, L, G)` is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Semantics {
    /// Existence semantics (Definition 4): valid iff *some* sub-sequence of
    /// the co-clustered times satisfies the constraints. Complete, and makes
    /// validity anti-monotone under intersection (candidate pruning is
    /// lossless).
    #[default]
    Subsequence,
    /// The paper's literal Lemma-5/6 greedy verification, attempted from
    /// every possible start time (which is what the per-snapshot windows of
    /// Algorithms 3–4 amount to). Slightly stricter than existence: a doomed
    /// short segment between two good ones kills the candidate.
    PaperGreedy,
}

/// Decides validity of the run list against `(k, l, g)` under `semantics`.
pub fn runs_valid(runs: &[Run], k: usize, l: usize, g: u32, semantics: Semantics) -> bool {
    match semantics {
        Semantics::Subsequence => subsequence_valid(runs, k, l, g),
        Semantics::PaperGreedy => (0..runs.len()).any(|i| greedy_valid_from(runs, i, k, l, g)),
    }
}

/// Extracts a witnessing time sequence if the runs are valid.
pub fn runs_witness(
    runs: &[Run],
    k: usize,
    l: usize,
    g: u32,
    semantics: Semantics,
) -> Option<Vec<u32>> {
    match semantics {
        Semantics::Subsequence => subsequence_witness(runs, k, l, g),
        Semantics::PaperGreedy => {
            (0..runs.len()).find_map(|i| greedy_witness_from(runs, i, k, l, g))
        }
    }
}

/// Existence semantics: drop runs shorter than `l` (no valid sequence can
/// use any of their times), then chain the surviving runs while inter-run
/// gaps stay ≤ `g`; valid iff some chain accumulates ≥ `k` times.
///
/// Optimality argument: every segment of a valid `T` lies inside a run of
/// length ≥ `l`; taking *whole* runs maximizes counts and minimizes the gaps
/// between consecutive elements, and including an extra (long-enough) run in
/// a chain never breaks it. Hence checking maximal chains of full surviving
/// runs is exact.
fn subsequence_valid(runs: &[Run], k: usize, l: usize, g: u32) -> bool {
    max_chain(runs, l, g).is_some_and(|(_, _, total)| total >= k)
}

fn subsequence_witness(runs: &[Run], k: usize, l: usize, g: u32) -> Option<Vec<u32>> {
    let (chain_start, chain_end, total) = max_chain(runs, l, g)?;
    if total < k {
        return None;
    }
    let mut times = Vec::with_capacity(total);
    for run in &runs[chain_start..=chain_end] {
        if (run.len as usize) < l {
            continue;
        }
        times.extend(run.start..=run.end());
    }
    Some(times)
}

/// Finds the chain of surviving runs with the largest total, returning
/// `(first_run_idx, last_run_idx, total)` over the *original* run slice.
fn max_chain(runs: &[Run], l: usize, g: u32) -> Option<(usize, usize, usize)> {
    let mut best: Option<(usize, usize, usize)> = None;
    // Current chain: (first surviving run index, end of last run, total).
    let mut cur: Option<(usize, u32, usize)> = None;
    for (i, run) in runs.iter().enumerate() {
        if (run.len as usize) < l {
            continue; // dropped run; does not break the chain by itself
        }
        cur = match cur {
            Some((s, prev_end, total)) if run.start - prev_end <= g => {
                Some((s, run.end(), total + run.len as usize))
            }
            _ => Some((i, run.end(), run.len as usize)),
        };
        let (s, _, total) = cur.unwrap();
        if best.is_none_or(|(_, _, t)| total > t) {
            best = Some((s, i, total));
        }
    }
    best
}

/// The paper's greedy verification (Algorithm 3 lines 4–12) started at run
/// `start_idx`: walk runs left to right, discarding on a short last segment
/// at a jump (Lemma 5) or a gap exceeding `g` (Lemma 6); succeed as soon as
/// the accumulated count reaches `k` with a full final segment.
fn greedy_valid_from(runs: &[Run], start_idx: usize, k: usize, l: usize, g: u32) -> bool {
    greedy_witness_from(runs, start_idx, k, l, g).is_some()
}

fn greedy_witness_from(
    runs: &[Run],
    start_idx: usize,
    k: usize,
    l: usize,
    g: u32,
) -> Option<Vec<u32>> {
    let mut total = 0usize;
    let mut prev: Option<Run> = None;
    for run in &runs[start_idx..] {
        if let Some(p) = prev {
            // Maximal runs are separated by ≥ 1 missing time, so the jump is
            // never adjacent: Lemma 5 discards iff the previous segment is
            // short, Lemma 6 iff the gap exceeds G.
            if (p.len as usize) < l || run.start - p.end() > g {
                return None;
            }
        }
        // Valid mid-run once the current segment reaches max(l, k − total).
        let need = l.max(k.saturating_sub(total)) as u32;
        if run.len >= need {
            let mut times = Vec::new();
            for r in &runs[start_idx..] {
                if r.start == run.start {
                    times.extend(r.start..r.start + need);
                    return Some(times);
                }
                times.extend(r.start..=r.end());
            }
            unreachable!("current run is always reached");
        }
        total += run.len as usize;
        prev = Some(*run);
    }
    None
}

/// The literal Algorithm-3 verification for one window: greedy from the
/// window's own start (the first run), not from every start. Each later
/// start has its own window in BA/FBA, which is where the "any start"
/// behaviour of [`Semantics::PaperGreedy`] comes from.
pub fn runs_witness_anchored(runs: &[Run], k: usize, l: usize, g: u32) -> Option<Vec<u32>> {
    if runs.is_empty() {
        return None;
    }
    greedy_witness_from(runs, 0, k, l, g)
}

/// Test-only exhaustive oracle: tries every subset of the times (must be
/// small). Used by property tests to pin down [`Semantics::Subsequence`].
pub fn exhaustive_subsequence_valid(times: &[u32], k: usize, l: usize, g: u32) -> bool {
    assert!(times.len() <= 20, "exhaustive oracle limited to 20 times");
    let n = times.len();
    'mask: for mask in 1u32..(1 << n) {
        let chosen: Vec<u32> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| times[i])
            .collect();
        if chosen.len() < k {
            continue;
        }
        // G-connected?
        if chosen.windows(2).any(|w| w[1] - w[0] > g) {
            continue;
        }
        // L-consecutive?
        for run in runs_from_times(&chosen) {
            if (run.len as usize) < l {
                continue 'mask;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(times: &[u32]) -> Vec<Run> {
        runs_from_times(times)
    }

    #[test]
    fn runs_from_times_builds_maximal_runs() {
        assert_eq!(
            runs(&[1, 2, 4, 5, 6, 9]),
            vec![
                Run { start: 1, len: 2 },
                Run { start: 4, len: 3 },
                Run { start: 9, len: 1 }
            ]
        );
        assert!(runs(&[]).is_empty());
        assert_eq!(runs(&[7]), vec![Run { start: 7, len: 1 }]);
    }

    #[test]
    fn paper_example_valid_under_both() {
        // T = ⟨3,4,6,7⟩ with (K,L,G) = (4,2,2).
        let r = runs(&[3, 4, 6, 7]);
        for s in [Semantics::Subsequence, Semantics::PaperGreedy] {
            assert!(runs_valid(&r, 4, 2, 2, s), "{s:?}");
        }
    }

    #[test]
    fn short_run_blocks_greedy_but_not_subsequence() {
        // The divergence case: {1,2} · {4} · {6,7} with (K,L,G) = (4,2,4).
        // A valid sub-sequence {1,2,6,7} exists (gap 4 ≤ G) but every greedy
        // start dies on the doomed singleton run.
        let r = runs(&[1, 2, 4, 6, 7]);
        assert!(runs_valid(&r, 4, 2, 4, Semantics::Subsequence));
        assert!(!runs_valid(&r, 4, 2, 4, Semantics::PaperGreedy));
        // The exhaustive oracle agrees with subsequence semantics.
        assert!(exhaustive_subsequence_valid(&[1, 2, 4, 6, 7], 4, 2, 4));
    }

    #[test]
    fn greedy_succeeds_from_later_start() {
        // {1} · {3,4,5,6}: greedy from the first run dies (short segment),
        // greedy from the second succeeds. (K,L,G) = (4,2,2).
        let r = runs(&[1, 3, 4, 5, 6]);
        assert!(runs_valid(&r, 4, 2, 2, Semantics::PaperGreedy));
        assert!(runs_valid(&r, 4, 2, 2, Semantics::Subsequence));
    }

    #[test]
    fn gap_beyond_g_invalidates() {
        let r = runs(&[1, 2, 3, 10, 11, 12]);
        for s in [Semantics::Subsequence, Semantics::PaperGreedy] {
            assert!(!runs_valid(&r, 6, 3, 2, s));
            // Each side alone has only 3 times < K = 6.
        }
        // But K = 3 is satisfiable by either side.
        assert!(runs_valid(&r, 3, 3, 2, Semantics::Subsequence));
    }

    #[test]
    fn witness_is_valid_and_consistent() {
        let r = runs(&[1, 2, 4, 5, 6, 9, 10]);
        for s in [Semantics::Subsequence, Semantics::PaperGreedy] {
            if runs_valid(&r, 4, 2, 2, s) {
                let w = runs_witness(&r, 4, 2, 2, s).unwrap();
                assert!(w.len() >= 4);
                assert!(w.windows(2).all(|x| x[1] - x[0] <= 2));
                for run in runs_from_times(&w) {
                    assert!(run.len >= 2);
                }
            }
        }
    }

    #[test]
    fn greedy_witness_stops_at_first_valid_point() {
        // Runs {1,2,3,4,5}: K=3, L=2 → witness should be the 3-prefix.
        let r = runs(&[1, 2, 3, 4, 5]);
        let w = runs_witness(&r, 3, 2, 1, Semantics::PaperGreedy).unwrap();
        assert_eq!(w, vec![1, 2, 3]);
    }

    #[test]
    fn empty_runs_are_invalid() {
        for s in [Semantics::Subsequence, Semantics::PaperGreedy] {
            assert!(!runs_valid(&[], 1, 1, 1, s));
            assert!(runs_witness(&[], 1, 1, 1, s).is_none());
        }
    }

    #[test]
    fn single_long_run_valid() {
        let r = runs(&[5, 6, 7, 8]);
        for s in [Semantics::Subsequence, Semantics::PaperGreedy] {
            assert!(runs_valid(&r, 4, 4, 1, s));
            assert!(!runs_valid(&r, 5, 4, 1, s));
        }
    }

    #[test]
    fn dropped_run_does_not_break_chain() {
        // {1,2} · {4} · {6,7}: after dropping the short run {4}, the gap
        // between the kept runs is 6−2 = 4.
        let r = runs(&[1, 2, 4, 6, 7]);
        assert!(runs_valid(&r, 4, 2, 4, Semantics::Subsequence));
        assert!(!runs_valid(&r, 4, 2, 3, Semantics::Subsequence));
    }
}
