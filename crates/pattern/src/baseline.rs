//! **BA** — the Baseline engine (Algorithm 3): SPARE adapted to streams.
//!
//! For every window start, enumerate *all* subsets of the owner's partition
//! with `|O| ≥ M − 1` and verify each against the following η − 1 partitions
//! — `O(η · 2^|P|)` time per window, the exponential cost the bit
//! compression of FBA/VBA eliminates. Partitions beyond a configurable size
//! are skipped and counted ([`BaselineEngine::skipped_partitions`]), which is
//! the honest version of "B cannot run on large datasets" (Figure 12).

use crate::engine::{EngineConfig, PatternEngine, WindowState, WindowTask};
use crate::runs::{runs_from_times, runs_witness, runs_witness_anchored, Semantics};
use icpe_types::{CheckpointError, EngineCheckpoint, ObjectId, Pattern, TimeSequence};

/// The Baseline pattern-enumeration engine.
#[derive(Debug)]
pub struct BaselineEngine {
    config: EngineConfig,
    windows: WindowState,
    skipped: usize,
}

impl BaselineEngine {
    /// Creates the engine.
    pub fn new(config: EngineConfig) -> Self {
        BaselineEngine {
            windows: WindowState::new(&config.constraints),
            config,
            skipped: 0,
        }
    }

    /// Number of partitions skipped because they exceeded
    /// [`EngineConfig::max_baseline_partition`].
    pub fn skipped_partitions(&self) -> usize {
        self.skipped
    }

    /// Rebuilds a Baseline engine from a checkpoint, loading only owners
    /// for which `keep` returns true. The skipped-partition counter is
    /// rehydrated: an incomplete result must stay marked incomplete across
    /// a restore.
    pub fn from_checkpoint(
        config: EngineConfig,
        ckpt: &EngineCheckpoint,
        keep: impl Fn(ObjectId) -> bool,
    ) -> Result<Self, CheckpointError> {
        if ckpt.kind != "BA" {
            return Err(CheckpointError::EngineMismatch {
                checkpoint: ckpt.kind.clone(),
                config: "BA".into(),
            });
        }
        Ok(BaselineEngine {
            windows: WindowState::restore(
                &config.constraints,
                ckpt.last_time,
                &ckpt.window_owners,
                keep,
            ),
            config,
            skipped: ckpt.skipped_partitions as usize,
        })
    }

    fn process(&mut self, task: WindowTask) -> Vec<Pattern> {
        let members = &task.window[0];
        let n = members.len();
        if n > self.config.max_baseline_partition {
            self.skipped += 1;
            return Vec::new();
        }
        let c = &self.config.constraints;
        let need = c.m() - 1; // owner is implicit
        if n < need {
            return Vec::new();
        }
        let masks = task.member_masks();
        let mut out = Vec::new();

        // Enumerate every subset with |O| ≥ M − 1 (the exponential loop).
        for subset in 1u64..(1u64 << n) {
            if (subset.count_ones() as usize) < need {
                continue;
            }
            // Times (window offsets) at which the whole subset stays with
            // the owner. Offset 0 always qualifies by construction.
            let times: Vec<u32> = masks
                .iter()
                .enumerate()
                .filter(|(_, &mask)| subset & mask == subset)
                .map(|(j, _)| j as u32)
                .collect();
            debug_assert_eq!(times.first(), Some(&0));
            let runs = runs_from_times(&times);
            // Under the paper's greedy semantics the window verifies only
            // from its own start (offset 0, Algorithm 3 line 3: T = {t});
            // later starts have their own windows.
            let witness = match self.config.semantics {
                Semantics::Subsequence => {
                    runs_witness(&runs, c.k(), c.l(), c.g(), Semantics::Subsequence)
                }
                Semantics::PaperGreedy => runs_witness_anchored(&runs, c.k(), c.l(), c.g()),
            };
            let Some(witness) = witness else {
                continue;
            };
            let mut objects: Vec<ObjectId> = (0..n)
                .filter(|i| subset & (1 << i) != 0)
                .map(|i| members[i])
                .collect();
            objects.push(task.owner);
            let times = TimeSequence::from_raw(witness.into_iter().map(|j| task.start + j))
                .expect("witness offsets are strictly increasing");
            out.push(Pattern::new(objects, times));
        }
        out
    }
}

impl PatternEngine for BaselineEngine {
    fn name(&self) -> &'static str {
        "BA"
    }

    fn significance(&self) -> usize {
        self.config.constraints.m()
    }

    fn push_partitions(
        &mut self,
        time: icpe_types::Timestamp,
        partitions: Vec<crate::partition::Partition>,
    ) -> Vec<Pattern> {
        let tasks = self.windows.push_partitions(time, partitions);
        tasks.into_iter().flat_map(|t| self.process(t)).collect()
    }

    fn finish(&mut self) -> Vec<Pattern> {
        let tasks = self.windows.finish();
        tasks.into_iter().flat_map(|t| self.process(t)).collect()
    }

    fn overflowed_partitions(&self) -> usize {
        self.skipped
    }

    fn checkpoint(&self) -> Option<EngineCheckpoint> {
        let (last_time, window_owners) = self.windows.checkpoint();
        Some(EngineCheckpoint {
            kind: "BA".into(),
            last_time,
            skipped_partitions: self.skipped as u64,
            window_owners,
            vba_owners: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unique_object_sets;
    use icpe_types::{ClusterSnapshot, Constraints, Timestamp};

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn cs(t: u32, groups: &[&[u32]]) -> ClusterSnapshot {
        ClusterSnapshot::from_groups(
            Timestamp(t),
            groups
                .iter()
                .map(|g| g.iter().copied().map(ObjectId).collect::<Vec<_>>()),
        )
    }

    fn run_stream(engine: &mut BaselineEngine, stream: &[ClusterSnapshot]) -> Vec<Pattern> {
        let mut out = Vec::new();
        for s in stream {
            out.extend(engine.push(s));
        }
        out.extend(engine.finish());
        out
    }

    #[test]
    fn detects_a_simple_persistent_group() {
        // {1,2,3} together for 4 consecutive times; CP(3,4,2,2).
        let c = Constraints::new(3, 4, 2, 2).unwrap();
        let mut engine = BaselineEngine::new(EngineConfig::new(c));
        let stream: Vec<ClusterSnapshot> = (0..8).map(|t| cs(t, &[&[1, 2, 3]])).collect();
        let patterns = run_stream(&mut engine, &stream);
        let sets = unique_object_sets(&patterns);
        assert!(sets.contains(&vec![oid(1), oid(2), oid(3)]));
        // All reported patterns satisfy the constraints.
        for p in &patterns {
            assert!(p.satisfies(&c), "{p}");
        }
    }

    #[test]
    fn paper_fig2_cp_patterns() {
        // Figure 2 / §3.1: with CP(2,4,2,2), {o4,o5} and {o6,o7} qualify by
        // time 5 with T = ⟨2,3,4,5⟩; with CP(3,4,2,2), {o4,o5,o6} qualifies
        // at time 7 with T = ⟨3,4,6,7⟩.
        // Cluster stream transcribed from the figure (times 1..=8):
        let stream = vec![
            cs(1, &[&[1, 2], &[3, 4], &[5, 6, 7]]),
            cs(2, &[&[1, 2], &[3, 4, 5], &[6, 7]]),
            cs(3, &[&[2, 3, 4, 5, 6, 7, 8]]),
            cs(4, &[&[1, 2], &[3, 4, 5, 6, 7]]),
            cs(5, &[&[1, 2], &[4, 5], &[6, 7]]),
            cs(6, &[&[3, 4, 5, 6], &[7, 8]]),
            cs(7, &[&[1, 2], &[4, 5, 6, 7]]),
            cs(8, &[&[5, 6, 7, 8]]),
        ];
        let c2 = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = BaselineEngine::new(EngineConfig::new(c2));
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        assert!(sets.contains(&vec![oid(4), oid(5)]), "{sets:?}");
        assert!(sets.contains(&vec![oid(6), oid(7)]), "{sets:?}");

        let c3 = Constraints::new(3, 4, 2, 2).unwrap();
        let mut engine = BaselineEngine::new(EngineConfig::new(c3));
        let sets = unique_object_sets(&run_stream(&mut engine, &stream));
        assert!(sets.contains(&vec![oid(4), oid(5), oid(6)]), "{sets:?}");
    }

    #[test]
    fn gap_exceeding_g_splits_patterns() {
        // Together at times 0..=3 and 8..=11, gap 5 > G=2: each episode
        // yields the pattern, but no sequence spans the gap.
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = BaselineEngine::new(EngineConfig::new(c));
        let mut stream = Vec::new();
        for t in 0..12u32 {
            let together = t <= 3 || t >= 8;
            stream.push(if together {
                cs(t, &[&[1, 2]])
            } else {
                cs(t, &[])
            });
        }
        let patterns = run_stream(&mut engine, &stream);
        assert!(!patterns.is_empty());
        for p in &patterns {
            assert!(p.satisfies(&c));
            let times = p.times.times();
            let all_early = times.iter().all(|t| t.0 <= 3);
            let all_late = times.iter().all(|t| t.0 >= 8);
            assert!(all_early || all_late, "sequence spans the gap: {p}");
        }
    }

    #[test]
    fn oversized_partition_is_skipped_and_counted() {
        let c = Constraints::new(2, 2, 1, 2).unwrap();
        let mut cfg = EngineConfig::new(c);
        cfg.max_baseline_partition = 4;
        let mut engine = BaselineEngine::new(cfg);
        let big: Vec<u32> = (1..=10).collect();
        let refs: Vec<&[u32]> = vec![&big];
        let stream: Vec<ClusterSnapshot> = (0..4).map(|t| cs(t, &refs)).collect();
        let _ = run_stream(&mut engine, &stream);
        assert!(engine.skipped_partitions() > 0);
    }

    #[test]
    fn no_patterns_below_duration() {
        let c = Constraints::new(2, 4, 2, 2).unwrap();
        let mut engine = BaselineEngine::new(EngineConfig::new(c));
        let stream: Vec<ClusterSnapshot> = (0..3).map(|t| cs(t, &[&[1, 2]])).collect();
        let patterns = run_stream(&mut engine, &stream);
        assert!(patterns.is_empty(), "{patterns:?}");
    }
}
