//! Post-processing of the raw pattern stream.
//!
//! The engines report *every* qualifying (object set, witness) — the same
//! set can surface from many windows, and every subset of a qualifying set
//! qualifies too (Definition 4 is downward-closed in `O`). Consumers usually
//! want a digest:
//!
//! * [`merge_patterns`] — one entry per object set, with the union of all
//!   witnessed times;
//! * [`maximal_patterns`] — only sets not contained in another reported set
//!   (the *closed* form that swarm/platoon mining reports);
//! * [`PatternSummary`] — both, plus counts, as a single report.

use crate::engine::unique_object_sets;
use icpe_types::{ObjectId, Pattern, TimeSequence, Timestamp};
use std::collections::{BTreeMap, BTreeSet};

/// Merges reports of the same object set: the result has one [`Pattern`]
/// per distinct set, whose time sequence is the sorted union of every
/// witnessed time. Output is sorted by object set.
///
/// The merged sequence is a union of valid witnesses, not necessarily
/// itself `(K, L, G)`-valid as a whole — it answers "when was this group
/// ever co-moving as part of a valid pattern".
pub fn merge_patterns(patterns: &[Pattern]) -> Vec<Pattern> {
    let mut merged: BTreeMap<Vec<ObjectId>, BTreeSet<Timestamp>> = BTreeMap::new();
    for p in patterns {
        merged
            .entry(p.objects.clone())
            .or_default()
            .extend(p.times.times().iter().copied());
    }
    merged
        .into_iter()
        .map(|(objects, times)| {
            let mut seq = TimeSequence::new();
            for t in times {
                seq.push(t).expect("BTreeSet iterates in increasing order");
            }
            Pattern {
                objects,
                times: seq,
            }
        })
        .collect()
}

/// Keeps only the *maximal* object sets: those not strictly contained in
/// another reported set. Input is first merged; output sorted by set.
pub fn maximal_patterns(patterns: &[Pattern]) -> Vec<Pattern> {
    let merged = merge_patterns(patterns);
    let sets: Vec<&Vec<ObjectId>> = merged.iter().map(|p| &p.objects).collect();
    merged
        .iter()
        .filter(|p| {
            !sets
                .iter()
                .any(|other| other.len() > p.objects.len() && is_subset(&p.objects, other))
        })
        .cloned()
        .collect()
}

fn is_subset(small: &[ObjectId], big: &[ObjectId]) -> bool {
    // Both sorted.
    let mut i = 0;
    for x in small {
        while i < big.len() && big[i] < *x {
            i += 1;
        }
        if i >= big.len() || big[i] != *x {
            return false;
        }
        i += 1;
    }
    true
}

/// A digest of a detection run.
#[derive(Debug, Clone)]
pub struct PatternSummary {
    /// Raw reports received.
    pub reports: usize,
    /// Distinct object sets.
    pub distinct_sets: usize,
    /// Merged patterns (one per set, unioned times).
    pub merged: Vec<Pattern>,
    /// The maximal (closed) patterns.
    pub maximal: Vec<Pattern>,
}

impl PatternSummary {
    /// Builds the summary from raw engine output.
    pub fn from_reports(patterns: &[Pattern]) -> Self {
        let merged = merge_patterns(patterns);
        let maximal = maximal_patterns(patterns);
        PatternSummary {
            reports: patterns.len(),
            distinct_sets: unique_object_sets(patterns).len(),
            merged,
            maximal,
        }
    }
}

impl std::fmt::Display for PatternSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} reports, {} distinct sets, {} maximal:",
            self.reports,
            self.distinct_sets,
            self.maximal.len()
        )?;
        for p in &self.maximal {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn pat(objs: &[u32], times: &[u32]) -> Pattern {
        Pattern::new(
            objs.iter().copied().map(ObjectId).collect(),
            TimeSequence::from_raw(times.iter().copied()).unwrap(),
        )
    }

    #[test]
    fn merge_unions_witnesses() {
        let merged = merge_patterns(&[
            pat(&[1, 2], &[1, 2, 3]),
            pat(&[1, 2], &[3, 4, 5]),
            pat(&[3, 4], &[7, 8]),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].objects, vec![oid(1), oid(2)]);
        let want: Vec<Timestamp> = [1, 2, 3, 4, 5].map(Timestamp).to_vec();
        assert_eq!(merged[0].times.times(), want.as_slice());
        assert_eq!(merged[1].objects, vec![oid(3), oid(4)]);
    }

    #[test]
    fn maximal_drops_contained_sets() {
        let maximal = maximal_patterns(&[
            pat(&[1, 2], &[1, 2]),
            pat(&[1, 2, 3], &[1, 2]),
            pat(&[2, 3], &[1, 2]),
            pat(&[7, 8], &[5, 6]),
        ]);
        let sets: Vec<Vec<ObjectId>> = maximal.into_iter().map(|p| p.objects).collect();
        assert_eq!(
            sets,
            vec![vec![oid(1), oid(2), oid(3)], vec![oid(7), oid(8)],]
        );
    }

    #[test]
    fn equal_sets_are_not_mutually_maximal_dropped() {
        // A set is only dropped for a *strictly larger* superset.
        let maximal = maximal_patterns(&[pat(&[1, 2], &[1, 2]), pat(&[1, 2], &[4, 5])]);
        assert_eq!(maximal.len(), 1);
    }

    #[test]
    fn summary_counts() {
        let s = PatternSummary::from_reports(&[
            pat(&[1, 2], &[1, 2]),
            pat(&[1, 2], &[2, 3]),
            pat(&[1, 2, 3], &[1, 2]),
        ]);
        assert_eq!(s.reports, 3);
        assert_eq!(s.distinct_sets, 2);
        assert_eq!(s.merged.len(), 2);
        assert_eq!(s.maximal.len(), 1);
        let text = s.to_string();
        assert!(text.contains("3 reports"));
        assert!(text.contains("{o1, o2, o3}"));
    }

    #[test]
    fn empty_input() {
        assert!(merge_patterns(&[]).is_empty());
        assert!(maximal_patterns(&[]).is_empty());
        let s = PatternSummary::from_reports(&[]);
        assert_eq!(s.reports, 0);
    }
}
