//! Planted co-movement groups: the ground-truth workload.
//!
//! A configurable number of groups travel together (members jitter tightly
//! around a leader's random walk) in on/off *episodes* — active for a while,
//! dispersed for a while — which exercises the K/L/G temporal machinery.
//! The remaining objects walk independently as noise. Because the groups are
//! planted, tests can assert that the pattern engines recover exactly them.

use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the planted-group generator.
#[derive(Debug, Clone)]
pub struct GroupWalkConfig {
    /// Total number of objects (groups first, then noise).
    pub num_objects: usize,
    /// Number of planted groups.
    pub num_groups: usize,
    /// Objects per group.
    pub group_size: usize,
    /// Number of ticks.
    pub num_snapshots: u32,
    /// Square arena side length.
    pub area: f64,
    /// Leader step length per tick.
    pub speed: f64,
    /// Jitter radius of members around their leader while the group is
    /// active (keep well below the clustering ε).
    pub cohesion_radius: f64,
    /// Ticks of each active episode.
    pub active_len: u32,
    /// Ticks of dispersal between episodes (0 = always together).
    pub gap_len: u32,
    /// How far members scatter from the leader during dispersal.
    pub dispersal_radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroupWalkConfig {
    fn default() -> Self {
        GroupWalkConfig {
            num_objects: 60,
            num_groups: 4,
            group_size: 6,
            num_snapshots: 60,
            area: 200.0,
            speed: 2.0,
            cohesion_radius: 0.8,
            active_len: 20,
            gap_len: 0,
            dispersal_radius: 30.0,
            seed: 0x6A0,
        }
    }
}

/// Generates traces with planted co-movement groups.
#[derive(Debug)]
pub struct GroupWalkGenerator {
    config: GroupWalkConfig,
}

impl GroupWalkGenerator {
    /// Creates the generator; group objects must fit into the population.
    pub fn new(config: GroupWalkConfig) -> Self {
        assert!(
            config.num_groups * config.group_size <= config.num_objects,
            "groups ({} × {}) exceed the population ({})",
            config.num_groups,
            config.group_size,
            config.num_objects
        );
        assert!(config.active_len >= 1);
        GroupWalkGenerator { config }
    }

    /// The planted ground-truth groups, as sorted id lists.
    pub fn planted_groups(&self) -> Vec<Vec<ObjectId>> {
        (0..self.config.num_groups)
            .map(|g| {
                let base = g * self.config.group_size;
                (base..base + self.config.group_size)
                    .map(|i| ObjectId(i as u32))
                    .collect()
            })
            .collect()
    }

    /// Simulates and returns the traces (every object reports every tick).
    pub fn traces(&self) -> TraceSet {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut traces = TraceSet::new();

        // Random-walk state: leaders (one per group) + noise objects.
        let walk = |rng: &mut StdRng| -> (Point, f64) {
            (
                Point::new(rng.random_range(0.0..c.area), rng.random_range(0.0..c.area)),
                rng.random_range(0.0..std::f64::consts::TAU),
            )
        };
        let mut leaders: Vec<(Point, f64)> = (0..c.num_groups).map(|_| walk(&mut rng)).collect();
        let noise_count = c.num_objects - c.num_groups * c.group_size;
        let mut noise: Vec<(Point, f64)> = (0..noise_count).map(|_| walk(&mut rng)).collect();
        // Per-member dispersal offsets, re-rolled at each episode boundary.
        let mut offsets: Vec<Point> = (0..c.num_groups * c.group_size)
            .map(|_| Point::new(0.0, 0.0))
            .collect();

        let period = c.active_len + c.gap_len;
        for tick in 0..c.num_snapshots {
            let phase = tick % period;
            let active = phase < c.active_len;
            if c.gap_len > 0 && phase == c.active_len {
                // Episode just ended: scatter the members.
                for off in offsets.iter_mut() {
                    let ang = rng.random_range(0.0..std::f64::consts::TAU);
                    let r = rng.random_range(c.dispersal_radius * 0.5..c.dispersal_radius);
                    *off = Point::new(ang.cos() * r, ang.sin() * r);
                }
            }
            // Advance leaders.
            for (pos, heading) in leaders.iter_mut() {
                step(pos, heading, c.speed, c.area, &mut rng);
            }
            // Group members.
            for (g, &(leader, _)) in leaders.iter().enumerate() {
                for m in 0..c.group_size {
                    let idx = g * c.group_size + m;
                    let jitter = Point::new(
                        rng.random_range(-c.cohesion_radius..c.cohesion_radius),
                        rng.random_range(-c.cohesion_radius..c.cohesion_radius),
                    );
                    let pos = if active {
                        Point::new(leader.x + jitter.x, leader.y + jitter.y)
                    } else {
                        Point::new(
                            leader.x + offsets[idx].x + jitter.x,
                            leader.y + offsets[idx].y + jitter.y,
                        )
                    };
                    traces.push(ObjectId(idx as u32), tick, pos);
                }
            }
            // Noise objects.
            for (i, (pos, heading)) in noise.iter_mut().enumerate() {
                step(pos, heading, c.speed * 1.5, c.area, &mut rng);
                let id = (c.num_groups * c.group_size + i) as u32;
                traces.push(ObjectId(id), tick, *pos);
            }
        }
        traces
    }

    /// Convenience: the dense snapshot sequence.
    pub fn snapshots(&self) -> Vec<icpe_types::Snapshot> {
        self.traces().to_snapshots()
    }
}

/// One random-walk step with soft reflection at the arena border.
fn step(pos: &mut Point, heading: &mut f64, speed: f64, area: f64, rng: &mut StdRng) {
    *heading += rng.random_range(-0.5..0.5);
    let nx = pos.x + heading.cos() * speed;
    let ny = pos.y + heading.sin() * speed;
    if nx < 0.0 || nx > area || ny < 0.0 || ny > area {
        *heading += std::f64::consts::PI; // turn around
    } else {
        pos.x = nx;
        pos.y = ny;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::DistanceMetric;

    fn cfg() -> GroupWalkConfig {
        GroupWalkConfig {
            num_objects: 30,
            num_groups: 3,
            group_size: 5,
            num_snapshots: 40,
            seed: 11,
            ..GroupWalkConfig::default()
        }
    }

    #[test]
    fn groups_stay_cohesive_while_active() {
        let gen = GroupWalkGenerator::new(cfg());
        let traces = gen.traces();
        // gap_len = 0 → always active: every pair within a group stays
        // within 2 × cohesion_radius (Chebyshev).
        for group in gen.planted_groups() {
            for tick in 0..40 {
                let positions: Vec<Point> = group
                    .iter()
                    .map(|&id| traces.trace(id).unwrap()[tick as usize].1)
                    .collect();
                for a in &positions {
                    for b in &positions {
                        assert!(
                            DistanceMetric::Chebyshev.within(a, b, 2.0 * 0.8 + 1e-9),
                            "group spread too far at tick {tick}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn episodes_disperse_groups() {
        let mut c = cfg();
        c.active_len = 10;
        c.gap_len = 10;
        c.dispersal_radius = 50.0;
        let gen = GroupWalkGenerator::new(c);
        let traces = gen.traces();
        let group = &gen.planted_groups()[0];
        // During a gap phase (tick 15), members are scattered.
        let positions: Vec<Point> = group
            .iter()
            .map(|&id| traces.trace(id).unwrap()[15].1)
            .collect();
        let mut max_d: f64 = 0.0;
        for a in &positions {
            for b in &positions {
                max_d = max_d.max(a.chebyshev(b));
            }
        }
        assert!(max_d > 10.0, "group not dispersed during gap: {max_d}");
    }

    #[test]
    fn planted_groups_partition_the_group_ids() {
        let gen = GroupWalkGenerator::new(cfg());
        let groups = gen.planted_groups();
        assert_eq!(groups.len(), 3);
        let all: Vec<u32> = groups.iter().flatten().map(|o| o.0).collect();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GroupWalkGenerator::new(cfg()).traces();
        let b = GroupWalkGenerator::new(cfg()).traces();
        assert_eq!(a.trace(ObjectId(7)).unwrap(), b.trace(ObjectId(7)).unwrap());
    }

    #[test]
    #[should_panic(expected = "exceed the population")]
    fn oversized_groups_panic() {
        GroupWalkGenerator::new(GroupWalkConfig {
            num_objects: 5,
            num_groups: 2,
            group_size: 5,
            ..GroupWalkConfig::default()
        });
    }
}
