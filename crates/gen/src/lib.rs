//! # icpe-gen — trajectory workload generators
//!
//! The paper evaluates on GeoLife (real), a proprietary Hangzhou Taxi
//! dataset, and trajectories from the Brinkhoff network-based generator on
//! the Las Vegas road network. The real datasets are not redistributable, so
//! this crate provides synthetic equivalents that match their published
//! statistics and — more importantly for the experiments — their structural
//! knobs: spatial density, cluster-size distribution, co-travel group
//! structure, and sampling cadence. See DESIGN.md §4 for the substitution
//! rationale.
//!
//! * [`network`] — a synthetic road network with shortest-path routing (the
//!   substrate of the Brinkhoff-style generator);
//! * [`brinkhoff`] — network-constrained moving objects with per-class
//!   speeds and re-routing, 1 s sampling (the paper's synthetic dataset);
//! * [`group_walk`] — planted co-movement groups with known ground truth;
//!   the correctness workload for the pattern engines;
//! * [`geolife`] / [`taxi`] — presets shaped like the two real datasets;
//! * [`hotspot`] — Zipf-skewed site popularity with a drifting hotspot
//!   center: the adversarial input for hotspot-aware repartitioning;
//! * [`stream`] — trace → snapshot / raw-record conversion, disorder
//!   injection for the time-aligner, and Table-2-style dataset statistics.

pub mod brinkhoff;
pub mod geolife;
pub mod group_walk;
pub mod hotspot;
pub mod io;
pub mod network;
pub mod stream;
pub mod taxi;

pub use brinkhoff::{BrinkhoffConfig, BrinkhoffGenerator};
pub use geolife::{GeoLifeConfig, GeoLifeGenerator};
pub use group_walk::{GroupWalkConfig, GroupWalkGenerator};
pub use hotspot::{HotspotConfig, HotspotGenerator};
pub use network::RoadNetwork;
pub use stream::{
    dataset_stats, disorder_gps, to_raw_records, DatasetStats, DisorderConfig, TraceSet,
};
pub use taxi::{TaxiConfig, TaxiGenerator};
