//! A Taxi-shaped synthetic workload.
//!
//! The paper's Taxi dataset is proprietary (Hangzhou taxis, 5 s sampling,
//! month-long traces segmented into trips). What the experiments exercise is
//! a dense urban fleet with hot-spot attraction (many taxis converge on the
//! same areas — large clusters) and road-constrained platooning. This
//! generator runs a fleet on the synthetic road network with hot-spot-biased
//! destinations; 1 tick = 5 s.

use crate::network::RoadNetwork;
use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the taxi-fleet generator.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Fleet size.
    pub num_objects: usize,
    /// Number of ticks (1 tick = 5 s).
    pub num_ticks: u32,
    /// Road-network grid columns.
    pub net_nx: usize,
    /// Road-network grid rows.
    pub net_ny: usize,
    /// Block length.
    pub block: f64,
    /// Number of hot spots (stations, malls) that attract trips.
    pub num_hotspots: usize,
    /// Probability that a new trip targets a hot spot.
    pub hotspot_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            num_objects: 220,
            num_ticks: 150,
            net_nx: 10,
            net_ny: 10,
            block: 12.0,
            num_hotspots: 4,
            hotspot_bias: 0.6,
            seed: 0x7A81,
        }
    }
}

/// Generates taxi-fleet traces.
#[derive(Debug)]
pub struct TaxiGenerator {
    config: TaxiConfig,
    network: RoadNetwork,
    hotspots: Vec<usize>,
}

impl TaxiGenerator {
    /// Builds the generator, its network, and its hot-spot nodes.
    pub fn new(config: TaxiConfig) -> Self {
        let network =
            RoadNetwork::grid(config.net_nx, config.net_ny, config.block, 0.1, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(7));
        let hotspots: Vec<usize> = (0..config.num_hotspots)
            .map(|_| rng.random_range(0..network.num_nodes()))
            .collect();
        TaxiGenerator {
            config,
            network,
            hotspots,
        }
    }

    /// The hot-spot node indices.
    pub fn hotspots(&self) -> &[usize] {
        &self.hotspots
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// Simulates and returns the traces (one report per taxi per tick).
    pub fn traces(&self) -> TraceSet {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed.wrapping_add(99));
        let n_nodes = self.network.num_nodes();

        struct Taxi {
            path: Vec<usize>,
            leg: usize,
            covered: f64,
            position: Point,
        }
        let mut taxis: Vec<Taxi> = (0..c.num_objects)
            .map(|_| {
                let start = rng.random_range(0..n_nodes);
                Taxi {
                    path: vec![start],
                    leg: 0,
                    covered: 0.0,
                    position: self.network.position(start),
                }
            })
            .collect();

        let mut traces = TraceSet::new();
        for tick in 0..c.num_ticks {
            for (i, taxi) in taxis.iter_mut().enumerate() {
                // New trip when the previous one ended.
                if taxi.leg + 1 >= taxi.path.len() {
                    let here = *taxi.path.last().unwrap();
                    let dest = if rng.random_bool(c.hotspot_bias) {
                        self.hotspots[rng.random_range(0..self.hotspots.len())]
                    } else {
                        rng.random_range(0..n_nodes)
                    };
                    if dest != here {
                        taxi.path = self
                            .network
                            .shortest_path(here, dest)
                            .expect("grid networks are connected");
                        taxi.leg = 0;
                        taxi.covered = 0.0;
                    }
                }
                // Advance one tick (5 s: ×5 the per-second edge speed).
                if taxi.leg + 1 < taxi.path.len() {
                    let mut budget = 5.0
                        * self
                            .network
                            .edge_speed(taxi.path[taxi.leg], taxi.path[taxi.leg + 1]);
                    while taxi.leg + 1 < taxi.path.len() && budget > 0.0 {
                        let pa = self.network.position(taxi.path[taxi.leg]);
                        let pb = self.network.position(taxi.path[taxi.leg + 1]);
                        let leg_len = pa.l2(&pb).max(1e-9);
                        let remaining = leg_len - taxi.covered;
                        if budget < remaining {
                            taxi.covered += budget;
                            let f = taxi.covered / leg_len;
                            taxi.position =
                                Point::new(pa.x + (pb.x - pa.x) * f, pa.y + (pb.y - pa.y) * f);
                            budget = 0.0;
                        } else {
                            budget -= remaining;
                            taxi.leg += 1;
                            taxi.covered = 0.0;
                            taxi.position = pb;
                        }
                    }
                }
                traces.push(ObjectId(i as u32), tick, taxi.position);
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::dataset_stats;
    use icpe_types::DistanceMetric;

    fn cfg() -> TaxiConfig {
        TaxiConfig {
            num_objects: 40,
            num_ticks: 60,
            net_nx: 6,
            net_ny: 6,
            seed: 5,
            ..TaxiConfig::default()
        }
    }

    #[test]
    fn dense_sampling_every_tick() {
        let stats = dataset_stats(&TaxiGenerator::new(cfg()).traces());
        assert_eq!(stats.trajectories, 40);
        assert_eq!(stats.locations, 40 * 60);
    }

    #[test]
    fn hotspots_attract_density() {
        let gen = TaxiGenerator::new(cfg());
        let traces = gen.traces();
        // At the last tick, count taxis near any hotspot vs. a random node.
        let near = |p: &Point, node: usize| {
            DistanceMetric::Chebyshev.within(p, &gen.network().position(node), 15.0)
        };
        let mut near_hot = 0usize;
        let mut total = 0usize;
        for (_, trace) in traces.iter() {
            let &(_, p) = trace.last().unwrap();
            total += 1;
            if gen.hotspots().iter().any(|&h| near(&p, h)) {
                near_hot += 1;
            }
        }
        // With a 0.6 hot-spot bias a solid share of the fleet converges.
        assert!(
            near_hot * 4 >= total,
            "only {near_hot}/{total} taxis near hotspots"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = TaxiGenerator::new(cfg()).traces();
        let b = TaxiGenerator::new(cfg()).traces();
        assert_eq!(a.trace(ObjectId(0)).unwrap(), b.trace(ObjectId(0)).unwrap());
    }
}
