//! A spatially skewed workload: Zipf-distributed attraction-site
//! popularity with a hotspot center that drifts over time.
//!
//! The paper's scaling experiments assume the grid stage's cells receive
//! comparable load; real urban streams do not cooperate — a downtown core
//! and a handful of transit hubs attract most of the fleet, and the hot
//! area *moves* with the rush hour. This generator reproduces exactly that
//! adversarial shape for the repartitioning bench:
//!
//! * `num_sites` attraction sites on a jittered grid over the area;
//! * site popularity follows a Zipf(`zipf_s`) law over the sites ranked by
//!   distance to the current **hotspot center** — nearest = hottest;
//! * the center drifts along a slow circular orbit, so which sites are hot
//!   changes over the run (forcing the balancer to re-learn, not just
//!   learn once);
//! * objects travel toward their chosen site in small co-moving squads
//!   (seeded per site), re-choosing a site every `retarget_every` ticks —
//!   so the stream also carries genuine co-movement patterns to detect.

use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the moving-hotspot generator.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// Fleet size.
    pub num_objects: usize,
    /// Number of ticks.
    pub num_ticks: u32,
    /// Side length of the (square) area.
    pub area: f64,
    /// Attraction sites (placed on a jittered √n × √n grid).
    pub num_sites: usize,
    /// Zipf exponent over distance-ranked sites; larger = more skew
    /// (1.0 ≈ classic web/city skew, 0.0 = uniform).
    pub zipf_s: f64,
    /// Ticks between an object re-choosing its target site.
    pub retarget_every: u32,
    /// Fraction of the orbit the hotspot center completes over the run
    /// (1.0 = one full loop; 0.0 = stationary hotspot).
    pub orbit_turns: f64,
    /// Movement speed toward the target, per tick.
    pub speed: f64,
    /// Squad size: objects are grouped in co-moving squads of this many
    /// (the co-movement substrate the detection phase finds).
    pub squad_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            num_objects: 400,
            num_ticks: 120,
            area: 400.0,
            num_sites: 48,
            zipf_s: 1.5,
            retarget_every: 40,
            orbit_turns: 0.75,
            speed: 18.0,
            squad_size: 4,
            seed: 0x5EED_1207,
        }
    }
}

/// Generates moving-hotspot traces.
#[derive(Debug)]
pub struct HotspotGenerator {
    config: HotspotConfig,
    sites: Vec<Point>,
}

impl HotspotGenerator {
    /// Builds the generator and its attraction sites.
    pub fn new(config: HotspotConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xA11));
        let side = (config.num_sites.max(1) as f64).sqrt().ceil() as usize;
        let cell = config.area / side as f64;
        let mut sites = Vec::with_capacity(config.num_sites);
        'outer: for gy in 0..side {
            for gx in 0..side {
                if sites.len() >= config.num_sites {
                    break 'outer;
                }
                sites.push(Point::new(
                    (gx as f64 + rng.random_range(0.25..0.75)) * cell,
                    (gy as f64 + rng.random_range(0.25..0.75)) * cell,
                ));
            }
        }
        HotspotGenerator { config, sites }
    }

    /// The attraction sites.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The hotspot center at `tick`: a point orbiting the area's midpoint
    /// at 0.3 × area radius.
    pub fn center_at(&self, tick: u32) -> Point {
        let c = &self.config;
        let mid = c.area / 2.0;
        let progress = if c.num_ticks <= 1 {
            0.0
        } else {
            tick as f64 / (c.num_ticks - 1) as f64
        };
        let angle = progress * c.orbit_turns * std::f64::consts::TAU;
        Point::new(
            mid + 0.3 * c.area * angle.cos(),
            mid + 0.3 * c.area * angle.sin(),
        )
    }

    /// Samples a site index from the Zipf law over sites ranked by
    /// distance to `center` (rank 1 = nearest = most popular).
    fn sample_site(&self, center: &Point, rng: &mut StdRng) -> usize {
        let mut ranked: Vec<usize> = (0..self.sites.len()).collect();
        ranked.sort_by(|&a, &b| {
            let da = self.sites[a].l2(center);
            let db = self.sites[b].l2(center);
            da.partial_cmp(&db).expect("distances are finite")
        });
        // Zipf CDF by linear scan (num_sites is small).
        let total: f64 = (1..=ranked.len())
            .map(|r| 1.0 / (r as f64).powf(self.config.zipf_s))
            .sum();
        let mut draw = rng.random_range(0.0..total);
        for (i, &site) in ranked.iter().enumerate() {
            let w = 1.0 / ((i + 1) as f64).powf(self.config.zipf_s);
            if draw < w {
                return site;
            }
            draw -= w;
        }
        *ranked.last().expect("at least one site")
    }

    /// Simulates and returns the traces (one report per object per tick).
    pub fn traces(&self) -> TraceSet {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let squad = c.squad_size.max(1);

        // Per-squad state; squad members share the target and stay in a
        // tight formation around the squad anchor.
        let num_squads = c.num_objects.div_ceil(squad);
        let mut anchors: Vec<Point> = (0..num_squads)
            .map(|_| Point::new(rng.random_range(0.0..c.area), rng.random_range(0.0..c.area)))
            .collect();
        let mut targets: Vec<usize> = (0..num_squads)
            .map(|_| self.sample_site(&self.center_at(0), &mut rng))
            .collect();
        // Each squad parks at a standoff slot around its site rather than
        // on the exact site point: slots live on a 7×7 lattice with
        // spacing comfortably above typical DBSCAN ε, so a crowded
        // hotspot concentrates *cell-level* load without fusing every
        // parked squad into one giant cluster (which would blow up
        // pattern enumeration combinatorially, not just the hot subtask).
        let standoff = |rng: &mut StdRng| {
            let slot = rng.random_range(0..49usize);
            Point::new((slot % 7) as f64 * 2.4 - 7.2, (slot / 7) as f64 * 2.4 - 7.2)
        };
        let mut standoffs: Vec<Point> = (0..num_squads).map(|_| standoff(&mut rng)).collect();
        // Fixed intra-squad formation offsets (tight: within DBSCAN reach).
        let offsets: Vec<Point> = (0..c.num_objects)
            .map(|i| {
                let k = i % squad;
                Point::new(0.35 * (k % 2) as f64, 0.35 * (k / 2) as f64)
            })
            .collect();

        let mut traces = TraceSet::new();
        for tick in 0..c.num_ticks {
            let center = self.center_at(tick);
            for (s, anchor) in anchors.iter_mut().enumerate() {
                // Staggered retargeting so squads do not all turn at once.
                if tick > 0 && (tick + s as u32).is_multiple_of(c.retarget_every.max(1)) {
                    targets[s] = self.sample_site(&center, &mut rng);
                    standoffs[s] = standoff(&mut rng);
                }
                let site = self.sites[targets[s]];
                let goal = Point::new(site.x + standoffs[s].x, site.y + standoffs[s].y);
                let dx = goal.x - anchor.x;
                let dy = goal.y - anchor.y;
                let dist = (dx * dx + dy * dy).sqrt();
                if dist > 1e-9 {
                    let step = c.speed.min(dist);
                    anchor.x += dx / dist * step;
                    anchor.y += dy / dist * step;
                }
            }
            for i in 0..c.num_objects {
                let anchor = anchors[i / squad];
                let o = offsets[i];
                traces.push(
                    ObjectId(i as u32),
                    tick,
                    Point::new(anchor.x + o.x, anchor.y + o.y),
                );
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::dataset_stats;

    fn cfg() -> HotspotConfig {
        HotspotConfig {
            num_objects: 80,
            num_ticks: 60,
            seed: 11,
            ..HotspotConfig::default()
        }
    }

    #[test]
    fn dense_sampling_every_tick() {
        let stats = dataset_stats(&HotspotGenerator::new(cfg()).traces());
        assert_eq!(stats.trajectories, 80);
        assert_eq!(stats.locations, 80 * 60);
        assert_eq!(stats.snapshots, 60);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = HotspotGenerator::new(cfg()).traces();
        let b = HotspotGenerator::new(cfg()).traces();
        assert_eq!(a.trace(ObjectId(7)).unwrap(), b.trace(ObjectId(7)).unwrap());
    }

    #[test]
    fn load_is_spatially_skewed() {
        // Bucket the last tick's positions into a coarse grid; Zipf
        // attraction must concentrate a large share into the top bucket.
        let gen = HotspotGenerator::new(HotspotConfig {
            zipf_s: 1.4,
            ..cfg()
        });
        let traces = gen.traces();
        let mut buckets = std::collections::HashMap::<(i64, i64), usize>::new();
        for (_, trace) in traces.iter() {
            let &(_, p) = trace.last().unwrap();
            *buckets
                .entry(((p.x / 50.0).floor() as i64, (p.y / 50.0).floor() as i64))
                .or_default() += 1;
        }
        let top = *buckets.values().max().unwrap();
        let cells = buckets.len().max(1);
        let mean = 80usize.div_ceil(cells);
        assert!(
            top >= mean * 2,
            "expected skew: top bucket {top}, mean {mean}, cells {cells}"
        );
    }

    #[test]
    fn hotspot_center_moves() {
        let gen = HotspotGenerator::new(cfg());
        let a = gen.center_at(0);
        let b = gen.center_at(59);
        assert!(a.l2(&b) > 50.0, "orbit must displace the center");
    }

    #[test]
    fn stationary_orbit_keeps_center() {
        let gen = HotspotGenerator::new(HotspotConfig {
            orbit_turns: 0.0,
            ..cfg()
        });
        assert_eq!(gen.center_at(0), gen.center_at(59));
    }
}
