//! A synthetic road network: the substrate of the Brinkhoff-style generator.
//!
//! The paper generates objects "on the real road network of Las Vegas" —
//! famously a grid city. We synthesize a jittered grid with occasional
//! diagonal shortcuts and per-edge speed classes, and provide shortest-path
//! routing (Dijkstra over travel time).

use icpe_types::Point;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Edge speed classes, in distance units per tick.
pub const SPEED_CLASSES: [f64; 3] = [0.5, 1.0, 2.0];

/// A node of the road network.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Planar position.
    pub position: Point,
}

/// A directed edge (stored once per direction).
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Target node index.
    pub to: usize,
    /// Euclidean length.
    pub length: f64,
    /// Free-flow speed (distance per tick).
    pub speed: f64,
}

/// A road network: jittered grid plus random diagonals.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    adjacency: Vec<Vec<Edge>>,
}

impl RoadNetwork {
    /// Builds an `nx × ny` grid with spacing `block`, node jitter, and a
    /// `diagonal_prob` chance of a diagonal shortcut per cell.
    pub fn grid(nx: usize, ny: usize, block: f64, diagonal_prob: f64, seed: u64) -> Self {
        assert!(nx >= 2 && ny >= 2, "network needs at least a 2×2 grid");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                let jx = rng.random_range(-0.15..0.15) * block;
                let jy = rng.random_range(-0.15..0.15) * block;
                nodes.push(Node {
                    position: Point::new(x as f64 * block + jx, y as f64 * block + jy),
                });
            }
        }
        let idx = |x: usize, y: usize| y * nx + x;
        let mut adjacency: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let connect =
            |a: usize, b: usize, rng: &mut StdRng, adj: &mut Vec<Vec<Edge>>, nodes: &[Node]| {
                let length = nodes[a].position.l2(&nodes[b].position);
                let speed = SPEED_CLASSES[rng.random_range(0..SPEED_CLASSES.len())];
                adj[a].push(Edge {
                    to: b,
                    length,
                    speed,
                });
                adj[b].push(Edge {
                    to: a,
                    length,
                    speed,
                });
            };
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    connect(idx(x, y), idx(x + 1, y), &mut rng, &mut adjacency, &nodes);
                }
                if y + 1 < ny {
                    connect(idx(x, y), idx(x, y + 1), &mut rng, &mut adjacency, &nodes);
                }
                if x + 1 < nx && y + 1 < ny && rng.random_bool(diagonal_prob) {
                    connect(
                        idx(x, y),
                        idx(x + 1, y + 1),
                        &mut rng,
                        &mut adjacency,
                        &nodes,
                    );
                }
            }
        }
        RoadNetwork { nodes, adjacency }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// A node's position.
    pub fn position(&self, node: usize) -> Point {
        self.nodes[node].position
    }

    /// The outgoing edges of a node.
    pub fn edges(&self, node: usize) -> &[Edge] {
        &self.adjacency[node]
    }

    /// Fastest route (by travel time) from `from` to `to`, as a node list
    /// including both endpoints. `None` only if the graph were disconnected
    /// (a grid never is).
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.total_cmp(&self.0) // min-heap
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Entry(0.0, from));
        while let Some(Entry(d, u)) = heap.pop() {
            if u == to {
                break;
            }
            if d > dist[u] {
                continue;
            }
            for e in &self.adjacency[u] {
                let nd = d + e.length / e.speed;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = u;
                    heap.push(Entry(nd, e.to));
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The speed of the edge `a → b` (must exist).
    pub fn edge_speed(&self, a: usize, b: usize) -> f64 {
        self.adjacency[a]
            .iter()
            .find(|e| e.to == b)
            .map(|e| e.speed)
            .expect("edge must exist")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_topology() {
        let net = RoadNetwork::grid(4, 3, 10.0, 0.0, 1);
        assert_eq!(net.num_nodes(), 12);
        // 3×3 horizontal per row × 3 rows? horizontal: 3 per row × 3 rows =
        // 9; vertical: 4 per column-pair × 2 = 8 → 17.
        assert_eq!(net.num_edges(), 17);
    }

    #[test]
    fn diagonals_add_edges() {
        let without = RoadNetwork::grid(5, 5, 10.0, 0.0, 2).num_edges();
        let with = RoadNetwork::grid(5, 5, 10.0, 1.0, 2).num_edges();
        assert_eq!(with, without + 16); // one diagonal per interior cell
    }

    #[test]
    fn shortest_path_connects_and_is_minimal_hops_on_uniform_grid() {
        let net = RoadNetwork::grid(6, 6, 10.0, 0.0, 3);
        let path = net.shortest_path(0, 35).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 35);
        // Consecutive path nodes must be connected.
        for w in path.windows(2) {
            assert!(net.edges(w[0]).iter().any(|e| e.to == w[1]));
        }
        // Manhattan distance on the grid is 5 + 5 = 10 hops minimum.
        assert!(path.len() >= 11);
    }

    #[test]
    fn path_to_self_is_singleton() {
        let net = RoadNetwork::grid(3, 3, 10.0, 0.0, 4);
        assert_eq!(net.shortest_path(4, 4).unwrap(), vec![4]);
    }

    #[test]
    fn edge_speed_lookup() {
        let net = RoadNetwork::grid(3, 3, 10.0, 0.0, 5);
        let e = net.edges(0)[0];
        assert!(SPEED_CLASSES.contains(&net.edge_speed(0, e.to)));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RoadNetwork::grid(4, 4, 10.0, 0.5, 9);
        let b = RoadNetwork::grid(4, 4, 10.0, 0.5, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for i in 0..a.num_nodes() {
            assert_eq!(a.position(i), b.position(i));
        }
    }
}
