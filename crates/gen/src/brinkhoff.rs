//! Brinkhoff-style network-based moving objects (the paper's synthetic
//! dataset, §7: "an object position is generated every second while an
//! object moves through the road network with random but reasonable
//! direction and speed").

use crate::network::RoadNetwork;
use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the Brinkhoff-style generator.
#[derive(Debug, Clone)]
pub struct BrinkhoffConfig {
    /// Number of moving objects.
    pub num_objects: usize,
    /// Number of ticks to simulate (1 tick = 1 s, the paper's sampling).
    pub num_ticks: u32,
    /// Grid columns of the road network.
    pub net_nx: usize,
    /// Grid rows of the road network.
    pub net_ny: usize,
    /// Block length (distance between grid nodes).
    pub block: f64,
    /// Probability of a diagonal shortcut per cell.
    pub diagonal_prob: f64,
    /// RNG seed (also seeds the network).
    pub seed: u64,
}

impl Default for BrinkhoffConfig {
    fn default() -> Self {
        BrinkhoffConfig {
            num_objects: 200,
            num_ticks: 120,
            net_nx: 12,
            net_ny: 12,
            block: 10.0,
            diagonal_prob: 0.15,
            seed: 0xB21,
        }
    }
}

/// One object's routing state.
struct Traveler {
    /// Remaining path (node indices), front = next waypoint.
    path: Vec<usize>,
    /// Index into `path` of the edge currently being traversed (`path[i]` →
    /// `path[i+1]`).
    leg: usize,
    /// Distance covered along the current leg.
    covered: f64,
    /// Current position.
    position: Point,
}

/// Generates network-constrained traces.
#[derive(Debug)]
pub struct BrinkhoffGenerator {
    config: BrinkhoffConfig,
    network: RoadNetwork,
}

impl BrinkhoffGenerator {
    /// Builds the generator (and its road network).
    pub fn new(config: BrinkhoffConfig) -> Self {
        let network = RoadNetwork::grid(
            config.net_nx,
            config.net_ny,
            config.block,
            config.diagonal_prob,
            config.seed,
        );
        BrinkhoffGenerator { config, network }
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// Simulates all objects and returns their traces (every object reports
    /// every tick).
    pub fn traces(&self) -> TraceSet {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let n_nodes = self.network.num_nodes();
        let mut travelers: Vec<Traveler> = (0..self.config.num_objects)
            .map(|_| {
                let start = rng.random_range(0..n_nodes);
                Traveler {
                    path: vec![start],
                    leg: 0,
                    covered: 0.0,
                    position: self.network.position(start),
                }
            })
            .collect();

        let mut traces = TraceSet::new();
        for tick in 0..self.config.num_ticks {
            for (i, tr) in travelers.iter_mut().enumerate() {
                self.advance(tr, &mut rng);
                traces.push(ObjectId(i as u32), tick, tr.position);
            }
        }
        traces
    }

    /// Moves a traveler one tick along its route, re-routing at the
    /// destination.
    fn advance(&self, tr: &mut Traveler, rng: &mut StdRng) {
        // At the end of the path: pick a fresh destination.
        if tr.leg + 1 >= tr.path.len() {
            let here = *tr.path.last().unwrap();
            let mut dest = rng.random_range(0..self.network.num_nodes());
            if dest == here {
                dest = (dest + 1) % self.network.num_nodes();
            }
            tr.path = self
                .network
                .shortest_path(here, dest)
                .expect("grid networks are connected");
            tr.leg = 0;
            tr.covered = 0.0;
            if tr.path.len() == 1 {
                tr.position = self.network.position(tr.path[0]);
                return;
            }
        }
        // Advance by the current edge's speed, possibly across several legs.
        let mut budget = self
            .network
            .edge_speed(tr.path[tr.leg], tr.path[tr.leg + 1]);
        loop {
            let a = tr.path[tr.leg];
            let b = tr.path[tr.leg + 1];
            let pa = self.network.position(a);
            let pb = self.network.position(b);
            let leg_len = pa.l2(&pb).max(1e-9);
            let remaining = leg_len - tr.covered;
            if budget < remaining {
                tr.covered += budget;
                let f = tr.covered / leg_len;
                tr.position = Point::new(pa.x + (pb.x - pa.x) * f, pa.y + (pb.y - pa.y) * f);
                return;
            }
            budget -= remaining;
            tr.leg += 1;
            tr.covered = 0.0;
            tr.position = pb;
            if tr.leg + 1 >= tr.path.len() {
                return; // arrived; re-route next tick
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::dataset_stats;

    fn small() -> BrinkhoffConfig {
        BrinkhoffConfig {
            num_objects: 20,
            num_ticks: 50,
            net_nx: 5,
            net_ny: 5,
            block: 10.0,
            diagonal_prob: 0.2,
            seed: 7,
        }
    }

    #[test]
    fn every_object_reports_every_tick() {
        let gen = BrinkhoffGenerator::new(small());
        let traces = gen.traces();
        let stats = dataset_stats(&traces);
        assert_eq!(stats.trajectories, 20);
        assert_eq!(stats.locations, 20 * 50);
        assert_eq!(stats.snapshots, 50);
    }

    #[test]
    fn movement_is_speed_bounded() {
        let gen = BrinkhoffGenerator::new(small());
        let traces = gen.traces();
        let max_speed = crate::network::SPEED_CLASSES
            .iter()
            .fold(f64::MIN, |a, &b| a.max(b));
        for (_, trace) in traces.iter() {
            for w in trace.windows(2) {
                let d = w[0].1.l2(&w[1].1);
                // One tick of travel plus numeric slack; jumps would mean a
                // teleporting bug.
                assert!(d <= max_speed * 1.5 + 1e-6, "object moved {d} in one tick");
            }
        }
    }

    #[test]
    fn positions_stay_within_network_extent() {
        let cfg = small();
        let extent = (cfg.net_nx as f64) * cfg.block * 1.2;
        let gen = BrinkhoffGenerator::new(cfg);
        for (_, trace) in gen.traces().iter() {
            for &(_, p) in trace {
                assert!(p.x > -extent && p.x < extent && p.y > -extent && p.y < extent);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = BrinkhoffGenerator::new(small()).traces();
        let b = BrinkhoffGenerator::new(small()).traces();
        assert_eq!(a.trace(ObjectId(3)).unwrap(), b.trace(ObjectId(3)).unwrap());
    }

    #[test]
    fn objects_actually_move() {
        let gen = BrinkhoffGenerator::new(small());
        let traces = gen.traces();
        let moved = traces
            .iter()
            .filter(|(_, t)| {
                let first = t.first().unwrap().1;
                t.iter().any(|&(_, p)| p.l2(&first) > 1.0)
            })
            .count();
        assert!(moved >= 18, "only {moved}/20 objects moved");
    }
}
