//! A GeoLife-shaped synthetic workload.
//!
//! GeoLife (Microsoft Research) records multi-year personal mobility with
//! mixed transport modes and 1–5 s sampling; 91% of its trajectories sample
//! every 1–5 s. The experiments stress its *density structure* — people
//! concentrate around anchor places and co-travel in small knots — and its
//! *irregular sampling*. This generator reproduces those traits: each person
//! commutes between personal anchor points at a mode-dependent speed and
//! reports every 1–5 ticks; a fraction of the population travels in small
//! co-moving knots (shared anchors and schedule).

use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the GeoLife-like generator.
#[derive(Debug, Clone)]
pub struct GeoLifeConfig {
    /// Number of people.
    pub num_objects: usize,
    /// Number of ticks.
    pub num_ticks: u32,
    /// Square arena side length.
    pub area: f64,
    /// Number of shared anchor places (campus, stations, malls).
    pub num_anchors: usize,
    /// Fraction of the population moving in co-travel knots.
    pub group_fraction: f64,
    /// Knot size.
    pub group_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoLifeConfig {
    fn default() -> Self {
        GeoLifeConfig {
            num_objects: 180,
            num_ticks: 150,
            area: 300.0,
            num_anchors: 8,
            group_fraction: 0.3,
            group_size: 5,
            seed: 0x6E0,
        }
    }
}

/// Transport-mode speeds (distance per tick): walk, bike, bus/car.
const MODE_SPEEDS: [f64; 3] = [0.8, 2.5, 6.0];

/// Generates GeoLife-shaped traces.
#[derive(Debug)]
pub struct GeoLifeGenerator {
    config: GeoLifeConfig,
}

struct Person {
    position: Point,
    target: usize,
    speed: f64,
    /// Sampling period in ticks (1–5, the dataset's 1–5 s).
    period: u32,
    /// Phase offset so reports do not all align.
    phase: u32,
    /// Members of a knot share a knot id; `usize::MAX` = solo.
    knot: usize,
}

impl GeoLifeGenerator {
    /// Creates the generator.
    pub fn new(config: GeoLifeConfig) -> Self {
        assert!(config.num_anchors >= 2, "need at least two anchors");
        GeoLifeGenerator { config }
    }

    /// Simulates and returns the traces.
    pub fn traces(&self) -> TraceSet {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let anchors: Vec<Point> = (0..c.num_anchors)
            .map(|_| {
                Point::new(
                    rng.random_range(0.1 * c.area..0.9 * c.area),
                    rng.random_range(0.1 * c.area..0.9 * c.area),
                )
            })
            .collect();

        let num_grouped =
            ((c.num_objects as f64 * c.group_fraction) as usize / c.group_size) * c.group_size;
        let mut people: Vec<Person> = Vec::with_capacity(c.num_objects);
        for i in 0..c.num_objects {
            let knot = if i < num_grouped {
                i / c.group_size
            } else {
                usize::MAX
            };
            let start = rng.random_range(0..anchors.len());
            people.push(Person {
                position: anchors[start],
                target: (start + 1 + rng.random_range(0..anchors.len() - 1)) % anchors.len(),
                speed: MODE_SPEEDS[rng.random_range(0..MODE_SPEEDS.len())],
                period: rng.random_range(1..=5),
                phase: rng.random_range(0..5),
                knot,
            });
        }
        // Knot members share target, speed and cadence with their first
        // member (they travel together).
        for i in 0..num_grouped {
            let head = (i / c.group_size) * c.group_size;
            if i != head {
                people[i].target = people[head].target;
                people[i].speed = people[head].speed;
                people[i].period = people[head].period;
                people[i].phase = people[head].phase;
                people[i].position = people[head].position;
            }
        }

        let mut traces = TraceSet::new();
        for tick in 0..c.num_ticks {
            // Move heads and solos; followers copy their head with jitter.
            for i in 0..people.len() {
                let is_follower = people[i].knot != usize::MAX && i % c.group_size != 0;
                if is_follower {
                    continue;
                }
                let target = anchors[people[i].target];
                let p = &mut people[i];
                let d = p.position.l2(&target);
                if d <= p.speed {
                    p.position = target;
                    // Dwell, then pick the next anchor.
                    if rng.random_bool(0.2) {
                        p.target = rng.random_range(0..anchors.len());
                    }
                } else {
                    let f = p.speed / d;
                    p.position = Point::new(
                        p.position.x + (target.x - p.position.x) * f,
                        p.position.y + (target.y - p.position.y) * f,
                    );
                }
            }
            for i in 0..people.len() {
                let is_follower = people[i].knot != usize::MAX && i % c.group_size != 0;
                if is_follower {
                    let head = (i / c.group_size) * c.group_size;
                    let head_pos = people[head].position;
                    let p = &mut people[i];
                    p.position = Point::new(
                        head_pos.x + rng.random_range(-0.5..0.5),
                        head_pos.y + rng.random_range(-0.5..0.5),
                    );
                }
                let p = &people[i];
                if (tick + p.phase).is_multiple_of(p.period) {
                    traces.push(ObjectId(i as u32), tick, p.position);
                }
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::dataset_stats;

    fn cfg() -> GeoLifeConfig {
        GeoLifeConfig {
            num_objects: 50,
            num_ticks: 60,
            seed: 3,
            ..GeoLifeConfig::default()
        }
    }

    #[test]
    fn sampling_is_irregular() {
        let traces = GeoLifeGenerator::new(cfg()).traces();
        let stats = dataset_stats(&traces);
        assert_eq!(stats.trajectories, 50);
        // With periods 1..=5 the location count is well below dense.
        assert!(stats.locations < 50 * 60);
        assert!(stats.locations > 50 * 60 / 6);
    }

    #[test]
    fn knot_members_report_in_lockstep_positions() {
        let c = cfg();
        let gen = GeoLifeGenerator::new(c.clone());
        let traces = gen.traces();
        // First knot: objects 0..group_size share cadence; whenever both 0
        // and 1 report at the same tick they are within 1.0 of each other.
        let t0 = traces.trace(ObjectId(0)).unwrap();
        let t1 = traces.trace(ObjectId(1)).unwrap();
        let mut shared = 0;
        for &(tick, p0) in t0 {
            if let Some(&(_, p1)) = t1.iter().find(|&&(tk, _)| tk == tick) {
                shared += 1;
                assert!(p0.chebyshev(&p1) <= 1.2, "knot split at tick {tick}");
            }
        }
        assert!(shared > 5, "knot members shared only {shared} ticks");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GeoLifeGenerator::new(cfg()).traces();
        let b = GeoLifeGenerator::new(cfg()).traces();
        assert_eq!(a.trace(ObjectId(9)).unwrap(), b.trace(ObjectId(9)).unwrap());
    }

    #[test]
    fn positions_stay_in_arena() {
        let c = cfg();
        let traces = GeoLifeGenerator::new(c.clone()).traces();
        for (_, trace) in traces.iter() {
            for &(_, p) in trace {
                assert!(p.x >= -1.0 && p.x <= c.area + 1.0);
                assert!(p.y >= -1.0 && p.y <= c.area + 1.0);
            }
        }
    }
}
