//! Trace containers and conversions to the pipeline's input formats.

use icpe_types::{ObjectId, Point, RawRecord, Snapshot, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// A set of discrete-time traces: per object, the (tick, location) samples
/// it reported, in increasing tick order.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: BTreeMap<ObjectId, Vec<(u32, Point)>>,
}

impl TraceSet {
    /// An empty trace set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample; ticks per object must increase.
    pub fn push(&mut self, id: ObjectId, tick: u32, location: Point) {
        let trace = self.traces.entry(id).or_default();
        if let Some(&(last, _)) = trace.last() {
            assert!(tick > last, "trace ticks must be strictly increasing");
        }
        trace.push((tick, location));
    }

    /// Number of trajectories.
    pub fn num_trajectories(&self) -> usize {
        self.traces.len()
    }

    /// Total number of samples across all trajectories.
    pub fn num_locations(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// The trace of one object.
    pub fn trace(&self, id: ObjectId) -> Option<&[(u32, Point)]> {
        self.traces.get(&id).map(Vec::as_slice)
    }

    /// Iterates `(id, samples)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &[(u32, Point)])> {
        self.traces.iter().map(|(&id, v)| (id, v.as_slice()))
    }

    /// Converts into a dense snapshot sequence covering `[0, max_tick]`
    /// (ticks without reports become empty snapshots).
    pub fn to_snapshots(&self) -> Vec<Snapshot> {
        let max_tick = self
            .traces
            .values()
            .filter_map(|t| t.last().map(|&(tick, _)| tick))
            .max();
        let Some(max_tick) = max_tick else {
            return Vec::new();
        };
        let mut snaps: Vec<Snapshot> = (0..=max_tick)
            .map(|t| Snapshot::new(Timestamp(t)))
            .collect();
        for (&id, trace) in &self.traces {
            let mut last: Option<u32> = None;
            for &(tick, loc) in trace {
                snaps[tick as usize].push(id, loc, last.map(Timestamp));
                last = Some(tick);
            }
        }
        snaps
    }

    /// Flattens into discretized GPS records carrying the per-trajectory
    /// *last time* links (what a positioning device reports), ordered by
    /// time then id. The input format of the streaming pipeline.
    pub fn to_gps_records(&self) -> Vec<icpe_types::GpsRecord> {
        let mut out: Vec<icpe_types::GpsRecord> = Vec::with_capacity(self.num_locations());
        for (&id, trace) in &self.traces {
            let mut last: Option<u32> = None;
            for &(tick, loc) in trace {
                out.push(icpe_types::GpsRecord::new(
                    id,
                    loc,
                    Timestamp(tick),
                    last.map(Timestamp),
                ));
                last = Some(tick);
            }
        }
        out.sort_by(|a, b| a.time.cmp(&b.time).then(a.id.cmp(&b.id)));
        out
    }

    /// Flattens into raw GPS records with real clock times
    /// (`tick × interval` seconds), ordered by time then id.
    pub fn to_records(&self, interval: f64) -> Vec<RawRecord> {
        let mut out: Vec<RawRecord> = self
            .traces
            .iter()
            .flat_map(|(&id, trace)| {
                trace
                    .iter()
                    .map(move |&(tick, loc)| RawRecord::new(id, loc, tick as f64 * interval))
            })
            .collect();
        out.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.id.cmp(&b.id)));
        out
    }
}

/// Controls the out-of-order record injection of [`to_raw_records`].
#[derive(Debug, Clone, Copy)]
pub struct DisorderConfig {
    /// Probability that a record is delayed.
    pub delay_probability: f64,
    /// Maximum delay, in positions within the stream.
    pub max_displacement: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DisorderConfig {
    fn default() -> Self {
        DisorderConfig {
            delay_probability: 0.1,
            max_displacement: 32,
            seed: 0xD15C0,
        }
    }
}

/// Produces the raw record stream with bounded out-of-order arrival — the
/// adversarial input for the §4 time-alignment mechanism. Per-object order
/// is preserved only in *time*, not in arrival position.
pub fn to_raw_records(
    traces: &TraceSet,
    interval: f64,
    disorder: DisorderConfig,
) -> Vec<RawRecord> {
    let mut records = traces.to_records(interval);
    let mut rng = StdRng::seed_from_u64(disorder.seed);
    // Fisher–Yates-style bounded displacement: walk backwards, occasionally
    // swapping a record with a later position.
    let n = records.len();
    for i in 0..n {
        if rng.random_bool(disorder.delay_probability) {
            let j = (i + 1 + rng.random_range(0..disorder.max_displacement)).min(n - 1);
            records.swap(i, j);
        }
    }
    records
}

/// Bounded out-of-order shuffling of a discretized record stream (same
/// scheme as [`to_raw_records`], for pipeline inputs).
pub fn disorder_gps(
    mut records: Vec<icpe_types::GpsRecord>,
    disorder: DisorderConfig,
) -> Vec<icpe_types::GpsRecord> {
    let mut rng = StdRng::seed_from_u64(disorder.seed);
    let n = records.len();
    for i in 0..n {
        if rng.random_bool(disorder.delay_probability) {
            let j = (i + 1 + rng.random_range(0..disorder.max_displacement)).min(n - 1);
            records.swap(i, j);
        }
    }
    records
}

/// Table-2-style dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub trajectories: usize,
    /// Total number of reported locations.
    pub locations: usize,
    /// Number of distinct snapshot ticks spanned.
    pub snapshots: usize,
    /// Approximate storage size in bytes (24 bytes per record: id + x + y +
    /// time, the paper's CSV-scale accounting).
    pub storage_bytes: usize,
}

/// Computes dataset statistics for a trace set.
pub fn dataset_stats(traces: &TraceSet) -> DatasetStats {
    let locations = traces.num_locations();
    let snapshots = traces
        .iter()
        .filter_map(|(_, t)| t.last().map(|&(tick, _)| tick as usize + 1))
        .max()
        .unwrap_or(0);
    DatasetStats {
        trajectories: traces.num_trajectories(),
        locations,
        snapshots,
        storage_bytes: locations * 24,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> TraceSet {
        let mut t = TraceSet::new();
        t.push(ObjectId(1), 0, Point::new(0.0, 0.0));
        t.push(ObjectId(1), 1, Point::new(1.0, 0.0));
        t.push(ObjectId(1), 3, Point::new(2.0, 0.0)); // skips tick 2
        t.push(ObjectId(2), 1, Point::new(5.0, 5.0));
        t
    }

    #[test]
    fn snapshots_are_dense_and_carry_last_time() {
        let snaps = sample_traces().to_snapshots();
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[0].len(), 1);
        assert_eq!(snaps[1].len(), 2);
        assert!(snaps[2].is_empty());
        assert_eq!(snaps[3].len(), 1);
        // last_time chain of object 1: None, 0, 1.
        assert_eq!(snaps[0].entries[0].last_time, None);
        let o1_at_1 = snaps[1]
            .entries
            .iter()
            .find(|e| e.id == ObjectId(1))
            .unwrap();
        assert_eq!(o1_at_1.last_time, Some(Timestamp(0)));
        assert_eq!(snaps[3].entries[0].last_time, Some(Timestamp(1)));
    }

    #[test]
    fn records_are_time_ordered() {
        let recs = sample_traces().to_records(5.0);
        assert_eq!(recs.len(), 4);
        assert!(recs.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(recs[0].time, 0.0);
        assert_eq!(recs.last().unwrap().time, 15.0);
    }

    #[test]
    fn disorder_preserves_multiset() {
        let traces = sample_traces();
        let ordered = traces.to_records(1.0);
        let disordered = to_raw_records(
            &traces,
            1.0,
            DisorderConfig {
                delay_probability: 0.9,
                max_displacement: 3,
                seed: 42,
            },
        );
        assert_eq!(ordered.len(), disordered.len());
        let key = |r: &RawRecord| (r.id.0, (r.time * 1000.0) as i64);
        let mut a: Vec<_> = ordered.iter().map(key).collect();
        let mut b: Vec<_> = disordered.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_count_correctly() {
        let stats = dataset_stats(&sample_traces());
        assert_eq!(stats.trajectories, 2);
        assert_eq!(stats.locations, 4);
        assert_eq!(stats.snapshots, 4);
        assert_eq!(stats.storage_bytes, 96);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_trace_panics() {
        let mut t = TraceSet::new();
        t.push(ObjectId(1), 5, Point::new(0.0, 0.0));
        t.push(ObjectId(1), 5, Point::new(1.0, 0.0));
    }

    #[test]
    fn empty_trace_set() {
        let t = TraceSet::new();
        assert!(t.to_snapshots().is_empty());
        assert_eq!(dataset_stats(&t).snapshots, 0);
    }
}
