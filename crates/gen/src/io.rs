//! CSV import/export for trajectory data.
//!
//! The bridge to real datasets: GeoLife, taxi feeds, and most trajectory
//! corpora distribute as delimited text. Two schemas are supported:
//!
//! * **discrete** — `id,tick,x,y`: already discretized ticks ([`TraceSet`]);
//! * **raw** — `id,time,x,y`: clock-time seconds ([`RawRecord`]s), to be
//!   discretized by [`icpe_types::Discretizer`].
//!
//! Plain `std` I/O; no CSV crate needed for four numeric columns.

use crate::stream::TraceSet;
use icpe_types::{ObjectId, Point, RawRecord};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "csv parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a trace set as `id,tick,x,y` lines (with header).
pub fn write_traces(traces: &TraceSet, out: impl Write) -> Result<(), CsvError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "id,tick,x,y")?;
    for (id, trace) in traces.iter() {
        for &(tick, p) in trace {
            writeln!(w, "{},{},{},{}", id.raw(), tick, p.x, p.y)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads `id,tick,x,y` lines (optional header) into a trace set.
/// Rows may be in any order; they are sorted per trajectory.
pub fn read_traces(input: impl Read) -> Result<TraceSet, CsvError> {
    let mut rows: Vec<(u32, u32, f64, f64)> = Vec::new();
    for (lineno, line) in BufReader::new(input).lines().enumerate() {
        let line = line?;
        if let Some(row) = parse_row(&line, lineno + 1, "tick")? {
            rows.push(row);
        }
    }
    rows.sort_by_key(|&(id, tick, _, _)| (id, tick));
    let mut traces = TraceSet::new();
    let mut last: Option<(u32, u32)> = None;
    for (id, tick, x, y) in rows {
        if last == Some((id, tick)) {
            continue; // duplicate (id, tick) rows: keep the first
        }
        last = Some((id, tick));
        traces.push(ObjectId(id), tick, Point::new(x, y));
    }
    Ok(traces)
}

/// Writes raw records as `id,time,x,y` lines (with header).
pub fn write_raw_records(records: &[RawRecord], out: impl Write) -> Result<(), CsvError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "id,time,x,y")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{}",
            r.id.raw(),
            r.time,
            r.location.x,
            r.location.y
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads `id,time,x,y` lines (optional header) into raw records, preserving
/// row order (the arrival order of the stream).
pub fn read_raw_records(input: impl Read) -> Result<Vec<RawRecord>, CsvError> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(input).lines().enumerate() {
        let line = line?;
        if let Some((id, _, x, y)) = parse_row_raw(&line, lineno + 1)? {
            // parse_row_raw keeps time as f64 in its second slot.
            let time: f64 = field(&line, 1, lineno + 1)?;
            out.push(RawRecord::new(ObjectId(id), Point::new(x, y), time));
        }
    }
    Ok(out)
}

/// Parses one `id,<u32>,x,y` row; `None` for blank lines and the header.
fn parse_row(
    line: &str,
    lineno: usize,
    second_col: &str,
) -> Result<Option<(u32, u32, f64, f64)>, CsvError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with("id,") || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split(',');
    let id: u32 = next_field(&mut parts, "id", lineno)?;
    let second: u32 = next_field(&mut parts, second_col, lineno)?;
    let x: f64 = next_field(&mut parts, "x", lineno)?;
    let y: f64 = next_field(&mut parts, "y", lineno)?;
    Ok(Some((id, second, x, y)))
}

/// Like [`parse_row`] but tolerates a fractional second column.
fn parse_row_raw(line: &str, lineno: usize) -> Result<Option<(u32, f64, f64, f64)>, CsvError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with("id,") || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split(',');
    let id: u32 = next_field(&mut parts, "id", lineno)?;
    let time: f64 = next_field(&mut parts, "time", lineno)?;
    let x: f64 = next_field(&mut parts, "x", lineno)?;
    let y: f64 = next_field(&mut parts, "y", lineno)?;
    Ok(Some((id, time, x, y)))
}

fn next_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    name: &str,
    lineno: usize,
) -> Result<T, CsvError> {
    let raw = parts
        .next()
        .ok_or_else(|| CsvError::Parse(lineno, format!("missing column {name}")))?;
    raw.trim()
        .parse()
        .map_err(|_| CsvError::Parse(lineno, format!("bad {name}: {raw:?}")))
}

fn field<T: std::str::FromStr>(line: &str, idx: usize, lineno: usize) -> Result<T, CsvError> {
    let raw = line
        .trim()
        .split(',')
        .nth(idx)
        .ok_or_else(|| CsvError::Parse(lineno, format!("missing column {idx}")))?;
    raw.trim()
        .parse()
        .map_err(|_| CsvError::Parse(lineno, format!("bad column {idx}: {raw:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        let mut t = TraceSet::new();
        t.push(ObjectId(1), 0, Point::new(0.5, -1.25));
        t.push(ObjectId(1), 2, Point::new(1.5, 0.0));
        t.push(ObjectId(7), 1, Point::new(10.0, 10.0));
        t
    }

    #[test]
    fn traces_round_trip() {
        let mut buf = Vec::new();
        write_traces(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("id,tick,x,y\n"));
        let back = read_traces(buf.as_slice()).unwrap();
        assert_eq!(back.num_trajectories(), 2);
        assert_eq!(back.trace(ObjectId(1)), sample().trace(ObjectId(1)));
        assert_eq!(back.trace(ObjectId(7)), sample().trace(ObjectId(7)));
    }

    #[test]
    fn raw_records_round_trip() {
        let records = vec![
            RawRecord::new(ObjectId(2), Point::new(1.0, 2.0), 0.5),
            RawRecord::new(ObjectId(1), Point::new(3.0, 4.0), 1.25),
        ];
        let mut buf = Vec::new();
        write_raw_records(&records, &mut buf).unwrap();
        let back = read_raw_records(buf.as_slice()).unwrap();
        assert_eq!(back, records, "order must be preserved");
    }

    #[test]
    fn reader_tolerates_header_blank_lines_and_comments() {
        let text = "id,tick,x,y\n\n# comment\n3,1,2.0,3.0\n3,0,1.0,1.0\n";
        let traces = read_traces(text.as_bytes()).unwrap();
        // Out-of-order rows are sorted per trajectory.
        assert_eq!(
            traces.trace(ObjectId(3)).unwrap(),
            &[(0, Point::new(1.0, 1.0)), (1, Point::new(2.0, 3.0))]
        );
    }

    #[test]
    fn duplicate_rows_keep_first() {
        let text = "1,0,1.0,1.0\n1,0,9.0,9.0\n";
        let traces = read_traces(text.as_bytes()).unwrap();
        assert_eq!(traces.trace(ObjectId(1)).unwrap().len(), 1);
        assert_eq!(
            traces.trace(ObjectId(1)).unwrap()[0].1,
            Point::new(1.0, 1.0)
        );
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        let err = read_traces("1,0,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse(1, _)), "{err}");
        let err = read_traces("1,zero,1.0,2.0\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1") && msg.contains("tick"), "{msg}");
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("icpe_io_test.csv");
        write_traces(&sample(), std::fs::File::create(&path).unwrap()).unwrap();
        let back = read_traces(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.num_locations(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
