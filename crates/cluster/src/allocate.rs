//! **GridAllocate** — Algorithm 1 of the paper.
//!
//! For every location of a snapshot, emit one *data object* for its home
//! cell and *query objects* for the other cells that may hold join partners.
//! With Lemma 1 only the cells intersecting the **upper half** of the range
//! region are probed; join symmetry recovers the lower half without
//! duplicate work.

use crate::gridobject::GridObject;
use icpe_index::{Grid, RefinementTree};
use icpe_types::{ObjectId, Snapshot, Timestamp};
use icpe_types::{Point, Rect};

/// Algorithm 1: allocates a snapshot's locations to grid cells using the
/// Lemma-1 (upper-half) replication scheme.
pub fn grid_allocate(snapshot: &Snapshot, grid: &Grid, eps: f64) -> Vec<GridObject> {
    allocate_impl(snapshot, grid, eps, false)
}

/// The full-region variant (no Lemma 1): query objects are emitted for every
/// cell intersecting the complete range region. Used by the SRJ baseline and
/// by the Lemma-1 ablation bench.
pub fn grid_allocate_full(snapshot: &Snapshot, grid: &Grid, eps: f64) -> Vec<GridObject> {
    allocate_impl(snapshot, grid, eps, true)
}

fn allocate_impl(snapshot: &Snapshot, grid: &Grid, eps: f64, full: bool) -> Vec<GridObject> {
    let mut out = Vec::with_capacity(snapshot.len() * 2);
    for entry in &snapshot.entries {
        allocate_one(
            entry.id,
            entry.location,
            snapshot.time,
            grid,
            eps,
            full,
            &mut out,
        );
    }
    out
}

/// Allocates a single location; exposed for the streaming operator, which
/// processes record-at-a-time.
pub fn allocate_one(
    id: ObjectId,
    location: Point,
    time: Timestamp,
    grid: &Grid,
    eps: f64,
    full: bool,
    out: &mut Vec<GridObject>,
) {
    let home = grid.key_of(location);
    out.push(GridObject::data(home, id, location, time));
    let keys = if full {
        grid.full_query_keys(location, eps)
    } else {
        grid.lemma1_query_keys(location, eps)
    };
    for key in keys {
        out.push(GridObject::query(key, id, location, time));
    }
}

/// Re-routes base-grid objects through a [`RefinementTree`]: objects whose
/// cell is unrefined pass through untouched, objects landing in a refined
/// base cell are expanded onto its leaf sub-cells with ε-padded replication
/// at the sub-cell borders.
///
/// The upstream allocator ([`allocate_one`]) always emits at base-cell
/// granularity — the refinement decision lives with the balancer downstream,
/// so this runs at the snapshot-merge finalizer strictly between two windows
/// (like routing migrations). Per object:
///
/// * **data** in a refined base → one data object for its home *leaf*, plus
///   query objects for every sibling leaf intersecting the padded range
///   region (upper half under Lemma 1) — the replicas that used to be
///   implicit in same-cell Lemma-2 probing;
/// * **query** targeting a refined base → query objects for the leaves of
///   that base intersecting the padded region (leaves the region misses
///   cannot hold ε-partners and are pruned — the refinement win).
///
/// For any pair within ε the same case analysis as at base-cell borders
/// applies at sub-cell borders, so the candidate pair set is unchanged
/// (`prop_index::refined_candidate_pairs_equal_unrefined`).
pub fn refine_expand(
    objects: Vec<GridObject>,
    grid: &Grid,
    tree: &RefinementTree,
    eps: f64,
    full: bool,
) -> Vec<GridObject> {
    if tree.is_empty() {
        return objects;
    }
    let mut out = Vec::with_capacity(objects.len());
    for o in objects {
        let depth = tree.depth(o.key);
        if depth == 0 {
            out.push(o);
            continue;
        }
        let region = if full {
            Rect::padded_range_region(o.location, eps)
        } else {
            Rect::padded_upper_range_region(o.location, eps)
        };
        if o.is_query {
            for leaf in grid.leaves_in_rect(o.key, depth, &region) {
                out.push(GridObject::query(leaf, o.id, o.location, o.time));
            }
        } else {
            let home_leaf = grid.leaf_of(o.key, depth, o.location);
            out.push(GridObject::data(home_leaf, o.id, o.location, o.time));
            for leaf in grid.leaves_in_rect(o.key, depth, &region) {
                if leaf != home_leaf {
                    out.push(GridObject::query(leaf, o.id, o.location, o.time));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Snapshot;

    fn snapshot_of(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    #[test]
    fn each_location_gets_exactly_one_data_object() {
        let s = snapshot_of(&[(1, 0.5, 0.5), (2, 5.5, 5.5), (3, 0.6, 0.6)]);
        let grid = Grid::new(1.0);
        let objs = grid_allocate(&s, &grid, 0.3);
        let data: Vec<_> = objs.iter().filter(|o| !o.is_query).collect();
        assert_eq!(data.len(), 3);
        for d in data {
            assert_eq!(d.key, grid.key_of(d.location));
        }
    }

    #[test]
    fn query_objects_never_target_the_home_cell() {
        let s = snapshot_of(&[(1, 0.95, 0.95)]);
        let grid = Grid::new(1.0);
        for o in grid_allocate(&s, &grid, 0.2) {
            if o.is_query {
                assert_ne!(o.key, grid.key_of(o.location));
            }
        }
    }

    #[test]
    fn lemma1_emits_at_most_upper_half_cells() {
        // Centered point, eps < cell width: upper half touches ≤ 5 foreign
        // cells wait — at most the 3 cells above + 2 beside... with eps less
        // than a cell width the upper region spans ≤ 2 rows × ≤ 3 columns = 6
        // cells including home → ≤ 5 query objects; the full variant spans
        // ≤ 9 cells → ≤ 8 query objects.
        let s = snapshot_of(&[(1, 10.5, 10.5)]);
        let grid = Grid::new(1.0);
        let lemma1 = grid_allocate(&s, &grid, 0.9);
        let full = grid_allocate_full(&s, &grid, 0.9);
        let q1 = lemma1.iter().filter(|o| o.is_query).count();
        let qf = full.iter().filter(|o| o.is_query).count();
        assert!(q1 <= 5, "lemma1 replicated to {q1} cells");
        assert!(qf <= 8, "full replicated to {qf} cells");
        assert!(q1 < qf, "Lemma 1 must replicate strictly less here");
    }

    #[test]
    fn replication_grows_with_eps() {
        let s = snapshot_of(&[(1, 50.0, 50.0)]);
        let grid = Grid::new(1.0);
        let small = grid_allocate(&s, &grid, 0.5).len();
        let large = grid_allocate(&s, &grid, 3.5).len();
        assert!(large > small);
    }

    #[test]
    fn empty_snapshot_allocates_nothing() {
        let s = Snapshot::new(Timestamp(4));
        let grid = Grid::new(1.0);
        assert!(grid_allocate(&s, &grid, 1.0).is_empty());
    }

    #[test]
    fn time_is_propagated() {
        let s = Snapshot::from_pairs(Timestamp(9), [(ObjectId(1), Point::new(0.0, 0.0))]);
        let grid = Grid::new(1.0);
        for o in grid_allocate(&s, &grid, 2.0) {
            assert_eq!(o.time, Timestamp(9));
        }
    }

    #[test]
    fn refine_expand_is_identity_on_an_empty_tree() {
        let s = snapshot_of(&[(1, 0.5, 0.5), (2, 5.5, 5.5)]);
        let grid = Grid::new(1.0);
        let objs = grid_allocate(&s, &grid, 0.9);
        let tree = RefinementTree::new();
        assert_eq!(refine_expand(objs.clone(), &grid, &tree, 0.9, false), objs);
    }

    #[test]
    fn refine_expand_rekeys_data_into_leaves_with_sibling_queries() {
        let grid = Grid::new(4.0);
        let mut tree = RefinementTree::new();
        tree.split(icpe_index::GridKey::new(0, 0));
        // Two objects in base (0,0), sub-cell width 2: u in leaf (0,0)@1,
        // v in leaf (1,1)@1, Chebyshev distance 1.0 ≤ eps.
        let s = snapshot_of(&[(1, 1.5, 1.5), (2, 2.5, 2.5)]);
        let objs = refine_expand(grid_allocate(&s, &grid, 1.0), &grid, &tree, 1.0, false);
        // Every emitted key lives at the base's depth (no level-0 key for
        // the refined base survives).
        for o in &objs {
            if o.key.base_cell() == icpe_index::GridKey::new(0, 0) {
                assert_eq!(o.key.level, 1, "object {o:?} not re-keyed");
            }
        }
        // The pair must meet in some cell: u's data leaf receives v (as
        // data or query) or vice versa.
        let meets = |a: u32, b: u32| {
            objs.iter()
                .filter(|o| o.id == ObjectId(a) && !o.is_query)
                .any(|d| objs.iter().any(|o| o.id == ObjectId(b) && o.key == d.key))
        };
        assert!(
            meets(1, 2) || meets(2, 1),
            "pair lost by refinement: {objs:?}"
        );
    }

    #[test]
    fn refine_expand_prunes_leaves_outside_the_range_region() {
        let grid = Grid::new(8.0);
        let mut tree = RefinementTree::new();
        tree.split(icpe_index::GridKey::new(0, 0));
        tree.split(icpe_index::GridKey::new(0, 0)); // depth 2: 16 leaves of width 2
                                                    // A point near the cell's lower-left corner with a small eps: its
                                                    // replicas must not cover the far leaves of the refined base.
        let s = snapshot_of(&[(1, 0.5, 0.5)]);
        let objs = refine_expand(grid_allocate(&s, &grid, 0.4), &grid, &tree, 0.4, false);
        let in_base: Vec<_> = objs
            .iter()
            .filter(|o| o.key.base_cell() == icpe_index::GridKey::new(0, 0))
            .collect();
        assert!(
            in_base.len() < 16,
            "expansion must prune leaves the region misses: {in_base:?}"
        );
        assert_eq!(
            in_base.iter().filter(|o| !o.is_query).count(),
            1,
            "exactly one data object"
        );
    }
}
