//! DBSCAN over the neighbor-pair stream (§5.3).
//!
//! Once the range join has produced every ε-neighbor pair, DBSCAN reduces to
//! linear bookkeeping (the paper's O(n) claim): neighbor counts identify
//! **core points** (Definition 8), the union-find closure over core–core
//! edges forms the cluster skeletons, and every **density-reachable border
//! point** (Definition 9) attaches to an adjacent core's cluster. Points in
//! no cluster are noise and are omitted.

use crate::query::NeighborPair;
use icpe_types::{Cluster, ClusterSnapshot, DbscanParams, ObjectId, Timestamp};
use std::collections::HashMap;

/// The clustering outcome, including per-point roles (useful for tests and
/// diagnostics; the pipeline only forwards [`DbscanOutcome::snapshot`]).
#[derive(Debug)]
pub struct DbscanOutcome {
    /// Clusters of core + border points.
    pub snapshot: ClusterSnapshot,
    /// Ids of core points.
    pub cores: Vec<ObjectId>,
    /// Ids of border (density-reachable, non-core) points.
    pub borders: Vec<ObjectId>,
    /// Ids of noise points.
    pub noise: Vec<ObjectId>,
}

/// Runs DBSCAN at time `time` over `objects` (all ids present in the
/// snapshot) given the deduplicated neighbor `pairs` of the range join.
pub fn dbscan_from_pairs(
    time: Timestamp,
    objects: &[ObjectId],
    pairs: &[NeighborPair],
    params: &DbscanParams,
) -> DbscanOutcome {
    // Dense indexing of the ids.
    let mut index: HashMap<ObjectId, usize> = HashMap::with_capacity(objects.len());
    for (i, &id) in objects.iter().enumerate() {
        index.insert(id, i);
    }
    let n = objects.len();
    let mut degree = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(pairs.len());
    for &(a, b) in pairs {
        let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) else {
            debug_assert!(false, "pair references object missing from snapshot");
            continue;
        };
        if ia == ib {
            continue;
        }
        degree[ia] += 1;
        degree[ib] += 1;
        edges.push((ia, ib));
    }

    let self_count = usize::from(params.count_self);
    let is_core: Vec<bool> = degree
        .iter()
        .map(|&d| d + self_count >= params.min_pts)
        .collect();

    // Union the core-core edges.
    let mut dsu = Dsu::new(n);
    for &(a, b) in &edges {
        if is_core[a] && is_core[b] {
            dsu.union(a, b);
        }
    }

    // Attach borders: a non-core adjacent to ≥1 core joins the cluster of
    // its smallest-id core neighbor (deterministic tie-break).
    let mut border_root: Vec<Option<usize>> = vec![None; n];
    for &(a, b) in &edges {
        for (x, y) in [(a, b), (b, a)] {
            if !is_core[x] && is_core[y] {
                let better = match border_root[x] {
                    None => true,
                    Some(curr) => objects[y] < objects[curr],
                };
                if better {
                    border_root[x] = Some(y);
                }
            }
        }
    }

    // Gather clusters.
    let mut groups: HashMap<usize, Vec<ObjectId>> = HashMap::new();
    let mut cores = Vec::new();
    let mut borders = Vec::new();
    let mut noise = Vec::new();
    for i in 0..n {
        if is_core[i] {
            groups.entry(dsu.find(i)).or_default().push(objects[i]);
            cores.push(objects[i]);
        } else if let Some(core) = border_root[i] {
            groups.entry(dsu.find(core)).or_default().push(objects[i]);
            borders.push(objects[i]);
        } else {
            noise.push(objects[i]);
        }
    }
    let mut snapshot = ClusterSnapshot {
        time,
        clusters: groups.into_values().map(Cluster::new).collect(),
    };
    snapshot.normalize();
    cores.sort_unstable();
    borders.sort_unstable();
    noise.sort_unstable();
    DbscanOutcome {
        snapshot,
        cores,
        borders,
        noise,
    }
}

/// Union-find with path halving and union by size.
#[derive(Debug)]
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    fn ids(v: &[u32]) -> Vec<ObjectId> {
        v.iter().copied().map(ObjectId).collect()
    }

    fn params(min_pts: usize) -> DbscanParams {
        DbscanParams::new(1.0, min_pts).unwrap()
    }

    #[test]
    fn chain_of_cores_forms_one_cluster() {
        // 1-2-3-4 path; minPts=2 with count_self → degree ≥ 1 makes core.
        let objects = ids(&[1, 2, 3, 4]);
        let pairs = vec![(oid(1), oid(2)), (oid(2), oid(3)), (oid(3), oid(4))];
        let out = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &params(2));
        assert_eq!(out.snapshot.clusters.len(), 1);
        assert_eq!(out.snapshot.clusters[0].members(), ids(&[1, 2, 3, 4]));
        assert_eq!(out.cores.len(), 4);
        assert!(out.noise.is_empty());
    }

    #[test]
    fn border_points_attach_to_core_cluster() {
        // Star: center 1 adjacent to 2,3,4 (degree 3); leaves degree 1.
        // minPts = 4 (count_self): center core (3+1 ≥ 4), leaves border.
        let objects = ids(&[1, 2, 3, 4]);
        let pairs = vec![(oid(1), oid(2)), (oid(1), oid(3)), (oid(1), oid(4))];
        let out = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &params(4));
        assert_eq!(out.cores, ids(&[1]));
        assert_eq!(out.borders, ids(&[2, 3, 4]));
        assert_eq!(out.snapshot.clusters.len(), 1);
        assert_eq!(out.snapshot.clusters[0].members(), ids(&[1, 2, 3, 4]));
    }

    #[test]
    fn sparse_points_are_noise() {
        let objects = ids(&[1, 2, 3]);
        let pairs = vec![(oid(1), oid(2))];
        let out = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &params(3));
        assert!(out.snapshot.clusters.is_empty());
        assert_eq!(out.noise, ids(&[1, 2, 3]));
    }

    #[test]
    fn two_separate_clusters() {
        let objects = ids(&[1, 2, 3, 10, 11, 12]);
        let pairs = vec![
            (oid(1), oid(2)),
            (oid(2), oid(3)),
            (oid(1), oid(3)),
            (oid(10), oid(11)),
            (oid(11), oid(12)),
            (oid(10), oid(12)),
        ];
        let out = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &params(3));
        assert_eq!(out.snapshot.clusters.len(), 2);
        assert_eq!(out.snapshot.clusters[0].members(), ids(&[1, 2, 3]));
        assert_eq!(out.snapshot.clusters[1].members(), ids(&[10, 11, 12]));
    }

    #[test]
    fn border_between_two_clusters_joins_exactly_one() {
        // Cores {1,2} and {10,11} (triangles), border 5 adjacent to a core in
        // each; it must appear in exactly one cluster (smallest core id wins).
        let objects = ids(&[1, 2, 3, 5, 10, 11, 12]);
        let pairs = vec![
            (oid(1), oid(2)),
            (oid(2), oid(3)),
            (oid(1), oid(3)),
            (oid(10), oid(11)),
            (oid(11), oid(12)),
            (oid(10), oid(12)),
            (oid(1), oid(5)),
            (oid(10), oid(5)),
        ];
        let mut p = params(4);
        p.min_pts = 4; // degree ≥ 3 for core: 1,2? deg(1)=3 ✓ core, deg(2)=2+1=3 <4 …
        let out = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &p);
        let appearances: usize = out
            .snapshot
            .clusters
            .iter()
            .filter(|c| c.contains(oid(5)))
            .count();
        assert!(appearances <= 1, "border point in {appearances} clusters");
    }

    #[test]
    fn count_self_convention_changes_core_threshold() {
        let objects = ids(&[1, 2]);
        let pairs = vec![(oid(1), oid(2))];
        // minPts = 2 with self-count: both core.
        let with_self = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &params(2));
        assert_eq!(with_self.cores.len(), 2);
        // Without self-count: degree 1 < 2 → no cores.
        let p = params(2).with_count_self(false);
        let without = dbscan_from_pairs(Timestamp(0), &objects, &pairs, &p);
        assert!(without.cores.is_empty());
    }

    #[test]
    fn empty_input() {
        let out = dbscan_from_pairs(Timestamp(3), &[], &[], &params(2));
        assert!(out.snapshot.clusters.is_empty());
        assert_eq!(out.snapshot.time, Timestamp(3));
    }

    #[test]
    fn min_pts_one_makes_every_point_a_singleton_cluster() {
        let objects = ids(&[4, 7]);
        let out = dbscan_from_pairs(Timestamp(0), &objects, &[], &params(1));
        assert_eq!(out.snapshot.clusters.len(), 2);
        assert_eq!(out.cores.len(), 2);
    }
}
