//! `GridObject` — Definition 12 of the paper.

use icpe_index::GridKey;
use icpe_types::{ObjectId, Point, Timestamp};

/// A replicated location routed to one grid cell (Definition 12).
///
/// * If `is_query` is `false`, this is a **data object**: its location is
///   inserted into the cell's R-tree.
/// * If `is_query` is `true`, this is a **query object**: the cell might
///   contain range-query results for it, so it probes the R-tree but is not
///   inserted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridObject {
    /// The cell this replica is routed to (the partition key).
    pub key: GridKey,
    /// Query flag (the paper's `flag`).
    pub is_query: bool,
    /// The owning trajectory.
    pub id: ObjectId,
    /// The actual position.
    pub location: Point,
    /// The snapshot this replica belongs to.
    pub time: Timestamp,
}

impl GridObject {
    /// Creates a data object.
    pub fn data(key: GridKey, id: ObjectId, location: Point, time: Timestamp) -> Self {
        GridObject {
            key,
            is_query: false,
            id,
            location,
            time,
        }
    }

    /// Creates a query object.
    pub fn query(key: GridKey, id: ObjectId, location: Point, time: Timestamp) -> Self {
        GridObject {
            key,
            is_query: true,
            id,
            location,
            time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flag() {
        let k = GridKey::new(1, 2);
        let d = GridObject::data(k, ObjectId(7), Point::new(1.0, 2.0), Timestamp(3));
        assert!(!d.is_query);
        let q = GridObject::query(k, ObjectId(7), Point::new(1.0, 2.0), Timestamp(3));
        assert!(q.is_query);
        assert_eq!(d.key, q.key);
    }
}
