//! **RJC** — the paper's range-join based clustering method, assembled.
//!
//! GridAllocate (Lemma 1) → per-cell GridQuery (Lemma 2) → GridSync →
//! DBSCAN. This is the engine form that processes one snapshot at a time;
//! the streaming deployment in `icpe-core` runs the same components as
//! pipeline operators across parallel subtasks.

use crate::allocate::grid_allocate;
use crate::dbscan::{dbscan_from_pairs, DbscanOutcome};
use crate::query::{CellQueryEngine, NeighborPair};
use crate::sync::PairCollector;
use crate::SnapshotClusterer;
use icpe_index::{Grid, GridKey};
use icpe_types::{ClusterSnapshot, DbscanParams, DistanceMetric, ObjectId, Snapshot};
use std::collections::HashMap;

/// Configuration and engine for RJC clustering.
#[derive(Debug, Clone)]
pub struct RjcClusterer {
    grid: Grid,
    eps: f64,
    metric: DistanceMetric,
    dbscan: DbscanParams,
}

impl RjcClusterer {
    /// Creates the clusterer. `lg` is the grid cell width, `dbscan.eps` the
    /// join/clustering distance threshold.
    pub fn new(lg: f64, dbscan: DbscanParams, metric: DistanceMetric) -> Self {
        RjcClusterer {
            grid: Grid::new(lg),
            eps: dbscan.eps,
            metric,
            dbscan,
        }
    }

    /// The grid in use.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Computes the exact range join `RJ(S_t, ε)` of one snapshot
    /// (deduplicated, sorted canonical pairs).
    pub fn range_join(&self, snapshot: &Snapshot) -> Vec<NeighborPair> {
        self.range_join_with_stats(snapshot).0
    }

    /// Range join returning `(pairs, duplicate_discoveries)`.
    pub fn range_join_with_stats(&self, snapshot: &Snapshot) -> (Vec<NeighborPair>, usize) {
        let objects = grid_allocate(snapshot, &self.grid, self.eps);
        // Group by cell (the keyed exchange of the streaming deployment).
        let mut cells: HashMap<GridKey, Vec<&crate::gridobject::GridObject>> = HashMap::new();
        for o in &objects {
            cells.entry(o.key).or_default().push(o);
        }
        let mut collector = PairCollector::new();
        let mut scratch: Vec<NeighborPair> = Vec::new();
        for (_, cell_objects) in cells {
            let mut engine = CellQueryEngine::new(self.eps, self.metric);
            scratch.clear();
            for o in cell_objects.iter().filter(|o| !o.is_query) {
                engine.push_data(o.id, o.location, &mut scratch);
            }
            for o in cell_objects.iter().filter(|o| o.is_query) {
                engine.push_query(o.id, o.location, &mut scratch);
            }
            collector.extend(scratch.drain(..));
        }
        let dups = collector.duplicates();
        (collector.into_pairs(), dups)
    }

    /// Full clustering of one snapshot with role details.
    pub fn cluster_detailed(&self, snapshot: &Snapshot) -> DbscanOutcome {
        let pairs = self.range_join(snapshot);
        let ids: Vec<ObjectId> = snapshot.entries.iter().map(|e| e.id).collect();
        dbscan_from_pairs(snapshot.time, &ids, &pairs, &self.dbscan)
    }
}

impl SnapshotClusterer for RjcClusterer {
    fn name(&self) -> &'static str {
        "RJC"
    }

    fn cluster(&self, snapshot: &Snapshot) -> ClusterSnapshot {
        self.cluster_detailed(snapshot).snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_dbscan, naive_range_join};
    use icpe_types::{Point, Timestamp};

    fn snap(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    fn grid_points(n: u32, spread: f64) -> Vec<(u32, f64, f64)> {
        // Deterministic pseudo-random scatter.
        (0..n)
            .map(|i| {
                let x = ((i as u64 * 2654435761) % 1000) as f64 / 1000.0 * spread;
                let y = ((i as u64 * 40503) % 1000) as f64 / 1000.0 * spread;
                (i, x, y)
            })
            .collect()
    }

    #[test]
    fn range_join_matches_naive_on_scatter() {
        let pts = grid_points(300, 50.0);
        let s = snap(&pts);
        for (lg, eps) in [(5.0, 2.0), (1.0, 2.0), (10.0, 0.5), (3.0, 3.0)] {
            let rjc = RjcClusterer::new(
                lg,
                DbscanParams::new(eps, 5).unwrap(),
                DistanceMetric::Chebyshev,
            );
            let got = rjc.range_join(&s);
            let want = naive_range_join(&s, eps, DistanceMetric::Chebyshev);
            assert_eq!(got, want, "lg={lg} eps={eps}");
        }
    }

    #[test]
    fn range_join_matches_naive_under_l1_and_l2() {
        let pts = grid_points(200, 30.0);
        let s = snap(&pts);
        for metric in [DistanceMetric::L1, DistanceMetric::L2] {
            let rjc = RjcClusterer::new(4.0, DbscanParams::new(2.5, 5).unwrap(), metric);
            assert_eq!(rjc.range_join(&s), naive_range_join(&s, 2.5, metric));
        }
    }

    #[test]
    fn clustering_matches_naive_dbscan() {
        let pts = grid_points(250, 25.0);
        let s = snap(&pts);
        let params = DbscanParams::new(1.5, 4).unwrap();
        let rjc = RjcClusterer::new(3.0, params, DistanceMetric::Chebyshev);
        let got = rjc.cluster(&s);
        let want = naive_dbscan(&s, &params, DistanceMetric::Chebyshev);
        assert_eq!(got.clusters.len(), want.clusters.len());
        // Core-point sets must agree exactly; border assignment between
        // multiple adjacent clusters may legitimately differ, so compare the
        // multiset of cluster sizes and the union of members.
        let sizes = |cs: &ClusterSnapshot| {
            let mut v: Vec<usize> = cs.clusters.iter().map(|c| c.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&got), sizes(&want));
        let members = |cs: &ClusterSnapshot| {
            let mut v: Vec<ObjectId> = cs
                .clusters
                .iter()
                .flat_map(|c| c.members().iter().copied())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(members(&got), members(&want));
    }

    #[test]
    fn paper_fig2_time3_cluster() {
        // Figure 2 at time 3: o3..o7 are cores, o2 and o8 density-reachable,
        // forming the single cluster {o2..o8} with minPts = 3.
        // Construct coordinates matching that structure (eps = 1,
        // chebyshev): chain with a dense middle.
        let s = snap(&[
            (2, 0.0, 0.0),
            (3, 1.0, 0.0),
            (4, 1.5, 0.5),
            (5, 2.0, 0.0),
            (6, 2.5, 0.5),
            (7, 3.0, 0.0),
            (8, 4.0, 0.0),
            (1, 9.0, 9.0), // far away
        ]);
        let params = DbscanParams::new(1.0, 3).unwrap();
        let rjc = RjcClusterer::new(1.0, params, DistanceMetric::Chebyshev);
        let out = rjc.cluster_detailed(&s);
        assert_eq!(out.snapshot.clusters.len(), 1);
        let members = out.snapshot.clusters[0].members();
        assert_eq!(
            members,
            (2..=8).map(ObjectId).collect::<Vec<_>>().as_slice()
        );
        assert!(out.noise.contains(&ObjectId(1)));
    }

    #[test]
    fn duplicates_are_bounded_and_results_exact() {
        // Same-row pairs can be discovered twice; the collector must dedupe.
        let s = snap(&[(1, 0.9, 5.0), (2, 1.1, 5.0), (3, 2.9, 5.0), (4, 3.1, 5.0)]);
        let rjc = RjcClusterer::new(
            1.0,
            DbscanParams::new(0.5, 2).unwrap(),
            DistanceMetric::Chebyshev,
        );
        let (pairs, _dups) = rjc.range_join_with_stats(&s);
        assert_eq!(
            pairs,
            vec![(ObjectId(1), ObjectId(2)), (ObjectId(3), ObjectId(4))]
        );
    }

    #[test]
    fn empty_snapshot_clusters_to_nothing() {
        let rjc = RjcClusterer::new(
            1.0,
            DbscanParams::new(0.5, 2).unwrap(),
            DistanceMetric::Chebyshev,
        );
        let cs = rjc.cluster(&Snapshot::new(Timestamp(7)));
        assert!(cs.clusters.is_empty());
        assert_eq!(cs.time, Timestamp(7));
    }
}
