//! **SRJ** — the comparison baseline of §7.1 ([36] extended with DBSCAN).
//!
//! The state-of-the-art distributed streaming range join before this paper:
//! every location is replicated to **all** cells intersecting its full range
//! region (no Lemma 1), each cell **builds its R-tree first and queries
//! afterwards** (no Lemma 2 interleaving), and the resulting duplicates are
//! removed at collection time. Identical output to RJC, strictly more work —
//! which is exactly what Figures 10–11 measure.

use crate::allocate::grid_allocate_full;
use crate::dbscan::dbscan_from_pairs;
use crate::query::{canonical, NeighborPair};
use crate::sync::PairCollector;
use crate::SnapshotClusterer;
use icpe_index::{Grid, GridKey, RTree};
use icpe_types::{ClusterSnapshot, DbscanParams, DistanceMetric, ObjectId, Point, Snapshot};
use std::collections::HashMap;

/// Configuration and engine for the SRJ baseline.
#[derive(Debug, Clone)]
pub struct SrjClusterer {
    grid: Grid,
    eps: f64,
    metric: DistanceMetric,
    dbscan: DbscanParams,
}

impl SrjClusterer {
    /// Creates the baseline clusterer.
    pub fn new(lg: f64, dbscan: DbscanParams, metric: DistanceMetric) -> Self {
        SrjClusterer {
            grid: Grid::new(lg),
            eps: dbscan.eps,
            metric,
            dbscan,
        }
    }

    /// Range join via full replication and build-then-query.
    pub fn range_join(&self, snapshot: &Snapshot) -> Vec<NeighborPair> {
        let objects = grid_allocate_full(snapshot, &self.grid, self.eps);
        let mut cells: HashMap<GridKey, Vec<&crate::gridobject::GridObject>> = HashMap::new();
        for o in &objects {
            cells.entry(o.key).or_default().push(o);
        }
        let mut collector = PairCollector::new();
        for (_, cell_objects) in cells {
            // Build the complete local index first …
            let mut items: Vec<(Point, ObjectId)> = cell_objects
                .iter()
                .filter(|o| !o.is_query)
                .map(|o| (o.location, o.id))
                .collect();
            let tree = RTree::bulk_load_with_max_entries(16, &mut items);
            // … then run every range query against it (data + query objects).
            let mut hits = Vec::new();
            for o in &cell_objects {
                hits.clear();
                tree.query_within(&o.location, self.eps, self.metric, &mut hits);
                for (_, &other) in &hits {
                    if other != o.id {
                        collector.add(canonical(o.id, other));
                    }
                }
            }
        }
        collector.into_pairs()
    }

    /// Full clustering of one snapshot.
    pub fn cluster_snapshot(&self, snapshot: &Snapshot) -> ClusterSnapshot {
        let pairs = self.range_join(snapshot);
        let ids: Vec<ObjectId> = snapshot.entries.iter().map(|e| e.id).collect();
        dbscan_from_pairs(snapshot.time, &ids, &pairs, &self.dbscan).snapshot
    }
}

impl SnapshotClusterer for SrjClusterer {
    fn name(&self) -> &'static str {
        "SRJ"
    }

    fn cluster(&self, snapshot: &Snapshot) -> ClusterSnapshot {
        self.cluster_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_range_join;
    use crate::rjc::RjcClusterer;
    use icpe_types::Timestamp;

    fn snap(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    fn scatter(n: u32, spread: f64) -> Vec<(u32, f64, f64)> {
        (0..n)
            .map(|i| {
                let x = ((i as u64 * 2654435761) % 1000) as f64 / 1000.0 * spread;
                let y = ((i as u64 * 40503) % 1000) as f64 / 1000.0 * spread;
                (i, x, y)
            })
            .collect()
    }

    #[test]
    fn srj_matches_naive_join() {
        let s = snap(&scatter(250, 40.0));
        let srj = SrjClusterer::new(
            4.0,
            DbscanParams::new(1.8, 5).unwrap(),
            DistanceMetric::Chebyshev,
        );
        assert_eq!(
            srj.range_join(&s),
            naive_range_join(&s, 1.8, DistanceMetric::Chebyshev)
        );
    }

    #[test]
    fn srj_and_rjc_agree_exactly() {
        let s = snap(&scatter(300, 30.0));
        let params = DbscanParams::new(1.2, 4).unwrap();
        let srj = SrjClusterer::new(3.0, params, DistanceMetric::Chebyshev);
        let rjc = RjcClusterer::new(3.0, params, DistanceMetric::Chebyshev);
        assert_eq!(srj.range_join(&s), rjc.range_join(&s));
        assert_eq!(srj.cluster(&s), rjc.cluster(&s));
    }

    #[test]
    fn empty_snapshot() {
        let srj = SrjClusterer::new(
            1.0,
            DbscanParams::new(0.5, 2).unwrap(),
            DistanceMetric::Chebyshev,
        );
        assert!(srj
            .cluster(&Snapshot::new(Timestamp(0)))
            .clusters
            .is_empty());
    }
}
