//! **GridQuery** — Algorithm 2 of the paper.
//!
//! One engine instance owns one grid cell's R-tree for one snapshot. Data
//! objects are processed *query-then-insert* (Lemma 2): each data object
//! probes the R-tree built so far — which contains exactly the data objects
//! that arrived before it — and is then inserted. Every same-cell pair is
//! thus reported exactly once, by whichever partner arrives later. Query
//! objects only probe and are never inserted.

use crate::gridobject::GridObject;
use icpe_index::RTree;
use icpe_types::{DistanceMetric, ObjectId, Point};

/// A neighbor pair `(u, v)` with `d(u, v) ≤ ε`, canonicalized to `u < v`.
pub type NeighborPair = (ObjectId, ObjectId);

/// The per-cell range-query engine (one per `(snapshot, grid cell)`).
#[derive(Debug)]
pub struct CellQueryEngine {
    tree: RTree<ObjectId>,
    eps: f64,
    metric: DistanceMetric,
    /// Per-probe hit scratch, reused across probes (owned ids, not tree
    /// borrows, so the buffer can live here) — the probe path allocates
    /// nothing after the first query.
    hits: Vec<ObjectId>,
}

impl CellQueryEngine {
    /// Creates an engine for one cell.
    pub fn new(eps: f64, metric: DistanceMetric) -> Self {
        CellQueryEngine {
            tree: RTree::new(),
            eps,
            metric,
            hits: Vec::new(),
        }
    }

    /// Processes a data object: probe the tree built so far, then insert
    /// (Lemma 2, Algorithm 2 lines 2–4). Emits discovered pairs.
    pub fn push_data(&mut self, id: ObjectId, location: Point, out: &mut Vec<NeighborPair>) {
        self.probe(id, location, out);
        self.tree.insert(location, id);
    }

    /// Processes a query object: probe only (Algorithm 2 lines 5–6).
    pub fn push_query(&mut self, id: ObjectId, location: Point, out: &mut Vec<NeighborPair>) {
        self.probe(id, location, out);
    }

    /// Processes a full cell worth of grid objects. Data objects must come
    /// first for Lemma 2 to be sound; this method enforces the ordering
    /// internally, so callers may pass them interleaved.
    pub fn run_cell(&mut self, objects: &[GridObject], out: &mut Vec<NeighborPair>) {
        for o in objects.iter().filter(|o| !o.is_query) {
            self.push_data(o.id, o.location, out);
        }
        for o in objects.iter().filter(|o| o.is_query) {
            self.push_query(o.id, o.location, out);
        }
    }

    /// Number of data objects inserted so far.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if no data objects were inserted.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    fn probe(&mut self, id: ObjectId, location: Point, out: &mut Vec<NeighborPair>) {
        self.hits.clear();
        self.tree
            .query_payloads_within(&location, self.eps, self.metric, &mut self.hits);
        out.extend(
            self.hits
                .iter()
                .filter(|&&other| other != id)
                .map(|&other| canonical(id, other)),
        );
    }
}

/// Orders a pair so the smaller id comes first.
#[inline]
pub fn canonical(a: ObjectId, b: ObjectId) -> NeighborPair {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_index::GridKey;
    use icpe_types::Timestamp;

    fn oid(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn lemma2_reports_each_same_cell_pair_once() {
        let mut engine = CellQueryEngine::new(1.0, DistanceMetric::Chebyshev);
        let mut out = Vec::new();
        engine.push_data(oid(1), Point::new(0.0, 0.0), &mut out);
        engine.push_data(oid(2), Point::new(0.5, 0.5), &mut out);
        engine.push_data(oid(3), Point::new(0.7, 0.7), &mut out);
        out.sort_unstable();
        assert_eq!(
            out,
            vec![(oid(1), oid(2)), (oid(1), oid(3)), (oid(2), oid(3))]
        );
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn query_objects_probe_but_do_not_insert() {
        let mut engine = CellQueryEngine::new(1.0, DistanceMetric::Chebyshev);
        let mut out = Vec::new();
        engine.push_data(oid(1), Point::new(0.0, 0.0), &mut out);
        engine.push_query(oid(9), Point::new(0.5, 0.5), &mut out);
        assert_eq!(out, vec![(oid(1), oid(9))]);
        assert_eq!(engine.len(), 1, "query object must not be inserted");
        // A second identical query still sees only the data object.
        out.clear();
        engine.push_query(oid(10), Point::new(0.5, 0.5), &mut out);
        assert_eq!(out, vec![(oid(1), oid(10))]);
    }

    #[test]
    fn run_cell_reorders_interleaved_objects() {
        let k = GridKey::new(0, 0);
        let t = Timestamp(0);
        // Query object listed before the data objects it must see.
        let objs = vec![
            GridObject::query(k, oid(9), Point::new(0.5, 0.5), t),
            GridObject::data(k, oid(1), Point::new(0.0, 0.0), t),
            GridObject::data(k, oid(2), Point::new(0.9, 0.9), t),
        ];
        let mut engine = CellQueryEngine::new(1.0, DistanceMetric::Chebyshev);
        let mut out = Vec::new();
        engine.run_cell(&objs, &mut out);
        out.sort_unstable();
        assert_eq!(
            out,
            vec![(oid(1), oid(2)), (oid(1), oid(9)), (oid(2), oid(9))]
        );
    }

    #[test]
    fn metric_is_respected() {
        let mut engine = CellQueryEngine::new(1.0, DistanceMetric::L1);
        let mut out = Vec::new();
        engine.push_data(oid(1), Point::new(0.0, 0.0), &mut out);
        // L1 distance 1.6 > 1.0, Chebyshev 0.8 ≤ 1.0 → excluded under L1.
        engine.push_data(oid(2), Point::new(0.8, 0.8), &mut out);
        assert!(out.is_empty());
        // Object 3 is within L1 range of both earlier objects:
        // d(1,3) = 1.0 and d(2,3) = 0.6.
        engine.push_data(oid(3), Point::new(0.5, 0.5), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(oid(1), oid(3)), (oid(2), oid(3))]);
    }

    #[test]
    fn duplicate_locations_pair_up() {
        let mut engine = CellQueryEngine::new(0.5, DistanceMetric::Chebyshev);
        let mut out = Vec::new();
        engine.push_data(oid(1), Point::new(2.0, 2.0), &mut out);
        engine.push_data(oid(2), Point::new(2.0, 2.0), &mut out);
        assert_eq!(out, vec![(oid(1), oid(2))]);
    }

    #[test]
    fn canonical_orders_ids() {
        assert_eq!(canonical(oid(5), oid(3)), (oid(3), oid(5)));
        assert_eq!(canonical(oid(3), oid(5)), (oid(3), oid(5)));
        assert_eq!(canonical(oid(4), oid(4)), (oid(4), oid(4)));
    }
}
