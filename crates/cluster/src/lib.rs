//! # icpe-cluster — indexed clustering of streaming snapshots
//!
//! The first phase of ICPE (§5): for every snapshot, compute the range join
//! `RJ(S_t, ε)` and feed it to DBSCAN. This crate implements:
//!
//! * [`gridobject`] — Definition 12's `GridObject` replication records;
//! * [`allocate`] — **GridAllocate** (Algorithm 1): key computation and the
//!   Lemma-1 upper-half replication;
//! * [`query`] — **GridQuery** (Algorithm 2): per-cell R-tree build with the
//!   Lemma-2 query-during-build trick;
//! * [`sync`] — **GridSync**: pair collection and deduplication;
//! * [`dbscan`] — DBSCAN over the neighbor-pair stream (union-find closure
//!   of the core-point graph, O(pairs));
//! * [`rjc`] — the assembled RJC clustering method (ours);
//! * [`srj`] — the SRJ baseline: full-region replication, build-then-query;
//! * [`gdc`] — the GDC baseline: ε-width grid DBSCAN without R-trees;
//! * [`naive`] — O(n²) reference implementations used as test oracles;
//! * [`balance`] — hotspot-aware load accounting and the cell→subtask
//!   rebalancing controller behind the pipeline's adaptive routing.

pub mod allocate;
pub mod balance;
pub mod dbscan;
pub mod gdc;
pub mod gridobject;
pub mod naive;
pub mod query;
pub mod rjc;
pub mod srj;
pub mod sync;

pub use allocate::{grid_allocate, grid_allocate_full, refine_expand};
pub use balance::{BalanceOutcome, BalancerConfig, CellLoad, LoadBalancer, LoadTracker};
pub use dbscan::{dbscan_from_pairs, DbscanOutcome};
pub use gdc::GdcClusterer;
pub use gridobject::GridObject;
pub use query::CellQueryEngine;
pub use rjc::RjcClusterer;
pub use srj::SrjClusterer;
pub use sync::{PairCollector, SyncStats, SyncStatus};

use icpe_types::{ClusterSnapshot, Snapshot};

/// A per-snapshot clustering method: consumes a snapshot, returns its
/// cluster snapshot. Implemented by RJC, SRJ and GDC so the benchmark
/// harness can swap them uniformly.
pub trait SnapshotClusterer {
    /// Human-readable name ("RJC", "SRJ", "GDC").
    fn name(&self) -> &'static str;

    /// Clusters one snapshot.
    fn cluster(&self, snapshot: &Snapshot) -> ClusterSnapshot;
}
