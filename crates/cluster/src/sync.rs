//! **GridSync** — result collection with deduplication.
//!
//! Lemma 1 eliminates *most* duplicate discoveries, but a pair of locations
//! lying in the same horizontal band (each inside the other's upper
//! half-region) can still be found from both sides. `PairCollector`
//! canonicalizes and deduplicates, yielding exact set semantics for
//! `RJ(O, ε)`, and counts how many duplicates were suppressed (an observable
//! for the Lemma-1 ablation bench).

use crate::query::NeighborPair;
use std::collections::HashSet;

/// Collects neighbor pairs from all cells, deduplicating.
#[derive(Debug, Default)]
pub struct PairCollector {
    seen: HashSet<NeighborPair>,
    duplicates: usize,
}

impl PairCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one canonical pair; returns `true` if it was new.
    pub fn add(&mut self, pair: NeighborPair) -> bool {
        debug_assert!(pair.0 <= pair.1, "pairs must be canonicalized");
        if self.seen.insert(pair) {
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// Adds many pairs.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = NeighborPair>) {
        for p in pairs {
            self.add(p);
        }
    }

    /// Number of distinct pairs collected.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if no pairs were collected.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many duplicate discoveries were suppressed.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Consumes the collector, returning the distinct pairs (sorted, for
    /// deterministic downstream processing).
    pub fn into_pairs(self) -> Vec<NeighborPair> {
        let mut v: Vec<NeighborPair> = self.seen.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::ObjectId;

    fn p(a: u32, b: u32) -> NeighborPair {
        (ObjectId(a), ObjectId(b))
    }

    #[test]
    fn dedup_and_count() {
        let mut c = PairCollector::new();
        assert!(c.add(p(1, 2)));
        assert!(!c.add(p(1, 2)));
        assert!(c.add(p(2, 3)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.into_pairs(), vec![p(1, 2), p(2, 3)]);
    }

    #[test]
    fn extend_and_sorted_output() {
        let mut c = PairCollector::new();
        c.extend([p(5, 9), p(1, 2), p(5, 9), p(0, 7)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.into_pairs(), vec![p(0, 7), p(1, 2), p(5, 9)]);
    }

    #[test]
    fn empty_collector() {
        let c = PairCollector::new();
        assert!(c.is_empty());
        assert!(c.into_pairs().is_empty());
    }
}
