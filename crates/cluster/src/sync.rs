//! **GridSync** — result collection with deduplication.
//!
//! Lemma 1 eliminates *most* duplicate discoveries, but a pair of locations
//! lying in the same horizontal band (each inside the other's upper
//! half-region) can still be found from both sides. `PairCollector`
//! canonicalizes and deduplicates, yielding exact set semantics for
//! `RJ(O, ε)`, and counts how many duplicates were suppressed (an observable
//! for the Lemma-1 ablation bench).
//!
//! Since the merge-path sharding, collection is no longer one centralized
//! funnel: the pair stream is hash-partitioned on the pair's owning id
//! across `N` sync subtasks (each running its own `PairCollector` over the
//! shard it owns — the same pair always lands on the same shard, so dedup
//! stays exact), and the per-shard results are reduced to one stream
//! through a fanin-bounded aggregation tree. [`SyncStats`] is the shared
//! observability surface of that path: cumulative pair/duplicate/seal
//! counters plus the per-shard load split of the most recently sealed
//! window, read by `STATUS` endpoints and restored from checkpoints so
//! the gauges survive a restart.

use crate::query::NeighborPair;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Collects neighbor pairs from all cells, deduplicating.
#[derive(Debug, Default)]
pub struct PairCollector {
    seen: HashSet<NeighborPair>,
    duplicates: usize,
}

impl PairCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one canonical pair; returns `true` if it was new.
    pub fn add(&mut self, pair: NeighborPair) -> bool {
        debug_assert!(pair.0 <= pair.1, "pairs must be canonicalized");
        if self.seen.insert(pair) {
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// Adds many pairs.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = NeighborPair>) {
        for p in pairs {
            self.add(p);
        }
    }

    /// Number of distinct pairs collected.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if no pairs were collected.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many duplicate discoveries were suppressed.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Consumes the collector, returning the distinct pairs (sorted, for
    /// deterministic downstream processing).
    pub fn into_pairs(self) -> Vec<NeighborPair> {
        let mut v: Vec<NeighborPair> = self.seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The distinct pairs collected so far (sorted), without consuming the
    /// collector — the checkpoint capture of a still-open window.
    pub fn snapshot_pairs(&self) -> Vec<NeighborPair> {
        let mut v: Vec<NeighborPair> = self.seen.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// A point-in-time view of the sharded sync path's gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SyncStatus {
    /// Sync shards (= keyed-stage parallelism).
    pub shards: usize,
    /// Configured aggregation-tree fanin.
    pub fanin: usize,
    /// Interior combiner levels between the shards and the finalizer
    /// (0 when `shards ≤ fanin` — the flat funnel).
    pub levels: usize,
    /// Distinct pairs merged across all sealed windows (cumulative).
    pub pairs_merged: u64,
    /// Duplicate discoveries suppressed (cumulative).
    pub duplicates: u64,
    /// Windows sealed through the merge tree (cumulative).
    pub windows_sealed: u64,
    /// Heaviest shard's load (pairs + duplicates) in the most recently
    /// sealed window.
    pub max_shard_load: u64,
    /// Mean per-shard load of that window.
    pub mean_shard_load: f64,
}

impl SyncStatus {
    /// `max/mean` shard load of the last sealed window (1.0 = balanced;
    /// idle windows count as balanced).
    pub fn imbalance(&self) -> f64 {
        if self.mean_shard_load <= 0.0 {
            return 1.0;
        }
        self.max_shard_load as f64 / self.mean_shard_load
    }
}

/// Shared gauges of the sharded GridSync merge path. Wrap in `Arc`; the
/// sync shards and the tree finalizer write, status endpoints read. The
/// per-operator *authoritative* counters live in the operators themselves
/// (and in their checkpoint pieces); this surface only mirrors them for
/// live observability, so writers report per-window deltas.
#[derive(Debug)]
pub struct SyncStats {
    shards: usize,
    fanin: usize,
    levels: usize,
    pairs_merged: AtomicU64,
    duplicates: AtomicU64,
    windows_sealed: AtomicU64,
    /// Open per-window shard loads: time → (per-shard loads, reports).
    windows: Mutex<SyncWindows>,
}

#[derive(Debug, Default)]
struct SyncWindows {
    open: BTreeMap<u32, (Vec<u64>, usize)>,
    last_sealed: Option<(u32, Vec<u64>)>,
}

/// Open-window bound: a shard that somehow never reports would otherwise
/// grow the map without limit on a days-long deployment.
const MAX_OPEN_SYNC_WINDOWS: usize = 4096;

impl SyncStats {
    /// Gauges for `shards` sync subtasks reduced at tree fanin `fanin`.
    pub fn new(shards: usize, fanin: usize) -> Self {
        let shards = shards.max(1);
        let fanin = fanin.max(2);
        // Interior levels: how many times the width must divide by the
        // fanin before one slot can absorb it.
        let mut levels = 0usize;
        let mut width = shards;
        while width > fanin {
            width = width.div_ceil(fanin);
            levels += 1;
        }
        SyncStats {
            shards,
            fanin,
            levels,
            pairs_merged: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            windows_sealed: AtomicU64::new(0),
            windows: Mutex::new(SyncWindows::default()),
        }
    }

    /// One shard's seal of window `time`: `pairs` distinct pairs forwarded,
    /// `duplicates` suppressed. The window's load row seals at the
    /// `shards`-th report.
    pub fn note_shard_window(&self, time: u32, shard: usize, pairs: u64, duplicates: u64) {
        self.pairs_merged.fetch_add(pairs, Ordering::Relaxed);
        self.duplicates.fetch_add(duplicates, Ordering::Relaxed);
        let mut windows = self.windows.lock().expect("sync stats poisoned");
        let n = self.shards;
        let (loads, reports) = windows.open.entry(time).or_insert_with(|| (vec![0; n], 0));
        if let Some(slot) = loads.get_mut(shard) {
            *slot += pairs + duplicates;
        }
        *reports += 1;
        if *reports >= n {
            let (loads, _) = windows.open.remove(&time).expect("window present");
            windows.last_sealed = Some((time, loads));
        }
        while windows.open.len() > MAX_OPEN_SYNC_WINDOWS {
            windows.open.pop_first();
        }
    }

    /// The finalizer sealed one merged window.
    pub fn note_window_sealed(&self) {
        self.windows_sealed.fetch_add(1, Ordering::Relaxed);
    }

    /// Rehydrates the cumulative counters from a checkpoint's merged sync
    /// section, so a restored deployment's gauges stay cumulative.
    pub fn restore(&self, pairs_merged: u64, duplicates: u64, windows_sealed: u64) {
        self.pairs_merged.store(pairs_merged, Ordering::Relaxed);
        self.duplicates.store(duplicates, Ordering::Relaxed);
        self.windows_sealed.store(windows_sealed, Ordering::Relaxed);
    }

    /// The current gauge snapshot.
    pub fn status(&self) -> SyncStatus {
        let windows = self.windows.lock().expect("sync stats poisoned");
        let (max, mean) = windows
            .last_sealed
            .as_ref()
            .map(|(_, loads)| {
                let total: u64 = loads.iter().sum();
                (
                    loads.iter().copied().max().unwrap_or(0),
                    total as f64 / loads.len().max(1) as f64,
                )
            })
            .unwrap_or((0, 0.0));
        SyncStatus {
            shards: self.shards,
            fanin: self.fanin,
            levels: self.levels,
            pairs_merged: self.pairs_merged.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            windows_sealed: self.windows_sealed.load(Ordering::Relaxed),
            max_shard_load: max,
            mean_shard_load: mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::ObjectId;

    fn p(a: u32, b: u32) -> NeighborPair {
        (ObjectId(a), ObjectId(b))
    }

    #[test]
    fn dedup_and_count() {
        let mut c = PairCollector::new();
        assert!(c.add(p(1, 2)));
        assert!(!c.add(p(1, 2)));
        assert!(c.add(p(2, 3)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.into_pairs(), vec![p(1, 2), p(2, 3)]);
    }

    #[test]
    fn extend_and_sorted_output() {
        let mut c = PairCollector::new();
        c.extend([p(5, 9), p(1, 2), p(5, 9), p(0, 7)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.duplicates(), 1);
        assert_eq!(c.into_pairs(), vec![p(0, 7), p(1, 2), p(5, 9)]);
    }

    #[test]
    fn empty_collector() {
        let c = PairCollector::new();
        assert!(c.is_empty());
        assert!(c.into_pairs().is_empty());
    }

    #[test]
    fn sync_stats_levels_follow_the_tree_shape() {
        assert_eq!(SyncStats::new(1, 4).status().levels, 0);
        assert_eq!(SyncStats::new(4, 4).status().levels, 0, "flat funnel");
        assert_eq!(SyncStats::new(8, 4).status().levels, 1, "8 → 2 → final");
        assert_eq!(SyncStats::new(8, 2).status().levels, 2, "8 → 4 → 2 → final");
        assert_eq!(
            SyncStats::new(9, 2).status().levels,
            3,
            "9 → 5 → 3 → 2 → final"
        );
    }

    #[test]
    fn sync_stats_seal_and_status() {
        let stats = SyncStats::new(2, 4);
        stats.note_shard_window(3, 0, 10, 2);
        let s = stats.status();
        assert_eq!(s.pairs_merged, 10);
        assert_eq!(s.duplicates, 2);
        assert_eq!(s.max_shard_load, 0, "window not sealed yet");
        stats.note_shard_window(3, 1, 4, 0);
        stats.note_window_sealed();
        let s = stats.status();
        assert_eq!(s.pairs_merged, 14);
        assert_eq!(s.windows_sealed, 1);
        assert_eq!(s.max_shard_load, 12);
        assert_eq!(s.mean_shard_load, 8.0);
        assert_eq!(s.imbalance(), 1.5);
    }

    #[test]
    fn sync_stats_restore_is_cumulative() {
        let stats = SyncStats::new(3, 2);
        stats.restore(100, 9, 40);
        stats.note_shard_window(7, 0, 5, 1);
        let s = stats.status();
        assert_eq!(s.pairs_merged, 105);
        assert_eq!(s.duplicates, 10);
        assert_eq!(s.windows_sealed, 40);
        assert_eq!(s.shards, 3);
        assert_eq!(s.fanin, 2);
    }

    #[test]
    fn sync_status_idle_is_balanced() {
        assert_eq!(SyncStatus::default().imbalance(), 1.0);
    }
}
