//! **GDC** — the grid-based DBSCAN baseline of §7.1 ([14] adapted).
//!
//! A centralized grid DBSCAN: the space is divided by the (small) distance
//! threshold ε itself rather than by a tunable cell width, neighborhoods are
//! found by scanning the 3×3 surrounding cells without any local index, and
//! clustering runs in a single partition. The paper observes that dividing
//! by ε "results in too many partitions" — small cells mean a large hash map
//! and heavy per-cell overhead, which is what this faithful re-implementation
//! exhibits. Results are identical to RJC/SRJ.

use crate::dbscan::dbscan_from_pairs;
use crate::query::{canonical, NeighborPair};
use crate::SnapshotClusterer;
use icpe_types::{ClusterSnapshot, DbscanParams, DistanceMetric, ObjectId, Snapshot};
use std::collections::HashMap;

/// Configuration and engine for the GDC baseline.
#[derive(Debug, Clone)]
pub struct GdcClusterer {
    metric: DistanceMetric,
    dbscan: DbscanParams,
}

impl GdcClusterer {
    /// Creates the baseline clusterer. GDC takes no grid-width parameter:
    /// it always divides space by ε (hence its flat curves in Figure 11).
    pub fn new(dbscan: DbscanParams, metric: DistanceMetric) -> Self {
        GdcClusterer { metric, dbscan }
    }

    /// Neighborhood pairs via the ε-grid: each point checks the 3×3 block of
    /// ε-cells around its own.
    pub fn range_join(&self, snapshot: &Snapshot) -> Vec<NeighborPair> {
        let eps = self.dbscan.eps;
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        let key = |x: f64, y: f64| ((x / eps).floor() as i64, (y / eps).floor() as i64);
        for (i, e) in snapshot.entries.iter().enumerate() {
            cells
                .entry(key(e.location.x, e.location.y))
                .or_default()
                .push(i);
        }
        let entries = &snapshot.entries;
        let mut out = Vec::new();
        for (&(cx, cy), members) in &cells {
            // In-cell pairs.
            for (a_pos, &a) in members.iter().enumerate() {
                for &b in &members[a_pos + 1..] {
                    if self
                        .metric
                        .within(&entries[a].location, &entries[b].location, eps)
                    {
                        out.push(canonical(entries[a].id, entries[b].id));
                    }
                }
            }
            // Cross-cell pairs: check the 4 "forward" neighbor cells so each
            // unordered cell pair is visited once.
            for (dx, dy) in [(1, 0), (-1, 1), (0, 1), (1, 1)] {
                let Some(other) = cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &a in members {
                    for &b in other {
                        if self
                            .metric
                            .within(&entries[a].location, &entries[b].location, eps)
                        {
                            out.push(canonical(entries[a].id, entries[b].id));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Full clustering of one snapshot.
    pub fn cluster_snapshot(&self, snapshot: &Snapshot) -> ClusterSnapshot {
        let pairs = self.range_join(snapshot);
        let ids: Vec<ObjectId> = snapshot.entries.iter().map(|e| e.id).collect();
        dbscan_from_pairs(snapshot.time, &ids, &pairs, &self.dbscan).snapshot
    }
}

impl SnapshotClusterer for GdcClusterer {
    fn name(&self) -> &'static str {
        "GDC"
    }

    fn cluster(&self, snapshot: &Snapshot) -> ClusterSnapshot {
        self.cluster_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_range_join;
    use crate::rjc::RjcClusterer;
    use icpe_types::{Point, Timestamp};

    fn snap(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    fn scatter(n: u32, spread: f64) -> Vec<(u32, f64, f64)> {
        (0..n)
            .map(|i| {
                let x = ((i as u64 * 2654435761) % 1000) as f64 / 1000.0 * spread;
                let y = ((i as u64 * 40503) % 1000) as f64 / 1000.0 * spread;
                (i, x, y)
            })
            .collect()
    }

    #[test]
    fn gdc_matches_naive_join() {
        let s = snap(&scatter(250, 40.0));
        for metric in [
            DistanceMetric::Chebyshev,
            DistanceMetric::L1,
            DistanceMetric::L2,
        ] {
            let gdc = GdcClusterer::new(DbscanParams::new(1.8, 5).unwrap(), metric);
            assert_eq!(gdc.range_join(&s), naive_range_join(&s, 1.8, metric));
        }
    }

    #[test]
    fn gdc_and_rjc_clusters_agree() {
        let s = snap(&scatter(300, 25.0));
        let params = DbscanParams::new(1.0, 4).unwrap();
        let gdc = GdcClusterer::new(params, DistanceMetric::Chebyshev);
        let rjc = RjcClusterer::new(2.0, params, DistanceMetric::Chebyshev);
        assert_eq!(gdc.cluster(&s), rjc.cluster(&s));
    }

    #[test]
    fn handles_negative_coordinates() {
        let s = snap(&[(1, -0.4, -0.4), (2, 0.4, 0.4), (3, -5.0, 3.0)]);
        let gdc = GdcClusterer::new(
            DbscanParams::new(1.0, 2).unwrap(),
            DistanceMetric::Chebyshev,
        );
        assert_eq!(gdc.range_join(&s), vec![(ObjectId(1), ObjectId(2))]);
    }

    #[test]
    fn empty_snapshot() {
        let gdc = GdcClusterer::new(
            DbscanParams::new(1.0, 2).unwrap(),
            DistanceMetric::Chebyshev,
        );
        assert!(gdc
            .cluster(&Snapshot::new(Timestamp(0)))
            .clusters
            .is_empty());
    }
}
