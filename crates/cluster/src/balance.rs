//! Hotspot-aware load balancing for the keyed GridQuery stage.
//!
//! The paper keys GridQuery work by grid cell and lets the platform hash
//! cells onto subtasks. On skewed urban traffic (downtown hotspots,
//! rush-hour corridors) a handful of cells carry most of the objects —
//! and whatever subtask they hash to becomes the straggler that caps the
//! Figure-14 scaling curve. This module supplies the two policy pieces of
//! the adaptive alternative:
//!
//! * [`LoadTracker`] — shared accounting written by the GridQuery
//!   subtasks: per-cell load (buffered objects + produced pairs) per
//!   window, plus per-subtask window totals for observability and benches;
//! * [`LoadBalancer`] — the controller (run by the single allocate
//!   subtask at snapshot boundaries): maintains decayed per-cell load
//!   estimates, detects hot placements (`max > θ × mean`), and produces a
//!   [`RebalancePlan`] that *splits* the hot cells out of their hash
//!   buckets onto explicitly assigned subtasks (largest-load-first onto
//!   the least-loaded subtask) while cold cells *merge* back to the
//!   consistent-hash default.
//!
//! The balancer is deliberately mechanism-free: it never touches a
//! routing table or a channel. The pipeline installs the plan into an
//! `icpe-runtime` `RoutingTable` at a window boundary — the only point
//! where no per-cell buffer is live, so a swap can never split an
//! in-flight window across subtasks.

use icpe_index::{GridKey, RefinementTree};
use icpe_types::shard::{stable_hash, subtask_for};
use icpe_types::{CellAssignment, CellLoadCheckpoint, CellRefinement, RoutingCheckpoint};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

/// One cell's observed load in one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellLoad {
    /// Grid objects (data + query replicas) buffered for the cell.
    pub records: u64,
    /// Neighbor pairs the cell's range join produced.
    pub pairs: u64,
}

impl CellLoad {
    /// The scalar load the balancer optimizes: buffering plus join output.
    pub fn weight(&self) -> u64 {
        self.records + self.pairs
    }
}

/// Per-window, per-subtask accounting shared between the GridQuery
/// subtasks (writers) and the balancer / status endpoints (readers).
/// Wrap in `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct LoadTracker {
    parallelism: usize,
    inner: Mutex<TrackerInner>,
}

/// Per-subtask history bound: `sealed` keeps the newest this-many
/// windows (tiny rows — `parallelism` integers each) for status gauges
/// and bench series. A days-long serve deployment must not grow
/// per-window state without bound.
const MAX_WINDOW_HISTORY: usize = 4096;

/// Per-cell history bounds, much tighter than [`MAX_WINDOW_HISTORY`]
/// because these rows hold an entry per active cell: `sealed_cells`
/// (read only by the skew bench's hindsight oracle) keeps this many
/// windows, and `ready` — drained promptly whenever a balancer runs —
/// drops its oldest past this when nothing drains (static routing).
const MAX_CELL_WINDOW_HISTORY: usize = 512;
const MAX_READY_BACKLOG: usize = 64;

#[derive(Debug, Default)]
struct TrackerInner {
    /// Per-cell loads of windows that have fully sealed, awaiting the
    /// balancer's drain — one entry per window. Only whole windows land
    /// here: folding a partially flushed window into the balancer's
    /// estimates would make a cell's load appear to halve and double with
    /// scheduling luck, and the balancer would chase that noise with
    /// useless migrations.
    ready: Vec<(u32, HashMap<GridKey, CellLoad>)>,
    /// Open windows: per-cell and per-subtask loads plus how many
    /// subtasks reported.
    open: BTreeMap<u32, WindowAcc>,
    /// Sealed windows (every subtask reported), ascending by time.
    sealed: Vec<(u32, Vec<u64>)>,
    /// Per-cell loads of sealed windows (for hindsight analyses).
    sealed_cells: Vec<(u32, Vec<(GridKey, u64)>)>,
}

#[derive(Debug, Default)]
struct WindowAcc {
    cells: HashMap<GridKey, CellLoad>,
    loads: Vec<u64>,
    reports: usize,
}

impl LoadTracker {
    /// A tracker for `parallelism` GridQuery subtasks.
    pub fn new(parallelism: usize) -> Self {
        LoadTracker {
            parallelism: parallelism.max(1),
            inner: Mutex::new(TrackerInner::default()),
        }
    }

    /// The subtask count the tracker was sized for.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Records one cell's load in window `time` (called by the owning
    /// subtask at the window flush). The loads stay staged until the
    /// whole window seals.
    pub fn record_cell(&self, time: u32, cell: GridKey, load: CellLoad) {
        let mut inner = self.inner.lock().expect("load tracker poisoned");
        let entry = inner
            .open
            .entry(time)
            .or_default()
            .cells
            .entry(cell)
            .or_default();
        entry.records += load.records;
        entry.pairs += load.pairs;
    }

    /// Records one subtask's total load for window `time`. Every subtask
    /// reports every window (ticks are broadcast), so the window seals at
    /// the `parallelism`-th report — at which point its per-cell loads
    /// become drainable as one consistent unit.
    pub fn record_window(&self, time: u32, subtask: usize, load: u64) {
        let n = self.parallelism;
        let mut inner = self.inner.lock().expect("load tracker poisoned");
        let acc = inner.open.entry(time).or_default();
        if acc.loads.is_empty() {
            acc.loads = vec![0; n];
        }
        if let Some(slot) = acc.loads.get_mut(subtask) {
            *slot += load;
        }
        acc.reports += 1;
        if acc.reports >= n {
            let acc = inner.open.remove(&time).expect("window present");
            let mut cells: Vec<(GridKey, u64)> =
                acc.cells.iter().map(|(&c, l)| (c, l.weight())).collect();
            cells.sort_by_key(|&(c, _)| (c.x, c.y, c.level));
            inner.ready.push((time, acc.cells));
            inner.sealed.push((time, acc.loads));
            inner.sealed_cells.push((time, cells));
            let excess = inner.sealed.len().saturating_sub(MAX_WINDOW_HISTORY);
            if excess > 0 {
                inner.sealed.drain(..excess);
            }
            let excess = inner
                .sealed_cells
                .len()
                .saturating_sub(MAX_CELL_WINDOW_HISTORY);
            if excess > 0 {
                inner.sealed_cells.drain(..excess);
            }
            let excess = inner.ready.len().saturating_sub(MAX_READY_BACKLOG);
            if excess > 0 {
                inner.ready.drain(..excess);
            }
        }
    }

    /// Per-window per-cell loads of sealed windows, ascending by time —
    /// what an oracle placement (hindsight LPT per window) is computed
    /// from in the skew bench.
    pub fn sealed_cell_windows(&self) -> Vec<(u32, Vec<(GridKey, u64)>)> {
        self.inner
            .lock()
            .expect("load tracker poisoned")
            .sealed_cells
            .clone()
    }

    /// Takes the per-cell loads of every window sealed since the last
    /// drain — whole windows only, one entry per window in time order, so
    /// a consumer can decay-fold them window by window no matter how many
    /// sealed between two drains (backpressure makes seals arrive in
    /// bursts; folding a burst as if it were one window whipsaws any
    /// decayed estimate by the burst length).
    pub fn drain_cells(&self) -> Vec<(u32, HashMap<GridKey, CellLoad>)> {
        std::mem::take(&mut self.inner.lock().expect("load tracker poisoned").ready)
    }

    /// All sealed windows so far, `(time, per-subtask loads)` ascending —
    /// the imbalance series the skew bench reports on.
    pub fn sealed_windows(&self) -> Vec<(u32, Vec<u64>)> {
        self.inner
            .lock()
            .expect("load tracker poisoned")
            .sealed
            .clone()
    }

    /// The most recently sealed window, if any.
    pub fn last_sealed(&self) -> Option<(u32, Vec<u64>)> {
        self.inner
            .lock()
            .expect("load tracker poisoned")
            .sealed
            .last()
            .cloned()
    }
}

/// `max / mean` of one window's per-subtask loads (1.0 = perfectly
/// balanced; `N` = all load on one of `N` subtasks). Empty or idle
/// windows count as balanced.
pub fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    *loads.iter().max().expect("nonempty") as f64 / mean
}

/// Tuning knobs of the [`LoadBalancer`].
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Hot threshold θ: rebalance when the projected max subtask load
    /// exceeds `θ ×` the mean. Values near 1 rebalance aggressively;
    /// values ≥ the parallelism never trigger.
    pub theta: f64,
    /// Minimum windows between table swaps (migration hysteresis).
    pub cooldown_windows: u32,
    /// Per-window decay of the cell-load estimate: `estimate = decay ×
    /// estimate + observed`. 0 = last window only; 0.5 halves history
    /// each window.
    pub decay: f64,
    /// Maximum cells pinned explicitly (the routing-table budget); the
    /// rest stay on consistent hashing.
    pub max_mapped_cells: usize,
    /// How much each produced pair weighs in the cell-load model. A pair
    /// costs the deployment twice: once at the query subtask that
    /// discovers it and once on the sharded sync merge path that
    /// deduplicates and reduces it — so the default counts both sides
    /// (`2.0`), making pair-heavy cells (whose merge partitions run hot)
    /// migrate sooner. `1.0` restores the query-side-only model of the
    /// pre-sharded merge path.
    pub sync_pair_weight: f64,
    /// Maximum sub-cell refinement depth for hot cells; 0 disables
    /// refinement entirely (cell-granularity routing only). Depth `d`
    /// partitions a base cell into `4^d` leaf sub-cells, so even one cell
    /// hotter than a subtask's whole fair share becomes splittable.
    pub refine_max_depth: u8,
    /// Split a (leaf) cell one level deeper when its decayed weight exceeds
    /// this fraction of a subtask's fair share (`total / parallelism`).
    pub refine_split_frac: f64,
    /// Re-coalesce a refined base cell one level when the total decayed
    /// weight of all its leaves falls below this fraction of the fair
    /// share. Keep well below `refine_split_frac`: the gap is the
    /// hysteresis that prevents split/coalesce thrash at the threshold.
    pub refine_coalesce_frac: f64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            theta: 1.5,
            cooldown_windows: 2,
            decay: 0.5,
            max_mapped_cells: 256,
            sync_pair_weight: 2.0,
            refine_max_depth: 0,
            refine_split_frac: 0.5,
            refine_coalesce_frac: 0.15,
        }
    }
}

/// A routing-table replacement the balancer wants installed at the next
/// window boundary.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// The epoch the new table carries.
    pub epoch: u64,
    /// The complete explicit overlay, keyed by the cell's routing hash.
    pub assignments: HashMap<u64, usize>,
    /// Cells whose effective subtask changes with this plan.
    pub migrated: u64,
}

/// What one window-boundary evaluation concluded.
#[derive(Debug, Clone)]
pub struct BalanceOutcome {
    /// Projected max per-subtask load under the *current* routing.
    pub max_load: f64,
    /// Projected mean per-subtask load.
    pub mean_load: f64,
    /// The table swap to install, when the imbalance warranted one.
    pub plan: Option<RebalancePlan>,
    /// Base cells split this boundary, with their new depth.
    pub split_cells: Vec<(GridKey, u8)>,
    /// Base cells coalesced this boundary, with their new depth.
    pub coalesced_cells: Vec<(GridKey, u8)>,
}

/// The hotspot controller. Single-owner (the allocate subtask); shares
/// nothing but the [`LoadTracker`] it drains.
#[derive(Debug)]
pub struct LoadBalancer {
    config: BalancerConfig,
    parallelism: usize,
    /// Decayed per-cell *record* estimates, folded once per window
    /// boundary from the allocate-side accounting (immediate: known the
    /// moment objects are routed).
    rec_estimates: HashMap<GridKey, f64>,
    /// Decayed per-cell *pair* estimates, folded once per sealed window
    /// from the query-side feedback (lagged by the pipeline's in-flight
    /// depth). Kept as a separate pool because the two signals arrive on
    /// different cadences — folding lagged bursts into one shared EWMA
    /// makes the estimate whipsaw by the burst length.
    pair_estimates: HashMap<GridKey, f64>,
    /// Per-cell pair *rate* `pairs / records`, EWMA-blended from the same
    /// query-side feedback. Range-join pairs come from squads — tight
    /// within-ε crowds of bounded size — so a cell's pair count scales
    /// *linearly* with its occupancy, at a rate set by how crowded its
    /// squads are. The rate drifts far slower than the occupancy itself,
    /// so `rate × (current records)` predicts the outgoing window's pair
    /// load from the exact record counts — where the lagged pair pool
    /// trails every hotspot movement by the whole pipeline depth.
    /// Ephemeral like the pair pool: rebuilt from feedback after a
    /// restore.
    pair_rate: HashMap<GridKey, f64>,
    /// Exact per-cell record counts of the most recently observed window.
    /// When the caller runs the two-phase boundary protocol these are the
    /// counts of the very window the next placement will route, so the
    /// planner optimizes the real objective rather than a decayed blend
    /// of history. Empty until the first observation (e.g. right after a
    /// restore), when planning falls back to the EWMA pools.
    last_records: HashMap<GridKey, f64>,
    /// The explicit overlay currently in force (mirrors the installed
    /// routing table; this controller is its only writer).
    assignments: HashMap<GridKey, usize>,
    /// Sub-cell refinement depths of hot base cells. Shared with the
    /// snapshot-merge finalizer (read-only) to expand each window's objects
    /// onto leaf sub-cells; this controller is its only writer, and only at
    /// window boundaries.
    refinement: RefinementTree,
    epoch: u64,
    cells_migrated: u64,
    splits: u64,
    coalesces: u64,
    windows_since_swap: u32,
}

impl LoadBalancer {
    /// A fresh balancer at epoch 0 (pure consistent hashing).
    pub fn new(config: BalancerConfig, parallelism: usize) -> Self {
        LoadBalancer {
            config,
            parallelism: parallelism.max(1),
            rec_estimates: HashMap::new(),
            pair_estimates: HashMap::new(),
            pair_rate: HashMap::new(),
            last_records: HashMap::new(),
            assignments: HashMap::new(),
            refinement: RefinementTree::new(),
            epoch: 0,
            cells_migrated: 0,
            splits: 0,
            coalesces: 0,
            windows_since_swap: 0,
        }
    }

    /// Rebuilds a balancer from its checkpoint, dropping assignments that
    /// name subtasks beyond the (possibly smaller) restored parallelism.
    pub fn from_checkpoint(
        config: BalancerConfig,
        parallelism: usize,
        ckpt: &RoutingCheckpoint,
    ) -> Self {
        let n = parallelism.max(1);
        let mut refinement = RefinementTree::new();
        for r in &ckpt.refinements {
            refinement.set_depth(GridKey::new(r.x, r.y), r.depth);
        }
        LoadBalancer {
            config,
            parallelism: n,
            rec_estimates: ckpt
                .loads
                .iter()
                .map(|l| (GridKey::sub(l.x, l.y, l.level), l.load_milli as f64 / 1e3))
                .collect(),
            pair_estimates: HashMap::new(),
            pair_rate: HashMap::new(),
            last_records: HashMap::new(),
            assignments: ckpt
                .assignments
                .iter()
                .filter(|a| (a.subtask as usize) < n)
                .map(|a| (GridKey::sub(a.x, a.y, a.level), a.subtask as usize))
                .collect(),
            refinement,
            epoch: ckpt.epoch,
            cells_migrated: ckpt.cells_migrated,
            splits: ckpt.splits,
            coalesces: ckpt.coalesces,
            windows_since_swap: 0,
        }
    }

    /// The canonical durable form of the learned placement.
    pub fn checkpoint(&self) -> RoutingCheckpoint {
        let mut assignments: Vec<CellAssignment> = self
            .assignments
            .iter()
            .map(|(k, &s)| CellAssignment {
                x: k.x,
                y: k.y,
                level: k.level,
                subtask: s as u32,
            })
            .collect();
        assignments.sort_by_key(|a| (a.x, a.y, a.level));
        let mut loads: Vec<CellLoadCheckpoint> = self
            .weights()
            .iter()
            .map(|(k, &w)| CellLoadCheckpoint {
                x: k.x,
                y: k.y,
                level: k.level,
                load_milli: (w * 1e3).round() as u64,
            })
            .collect();
        loads.sort_by_key(|l| (l.x, l.y, l.level));
        let mut refinements: Vec<CellRefinement> = self
            .refinement
            .iter()
            .map(|(k, d)| CellRefinement {
                x: k.x,
                y: k.y,
                depth: d,
            })
            .collect();
        refinements.sort_by_key(|r| (r.x, r.y));
        RoutingCheckpoint {
            epoch: self.epoch,
            assignments,
            loads,
            cells_migrated: self.cells_migrated,
            refinements,
            splits: self.splits,
            coalesces: self.coalesces,
        }
    }

    /// Current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cells migrated across all epochs so far.
    pub fn cells_migrated(&self) -> u64 {
        self.cells_migrated
    }

    /// The current sub-cell refinement tree (read by the snapshot-merge
    /// finalizer to expand each window's objects onto leaf sub-cells).
    pub fn refinement(&self) -> &RefinementTree {
        &self.refinement
    }

    /// Cumulative cell splits across the run.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Cumulative cell coalesces across the run.
    pub fn coalesces(&self) -> u64 {
        self.coalesces
    }

    /// The current explicit overlay keyed by routing hash — what a
    /// restored deployment installs into its table before the first
    /// record flows.
    pub fn table_assignments(&self) -> HashMap<u64, usize> {
        self.assignments
            .iter()
            .map(|(k, &s)| (stable_hash(k), s))
            .collect()
    }

    /// The subtask a cell currently routes to.
    fn route(&self, cell: &GridKey) -> usize {
        match self.assignments.get(cell) {
            Some(&s) if s < self.parallelism => s,
            _ => subtask_for(stable_hash(cell), self.parallelism),
        }
    }

    /// The per-cell weight model the planner and the refinement policy
    /// optimize. When the exact record counts of the window about to be
    /// routed are in hand (the two-phase boundary protocol), the model IS
    /// that window: exact records plus `rate × records` predicted
    /// pairs — the same quantity the per-window imbalance metric measures,
    /// so the planner optimizes the real objective instead of a decayed
    /// blend of history. Before the first observation (fresh start or
    /// right after a restore) it falls back to the EWMA pools.
    fn weights(&self) -> HashMap<GridKey, f64> {
        if self.last_records.is_empty() {
            let mut out = self.rec_estimates.clone();
            for (cell, w) in &self.pair_estimates {
                *out.entry(*cell).or_insert(0.0) += w;
            }
            return out;
        }
        let mut out = self.last_records.clone();
        for (cell, w) in out.iter_mut() {
            let r = self.last_records[cell];
            // Learned rate first; the additive pool backstops cells whose
            // rate is still unknown — it lives in EWMA units
            // (≈ window/(1−decay)), so one (1−decay) factor converts it
            // to this window's scale.
            *w += match self.pair_rate.get(cell) {
                Some(&rate) => self.config.sync_pair_weight * rate * r,
                None => {
                    (1.0 - self.config.decay)
                        * self.pair_estimates.get(cell).copied().unwrap_or(0.0)
                }
            };
        }
        out
    }

    /// Folds one window boundary's worth of allocate-side record counts:
    /// decay, add, and drop cells with no occupancy this window — their
    /// squads moved on, and balancing that phantom mass would misplace
    /// real load (a vacated cell re-enters through hash fallback when
    /// traffic returns).
    pub fn observe_records(&mut self, observed: &HashMap<GridKey, u64>) {
        if observed.is_empty() {
            // No information, not "everything vacated": an idle boundary
            // (stream gap, or the first boundary after a restore, before
            // any window has been emitted) must not erode the model —
            // in particular not the checkpoint-restored estimates.
            return;
        }
        for w in self.rec_estimates.values_mut() {
            *w *= self.config.decay;
        }
        for (cell, &records) in observed {
            *self.rec_estimates.entry(*cell).or_insert(0.0) += records as f64;
        }
        self.last_records = observed.iter().map(|(&c, &r)| (c, r as f64)).collect();
        self.rec_estimates
            .retain(|cell, w| *w > 1e-3 && observed.contains_key(cell));
        self.pair_estimates
            .retain(|cell, _| self.rec_estimates.contains_key(cell));
        self.pair_rate
            .retain(|cell, _| self.rec_estimates.contains_key(cell));
        self.windows_since_swap = self.windows_since_swap.saturating_add(1);
    }

    /// Folds ONE sealed window's pair counts from the query-side
    /// feedback. Call once per sealed window (in time order) — the
    /// decay-per-fold is what normalizes bursts of late feedback.
    ///
    /// Feedback arrives keyed at whatever refinement level was active
    /// when its window was emitted, whole pipeline-lag windows ago. If
    /// the tree moved since, the counts are re-keyed onto the *current*
    /// leaves — folded exactly into the ancestor after a coalesce, and
    /// apportioned by record share after a split — instead of being
    /// dropped, which would starve a freshly split hot cell's model for
    /// the whole lag.
    pub fn observe_pairs_window(&mut self, observed: &HashMap<GridKey, CellLoad>) {
        for w in self.pair_estimates.values_mut() {
            *w *= self.config.decay;
        }
        for (cell, load) in observed {
            // Pairs only refresh cells the record pool still considers
            // occupied; feedback for vacated cells is history. Each pair
            // is weighted by its full downstream cost: query-side
            // discovery plus its share of the sync merge path.
            let w = load.pairs as f64 * self.config.sync_pair_weight;
            // The rate is the scale-free form of the same feedback:
            // pairs per record learned where the pairs were *measured*
            // transfers across splits, coalesces, and hotspot drift.
            let obs_rate = load.pairs as f64 / (load.records.max(1) as f64);
            let depth = self.refinement.depth(cell.base_cell());
            if cell.level == depth {
                if self.rec_estimates.contains_key(cell) {
                    *self.pair_estimates.entry(*cell).or_insert(0.0) += w;
                    self.blend_rate(*cell, obs_rate);
                }
            } else if cell.level > depth {
                // The base coalesced since: fold into the covering key.
                let step = cell.level - depth;
                let anc = GridKey::sub(cell.x >> step, cell.y >> step, depth);
                if self.rec_estimates.contains_key(&anc) {
                    *self.pair_estimates.entry(anc).or_insert(0.0) += w;
                    self.blend_rate(anc, obs_rate);
                }
            } else {
                // The base deepened since: apportion over the occupied
                // descendant leaves by record share.
                let step = depth - cell.level;
                let shares: Vec<(GridKey, f64)> = self
                    .rec_estimates
                    .iter()
                    .filter(|(k, _)| {
                        k.level == depth && k.x >> step == cell.x && k.y >> step == cell.y
                    })
                    .map(|(&k, &r)| (k, r))
                    .collect();
                let total: f64 = shares.iter().map(|&(_, s)| s).sum();
                if total > 0.0 {
                    for (k, s) in shares {
                        *self.pair_estimates.entry(k).or_insert(0.0) += w * s / total;
                        self.blend_rate(k, obs_rate);
                    }
                }
            }
        }
        self.pair_estimates.retain(|_, w| *w > 1e-3);
    }

    /// EWMA-blends one observed pair rate (pairs per record) into the
    /// per-cell coefficient; the first observation seeds it directly.
    fn blend_rate(&mut self, cell: GridKey, obs_rate: f64) {
        let d = self.config.decay;
        let rate = self.pair_rate.entry(cell).or_insert(obs_rate);
        *rate = d * *rate + (1.0 - d) * obs_rate;
    }

    /// Projects per-subtask loads under the routing currently in force
    /// and — when the hot threshold trips and the cooldown has passed —
    /// plans a migration. Returns `None` while no load has ever been
    /// observed.
    ///
    /// One-shot form of the two-phase boundary protocol: callers that can
    /// observe the outgoing window *between* the tree update and the
    /// placement (the pipeline's snapshot finalizer) should call
    /// [`LoadBalancer::refine_boundary`], fold their observations, then
    /// [`LoadBalancer::place`] — placement then plans on the exact record
    /// distribution of the window it is about to route, including the
    /// true per-leaf split of freshly refined cells.
    pub fn evaluate(&mut self) -> Option<BalanceOutcome> {
        let (split_cells, coalesced_cells, unpinned) = self.refine_boundary();
        self.place(split_cells, coalesced_cells, unpinned)
    }

    /// Phase 1 of the boundary: drives sub-cell split/coalesce so the
    /// refinement tree is current before the window's objects are keyed.
    /// Returns the splits, coalesces, and dropped pins to hand to
    /// [`LoadBalancer::place`].
    #[allow(clippy::type_complexity)]
    pub fn refine_boundary(&mut self) -> (Vec<(GridKey, u8)>, Vec<(GridKey, u8)>, u64) {
        if self.weights().is_empty() {
            return (Vec::new(), Vec::new(), 0);
        }
        self.maybe_refine()
    }

    /// Phase 2 of the boundary: projects per-subtask loads and plans the
    /// migration, folding the tree changes phase 1 reported into the
    /// outcome (a tree change forces a table swap even without one).
    pub fn place(
        &mut self,
        split_cells: Vec<(GridKey, u8)>,
        coalesced_cells: Vec<(GridKey, u8)>,
        unpinned: u64,
    ) -> Option<BalanceOutcome> {
        if self.weights().is_empty() && split_cells.is_empty() && coalesced_cells.is_empty() {
            return None;
        }
        // A fresh split spread the base's pair mass uniformly over its
        // leaves, but pairs concentrate where the records do. When the
        // caller folded the outgoing window's records between the phases,
        // the leaf record shares are exact — re-apportion the pair mass
        // by record share so placement doesn't pack the truly hot leaf
        // as if it were average. Without fresh observations the shares
        // are uniform and this is a no-op.
        for &(base, _) in &split_cells {
            let leaves: Vec<(GridKey, f64)> = self
                .pair_estimates
                .iter()
                .filter(|(k, _)| k.base_cell() == base)
                .map(|(&k, &w)| (k, w))
                .collect();
            let mass: f64 = leaves.iter().map(|&(_, w)| w).sum();
            if mass <= 0.0 {
                continue;
            }
            let shares: Vec<(GridKey, f64)> = leaves
                .iter()
                .map(|&(k, _)| {
                    let r = self.rec_estimates.get(&k).copied().unwrap_or(0.0);
                    (k, r)
                })
                .collect();
            let total: f64 = shares.iter().map(|&(_, s)| s).sum();
            if total <= 0.0 {
                continue;
            }
            for (k, s) in shares {
                self.pair_estimates.insert(k, mass * s / total);
            }
            self.pair_estimates.retain(|_, w| *w > 1e-3);
        }
        let estimates = self.weights();
        let n = self.parallelism;
        let mut loads = vec![0.0f64; n];
        for (cell, &w) in &estimates {
            loads[self.route(cell)] += w;
        }
        let total: f64 = loads.iter().sum();
        let mean = total / n as f64;
        let max = loads.iter().cloned().fold(0.0, f64::max);

        let hot = mean > 0.0 && max > self.config.theta * mean;
        let mut plan = if !hot || n < 2 || self.windows_since_swap <= self.config.cooldown_windows {
            None
        } else {
            self.plan_placement(&estimates, &mut loads, mean)
        };
        // A tree change without a migration plan still needs a table swap:
        // stale-level pins were dropped, and the swap is what lands the
        // new key space at the window boundary.
        if plan.is_none() && !(split_cells.is_empty() && coalesced_cells.is_empty()) {
            self.epoch += 1;
            self.cells_migrated += unpinned;
            plan = Some(RebalancePlan {
                epoch: self.epoch,
                assignments: self.table_assignments(),
                migrated: unpinned,
            });
        }
        Some(BalanceOutcome {
            max_load: max,
            mean_load: mean,
            plan,
            split_cells,
            coalesced_cells,
        })
    }

    /// Drives sub-cell split/coalesce for this boundary. Splits any
    /// current-depth leaf whose decayed weight exceeds `refine_split_frac ×`
    /// the fair share (one level per boundary — gradual, like the
    /// incremental migration); coalesces refined bases whose total weight
    /// fell below `refine_coalesce_frac ×` the fair share. Estimates are
    /// re-keyed (children get weight/4 on a split, parents the children's
    /// sum on a coalesce) and stale-level pins dropped. Returns the splits,
    /// the coalesces, and how many pins were dropped.
    #[allow(clippy::type_complexity)]
    fn maybe_refine(&mut self) -> (Vec<(GridKey, u8)>, Vec<(GridKey, u8)>, u64) {
        if self.config.refine_max_depth == 0 {
            return (Vec::new(), Vec::new(), 0);
        }
        let weights = self.weights();
        let total: f64 = weights.values().sum();
        let fair = total / self.parallelism as f64;
        if fair <= 0.0 {
            return (Vec::new(), Vec::new(), 0);
        }

        // Split pass: act only on keys at their base's current depth
        // (stale-level leftovers re-key below and settle next boundary).
        let mut to_split: BTreeSet<GridKey> = BTreeSet::new();
        for (&cell, &w) in &weights {
            let base = cell.base_cell();
            let depth = self.refinement.depth(base);
            if cell.level == depth
                && depth < self.config.refine_max_depth
                && w > self.config.refine_split_frac * fair
            {
                to_split.insert(base);
            }
        }
        let mut split_cells = Vec::new();
        let mut unpinned = 0u64;
        for base in to_split {
            let new_depth = self.refinement.split(base);
            self.rekey_base(base, new_depth, &mut unpinned);
            self.splits += 1;
            split_cells.push((base, new_depth));
        }

        // Coalesce pass: refined bases whose whole tier went cold shallow
        // one level (vacated bases walk back to depth 0 over a few
        // boundaries). Bases split this very boundary are exempt.
        let mut base_totals: HashMap<GridKey, f64> = HashMap::new();
        for (&cell, &w) in &weights {
            *base_totals.entry(cell.base_cell()).or_insert(0.0) += w;
        }
        let mut to_coalesce: BTreeSet<GridKey> = BTreeSet::new();
        for (base, depth) in self.refinement.iter() {
            if depth == 0 || split_cells.iter().any(|&(b, _)| b == base) {
                continue;
            }
            let base_total = base_totals.get(&base).copied().unwrap_or(0.0);
            if base_total < self.config.refine_coalesce_frac * fair {
                to_coalesce.insert(base);
            }
        }
        let mut coalesced_cells = Vec::new();
        for base in to_coalesce {
            let new_depth = self.refinement.coalesce(base);
            self.rekey_base(base, new_depth, &mut unpinned);
            self.coalesces += 1;
            coalesced_cells.push((base, new_depth));
        }
        (split_cells, coalesced_cells, unpinned)
    }

    /// Re-keys both estimate pools for `base` onto its new depth and drops
    /// pins at stale levels (the old keys stop receiving traffic the moment
    /// the finalizer expands the next window under the new tree).
    fn rekey_base(&mut self, base: GridKey, new_depth: u8, unpinned: &mut u64) {
        for pool in [
            &mut self.rec_estimates,
            &mut self.pair_estimates,
            &mut self.last_records,
        ] {
            let stale: Vec<(GridKey, f64)> = pool
                .iter()
                .filter(|(k, _)| k.base_cell() == base && k.level != new_depth)
                .map(|(&k, &w)| (k, w))
                .collect();
            for (key, w) in stale {
                pool.remove(&key);
                if key.level < new_depth {
                    // Deepened: spread the estimate uniformly over the
                    // children (the next observation corrects the skew).
                    let step = new_depth - key.level;
                    let children = 1i64 << step;
                    let share = w / (children * children) as f64;
                    for dy in 0..children {
                        for dx in 0..children {
                            let child =
                                GridKey::sub((key.x << step) + dx, (key.y << step) + dy, new_depth);
                            *pool.entry(child).or_insert(0.0) += share;
                        }
                    }
                } else {
                    // Shallowed: fold the children into their parent.
                    let step = key.level - new_depth;
                    let parent = GridKey::sub(key.x >> step, key.y >> step, new_depth);
                    *pool.entry(parent).or_insert(0.0) += w;
                }
            }
        }
        // The rate is intensive (pairs per record), unlike the additive
        // pools above: children inherit the parent's coefficient verbatim
        // on a split, and a coalesce folds the children back as their mean.
        let stale: Vec<(GridKey, f64)> = self
            .pair_rate
            .iter()
            .filter(|(k, _)| k.base_cell() == base && k.level != new_depth)
            .map(|(&k, &v)| (k, v))
            .collect();
        let mut folded: HashMap<GridKey, (f64, u32)> = HashMap::new();
        for (key, rate) in stale {
            self.pair_rate.remove(&key);
            if key.level < new_depth {
                let step = new_depth - key.level;
                let children = 1i64 << step;
                for dy in 0..children {
                    for dx in 0..children {
                        let child =
                            GridKey::sub((key.x << step) + dx, (key.y << step) + dy, new_depth);
                        self.pair_rate.entry(child).or_insert(rate);
                    }
                }
            } else {
                let step = key.level - new_depth;
                let parent = GridKey::sub(key.x >> step, key.y >> step, new_depth);
                let e = folded.entry(parent).or_insert((0.0, 0));
                e.0 += rate;
                e.1 += 1;
            }
        }
        for (parent, (sum, n)) in folded {
            self.pair_rate.insert(parent, sum / f64::from(n));
        }
        let before = self.assignments.len();
        self.assignments
            .retain(|k, _| !(k.base_cell() == base && k.level != new_depth));
        *unpinned += (before - self.assignments.len()) as u64;
    }

    /// Test/embedding convenience: fold one fully observed window
    /// (records + pairs arriving together) and evaluate.
    pub fn on_window_boundary(
        &mut self,
        observed: HashMap<GridKey, CellLoad>,
    ) -> Option<BalanceOutcome> {
        let records: HashMap<GridKey, u64> = observed
            .iter()
            .filter(|(_, l)| l.records > 0)
            .map(|(&c, l)| (c, l.records))
            .collect();
        self.observe_records(&records);
        self.observe_pairs_window(&observed);
        self.evaluate()
    }

    /// Incremental migration: repeatedly *split* the heaviest-loaded cell
    /// that fits off the hottest subtask onto the coldest one, keeping the
    /// rest of the placement untouched. Stability is the point — a
    /// from-scratch re-placement (LPT over every cell) rewrites hundreds
    /// of routes per epoch and chases its own estimation noise on a moving
    /// hotspot; moving a handful of cells from hot to cold each boundary
    /// tracks the drift with bounded churn. Returns `None` when no single
    /// move improves the split (e.g. one atomic cell *is* the hotspot —
    /// cell-granularity routing cannot split below a cell).
    fn plan_placement(
        &mut self,
        estimates: &HashMap<GridKey, f64>,
        loads: &mut [f64],
        mean: f64,
    ) -> Option<RebalancePlan> {
        let n = self.parallelism;
        // Cells grouped by their current subtask, heaviest first.
        let mut by_subtask: Vec<Vec<(GridKey, f64)>> = vec![Vec::new(); n];
        for (&cell, &w) in estimates {
            by_subtask[self.route(&cell)].push((cell, w));
        }
        for cells in &mut by_subtask {
            cells.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("loads are finite")
                    .then_with(|| (a.0.x, a.0.y, a.0.level).cmp(&(b.0.x, b.0.y, b.0.level)))
            });
        }

        let mut migrated = 0u64;
        // Budget: a few moves per boundary keeps any one swap cheap; the
        // next boundary continues where this one stopped.
        for _ in 0..4 * n {
            let hot = (0..n)
                .max_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
                .expect("n ≥ 1");
            let cold = (0..n)
                .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite"))
                .expect("n ≥ 1");
            let gap = loads[hot] - loads[cold];
            if loads[hot] <= self.config.theta * mean || gap <= f64::EPSILON {
                break;
            }
            // The best single move halves the gap: the cell whose weight
            // is closest to gap/2 (strictly below gap, or the move makes
            // things worse). `by_subtask[hot]` is sorted heaviest-first,
            // so scan until weights drop below the improvement bound.
            let pick = by_subtask[hot]
                .iter()
                .enumerate()
                .filter(|(_, (_, w))| *w < gap)
                .min_by(|(_, (_, a)), (_, (_, b))| {
                    (a - gap / 2.0)
                        .abs()
                        .partial_cmp(&(b - gap / 2.0).abs())
                        .expect("finite")
                })
                .map(|(i, &(cell, w))| (i, cell, w));
            let Some((idx, cell, w)) = pick else {
                break; // hot subtask holds one atomic mega-cell
            };
            by_subtask[hot].remove(idx);
            by_subtask[cold].push((cell, w));
            loads[hot] -= w;
            loads[cold] += w;
            if cold == subtask_for(stable_hash(&cell), n) {
                self.assignments.remove(&cell); // merged back to fallback
            } else {
                self.assignments.insert(cell, cold);
            }
            migrated += 1;
        }
        if migrated == 0 {
            return None;
        }

        // Housekeeping: drop pins for cells that have gone cold (decayed
        // out of the estimates — they carry no current traffic, so no
        // route effectively changes), and enforce the overlay budget by
        // unpinning the lightest cells. A budget eviction DOES change a
        // live route (a pin exists only where it differs from the hash
        // fallback), so it counts as a migration.
        self.assignments
            .retain(|cell, _| estimates.contains_key(cell));
        if self.assignments.len() > self.config.max_mapped_cells {
            let mut pinned: Vec<(GridKey, f64)> = self
                .assignments
                .keys()
                .map(|&c| (c, estimates.get(&c).copied().unwrap_or(0.0)))
                .collect();
            pinned.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite")
                    .then_with(|| (a.0.x, a.0.y, a.0.level).cmp(&(b.0.x, b.0.y, b.0.level)))
            });
            let excess = self.assignments.len() - self.config.max_mapped_cells;
            for (cell, _) in pinned.into_iter().take(excess) {
                self.assignments.remove(&cell);
                migrated += 1;
            }
        }

        self.epoch += 1;
        self.cells_migrated += migrated;
        self.windows_since_swap = 0;
        Some(RebalancePlan {
            epoch: self.epoch,
            assignments: self.table_assignments(),
            migrated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(records: u64, pairs: u64) -> CellLoad {
        CellLoad { records, pairs }
    }

    /// Cells that hash-route to one subtask at parallelism 4 — the
    /// adversarial placement a Zipf hotspot produces by accident.
    fn colliding_cells(n: usize, count: usize) -> Vec<GridKey> {
        let target = subtask_for(stable_hash(&GridKey::new(0, 0)), n);
        let mut out = vec![GridKey::new(0, 0)];
        let mut x = 1i64;
        while out.len() < count {
            let k = GridKey::new(x, 0);
            if subtask_for(stable_hash(&k), n) == target {
                out.push(k);
            }
            x += 1;
        }
        out
    }

    #[test]
    fn tracker_seals_windows_after_all_reports() {
        let t = LoadTracker::new(3);
        t.record_window(0, 0, 10);
        t.record_window(0, 1, 0);
        assert!(t.last_sealed().is_none(), "one report missing");
        t.record_window(0, 2, 5);
        assert_eq!(t.last_sealed(), Some((0, vec![10, 0, 5])));
        assert_eq!(t.sealed_windows().len(), 1);
    }

    #[test]
    fn tracker_drains_whole_windows_only() {
        let t = LoadTracker::new(2);
        t.record_cell(0, GridKey::new(1, 1), load(4, 6));
        t.record_cell(0, GridKey::new(1, 1), load(1, 0));
        t.record_cell(0, GridKey::new(2, 2), load(2, 0));
        t.record_window(0, 0, 11);
        assert!(
            t.drain_cells().is_empty(),
            "half-reported windows must not leak into the estimates"
        );
        t.record_window(0, 1, 2);
        let drained = t.drain_cells();
        assert_eq!(drained.len(), 1, "one whole window");
        let (time, cells) = &drained[0];
        assert_eq!(*time, 0);
        assert_eq!(cells[&GridKey::new(1, 1)].weight(), 11);
        assert_eq!(cells[&GridKey::new(2, 2)].weight(), 2);
        assert!(t.drain_cells().is_empty(), "drain resets");
    }

    #[test]
    fn imbalance_math() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
        assert_eq!(imbalance(&[10, 10]), 1.0);
        assert_eq!(imbalance(&[40, 0, 0, 0]), 4.0);
    }

    #[test]
    fn balancer_splits_colliding_hot_cells() {
        let n = 4;
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.2,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            },
            n,
        );
        let cells = colliding_cells(n, 4);
        let mut observed = HashMap::new();
        for &c in &cells {
            observed.insert(c, load(100, 100));
        }
        let outcome = b.on_window_boundary(observed).expect("load observed");
        assert!(
            outcome.max_load / outcome.mean_load > 1.2,
            "collisions must look hot"
        );
        let plan = outcome.plan.expect("rebalance triggered");
        assert_eq!(plan.epoch, 1);
        assert!(plan.migrated >= 3, "4 equal cells spread over 4 subtasks");

        // Re-projection under the new placement is balanced: feed the
        // same observation again and expect no further plan.
        let mut observed = HashMap::new();
        for &c in &cells {
            observed.insert(c, load(100, 100));
        }
        let outcome = b.on_window_boundary(observed).expect("load observed");
        assert!(
            outcome.plan.is_none(),
            "already balanced: max {} mean {}",
            outcome.max_load,
            outcome.mean_load
        );
        assert!(outcome.max_load / outcome.mean_load <= 1.2);
    }

    #[test]
    fn cooldown_defers_consecutive_swaps() {
        let n = 4;
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.2,
                cooldown_windows: 3,
                ..BalancerConfig::default()
            },
            n,
        );
        let cells = colliding_cells(n, 4);
        for round in 0..4 {
            let mut observed = HashMap::new();
            for &c in &cells {
                observed.insert(c, load(50, 0));
            }
            let outcome = b.on_window_boundary(observed).expect("load observed");
            if round < 3 {
                assert!(outcome.plan.is_none(), "round {round} inside cooldown");
            } else {
                assert!(outcome.plan.is_some(), "cooldown passed");
            }
        }
    }

    #[test]
    fn single_subtask_never_plans() {
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.0,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            },
            1,
        );
        let outcome = b
            .on_window_boundary(HashMap::from([(GridKey::new(0, 0), load(1000, 0))]))
            .expect("load observed");
        assert!(outcome.plan.is_none());
    }

    #[test]
    fn checkpoint_round_trips_placement() {
        let n = 4;
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.1,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            },
            n,
        );
        let cells = colliding_cells(n, 5);
        let mut observed = HashMap::new();
        for &c in &cells {
            observed.insert(c, load(80, 20));
        }
        b.on_window_boundary(observed).expect("load observed");
        assert_eq!(b.epoch(), 1);

        let ckpt = b.checkpoint();
        assert_eq!(ckpt.epoch, 1);
        assert!(ckpt
            .assignments
            .windows(2)
            .all(|w| (w[0].x, w[0].y, w[0].level) < (w[1].x, w[1].y, w[1].level)));
        let restored = LoadBalancer::from_checkpoint(BalancerConfig::default(), n, &ckpt);
        assert_eq!(restored.epoch(), 1);
        assert_eq!(restored.cells_migrated(), b.cells_migrated());
        assert_eq!(restored.table_assignments(), b.table_assignments());
        assert_eq!(restored.checkpoint(), ckpt, "canonical form is stable");
    }

    #[test]
    fn empty_observation_preserves_restored_estimates() {
        // The first post-restore boundary runs before any window has been
        // emitted: an empty observation must not wipe the checkpointed
        // model (that is the whole point of persisting the loads).
        let n = 4;
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.1,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            },
            n,
        );
        let mut observed = HashMap::new();
        for &c in &colliding_cells(n, 4) {
            observed.insert(c, load(80, 20));
        }
        b.on_window_boundary(observed).expect("load observed");
        let ckpt = b.checkpoint();
        assert!(!ckpt.loads.is_empty());

        let mut restored = LoadBalancer::from_checkpoint(BalancerConfig::default(), n, &ckpt);
        restored.observe_records(&HashMap::new());
        restored.observe_records(&HashMap::new());
        assert_eq!(
            restored.checkpoint().loads,
            ckpt.loads,
            "idle boundaries must not erode the restored model"
        );
    }

    #[test]
    fn tracker_history_is_bounded() {
        let t = LoadTracker::new(1);
        for time in 0..(super::MAX_WINDOW_HISTORY as u32 + 50) {
            t.record_cell(time, GridKey::new(0, 0), load(1, 0));
            t.record_window(time, 0, 1);
        }
        // Nothing drains in static mode; every buffer must stay bounded.
        assert_eq!(t.sealed_windows().len(), super::MAX_WINDOW_HISTORY);
        assert_eq!(
            t.sealed_cell_windows().len(),
            super::MAX_CELL_WINDOW_HISTORY
        );
        assert_eq!(t.drain_cells().len(), super::MAX_READY_BACKLOG);
        assert_eq!(
            t.sealed_windows().first().expect("nonempty").0,
            50,
            "oldest windows are the ones dropped"
        );
    }

    #[test]
    fn restore_at_smaller_parallelism_drops_dead_subtasks() {
        let ckpt = RoutingCheckpoint {
            epoch: 3,
            assignments: vec![
                CellAssignment {
                    x: 0,
                    y: 0,
                    level: 0,
                    subtask: 1,
                },
                CellAssignment {
                    x: 1,
                    y: 0,
                    level: 0,
                    subtask: 6,
                },
            ],
            loads: Vec::new(),
            cells_migrated: 2,
            refinements: Vec::new(),
            splits: 0,
            coalesces: 0,
        };
        let b = LoadBalancer::from_checkpoint(BalancerConfig::default(), 2, &ckpt);
        let table = b.table_assignments();
        assert_eq!(table.len(), 1, "subtask-6 pin dropped at parallelism 2");
        assert_eq!(table[&stable_hash(&GridKey::new(0, 0))], 1);
    }

    fn refine_config(max_depth: u8) -> BalancerConfig {
        BalancerConfig {
            theta: 1.2,
            cooldown_windows: 0,
            refine_max_depth: max_depth,
            refine_split_frac: 0.5,
            refine_coalesce_frac: 0.15,
            ..BalancerConfig::default()
        }
    }

    #[test]
    fn mega_cell_splits_into_sub_cells() {
        // One cell carries nearly all the load: cell-granularity routing
        // cannot split it (plan_placement's atomic-mega-cell bailout), but
        // refinement can.
        let n = 4;
        let mut b = LoadBalancer::new(refine_config(2), n);
        let hot = GridKey::new(0, 0);
        let outcome = b
            .on_window_boundary(HashMap::from([
                (hot, load(1000, 0)),
                (GridKey::new(5, 5), load(10, 0)),
            ]))
            .expect("load observed");
        assert_eq!(
            outcome.split_cells,
            vec![(hot, 1)],
            "the mega-cell must split to depth 1"
        );
        assert_eq!(b.refinement().depth(hot), 1);
        assert_eq!(b.splits(), 1);
        assert!(
            outcome.plan.is_some(),
            "a tree change lands through a table swap"
        );
        // The estimate re-keyed onto the four depth-1 leaves.
        let ckpt = b.checkpoint();
        let leaf_loads: Vec<_> = ckpt.loads.iter().filter(|l| l.level == 1).collect();
        assert_eq!(
            leaf_loads.len(),
            4,
            "4 children at depth 1: {:?}",
            ckpt.loads
        );
        assert_eq!(ckpt.refinements.len(), 1);
        assert_eq!(ckpt.splits, 1);
    }

    #[test]
    fn refinement_respects_max_depth() {
        let mut b = LoadBalancer::new(refine_config(1), 4);
        let hot = GridKey::new(0, 0);
        for _ in 0..4 {
            b.on_window_boundary(HashMap::from([(hot, load(1000, 0))]));
            // Feedback keeps arriving on the (stale) base key; the model
            // re-keys it, but depth must never exceed the cap.
            assert!(b.refinement().depth(hot) <= 1);
        }
        assert_eq!(b.refinement().max_depth(), 1);
    }

    #[test]
    fn cold_refined_cells_coalesce_under_hysteresis() {
        let n = 4;
        let mut b = LoadBalancer::new(refine_config(2), n);
        let hot = GridKey::new(0, 0);
        let steady = GridKey::new(7, 7);
        b.on_window_boundary(HashMap::from([
            (hot, load(1000, 0)),
            (steady, load(100, 0)),
        ]));
        assert_eq!(b.refinement().depth(hot), 1, "split while hot");
        // The hotspot moves away: only the steady cell keeps traffic. The
        // refined base decays below the coalesce fraction and walks back.
        let mut boundaries = 0;
        while b.refinement().depth(hot) > 0 && boundaries < 10 {
            b.on_window_boundary(HashMap::from([(steady, load(100, 0))]));
            boundaries += 1;
        }
        assert_eq!(b.refinement().depth(hot), 0, "cold cell re-coalesced");
        assert!(b.coalesces() >= 1);
        // (The steady cell may well have split meanwhile — once it carries
        // all the traffic it exceeds the split fraction itself.)
    }

    #[test]
    fn checkpoint_round_trips_refinement_tree() {
        let n = 4;
        let mut b = LoadBalancer::new(refine_config(2), n);
        let hot = GridKey::new(2, -3);
        b.on_window_boundary(HashMap::from([
            (hot, load(1000, 0)),
            (GridKey::new(5, 5), load(10, 0)),
        ]));
        assert!(b.refinement().depth(hot) >= 1);
        let ckpt = b.checkpoint();
        assert!(!ckpt.refinements.is_empty());

        // Restore at a *different* parallelism: the tree carries no subtask
        // references, so it survives intact.
        let restored = LoadBalancer::from_checkpoint(refine_config(2), 7, &ckpt);
        assert_eq!(restored.refinement(), b.refinement());
        assert_eq!(restored.splits(), b.splits());
        assert_eq!(restored.coalesces(), b.coalesces());
        assert_eq!(restored.checkpoint().refinements, ckpt.refinements);
    }

    #[test]
    fn refinement_off_never_splits() {
        let mut b = LoadBalancer::new(
            BalancerConfig {
                theta: 1.1,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            },
            4,
        );
        let outcome = b
            .on_window_boundary(HashMap::from([(GridKey::new(0, 0), load(10_000, 0))]))
            .expect("load observed");
        assert!(outcome.split_cells.is_empty());
        assert!(b.refinement().is_empty());
        assert_eq!(b.splits(), 0);
    }
}
