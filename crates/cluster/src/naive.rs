//! Brute-force reference implementations (test oracles).
//!
//! O(n²) range join and a from-first-principles DBSCAN. Slow but obviously
//! correct; every optimized path in this crate is validated against them.

use crate::query::{canonical, NeighborPair};
use icpe_types::{Cluster, ClusterSnapshot, DbscanParams, DistanceMetric, Snapshot};

/// O(n²) range join: every unordered pair within `eps`.
pub fn naive_range_join(
    snapshot: &Snapshot,
    eps: f64,
    metric: DistanceMetric,
) -> Vec<NeighborPair> {
    let e = &snapshot.entries;
    let mut out = Vec::new();
    for i in 0..e.len() {
        for j in (i + 1)..e.len() {
            if metric.within(&e[i].location, &e[j].location, eps) {
                out.push(canonical(e[i].id, e[j].id));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Textbook DBSCAN, straight from Definitions 8–9: compute each point's
/// ε-neighborhood by scanning, find cores, expand clusters by BFS over
/// density-reachability.
pub fn naive_dbscan(
    snapshot: &Snapshot,
    params: &DbscanParams,
    metric: DistanceMetric,
) -> ClusterSnapshot {
    let e = &snapshot.entries;
    let n = e.len();
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && metric.within(&e[i].location, &e[j].location, params.eps) {
                neighbors[i].push(j);
            }
        }
    }
    let self_count = usize::from(params.count_self);
    let is_core: Vec<bool> = neighbors
        .iter()
        .map(|ns| ns.len() + self_count >= params.min_pts)
        .collect();

    let mut assigned: Vec<Option<usize>> = vec![None; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if !is_core[start] || assigned[start].is_some() {
            continue;
        }
        // BFS over core connectivity, absorbing borders.
        let cluster_id = clusters.len();
        clusters.push(Vec::new());
        let mut queue = vec![start];
        assigned[start] = Some(cluster_id);
        while let Some(u) = queue.pop() {
            clusters[cluster_id].push(u);
            for &v in &neighbors[u] {
                if assigned[v].is_none() {
                    assigned[v] = Some(cluster_id);
                    if is_core[v] {
                        queue.push(v);
                    } else {
                        clusters[cluster_id].push(v);
                    }
                }
            }
        }
    }
    let mut snapshot_out = ClusterSnapshot {
        time: snapshot.time,
        clusters: clusters
            .into_iter()
            .map(|idxs| Cluster::new(idxs.into_iter().map(|i| e[i].id).collect()))
            .collect(),
    };
    snapshot_out.normalize();
    snapshot_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::{ObjectId, Point, Timestamp};

    fn snap(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    #[test]
    fn join_finds_close_pairs_only() {
        let s = snap(&[(1, 0.0, 0.0), (2, 0.5, 0.5), (3, 10.0, 10.0)]);
        let pairs = naive_range_join(&s, 1.0, DistanceMetric::Chebyshev);
        assert_eq!(pairs, vec![(ObjectId(1), ObjectId(2))]);
    }

    #[test]
    fn fig2_style_cluster() {
        // A tight blob of 5 + an isolated point; minPts = 3.
        let s = snap(&[
            (1, 0.0, 0.0),
            (2, 0.4, 0.0),
            (3, 0.0, 0.4),
            (4, 0.4, 0.4),
            (5, 0.2, 0.2),
            (9, 50.0, 50.0),
        ]);
        let params = DbscanParams::new(0.5, 3).unwrap();
        let cs = naive_dbscan(&s, &params, DistanceMetric::Chebyshev);
        assert_eq!(cs.clusters.len(), 1);
        assert_eq!(cs.clusters[0].len(), 5);
        assert!(!cs.clusters[0].contains(ObjectId(9)));
    }

    #[test]
    fn border_reachable_through_core_chain() {
        // Chebyshev, eps=1, minPts=3 (self-counting → degree ≥ 2 is core).
        // Line: a(0) b(1) c(2) d(3): b,c core (deg 2); a,d borders.
        let s = snap(&[(1, 0.0, 0.0), (2, 1.0, 0.0), (3, 2.0, 0.0), (4, 3.0, 0.0)]);
        let params = DbscanParams::new(1.0, 3).unwrap();
        let cs = naive_dbscan(&s, &params, DistanceMetric::Chebyshev);
        assert_eq!(cs.clusters.len(), 1);
        assert_eq!(cs.clusters[0].len(), 4);
    }

    #[test]
    fn all_noise_when_sparse() {
        let s = snap(&[(1, 0.0, 0.0), (2, 5.0, 5.0)]);
        let params = DbscanParams::new(1.0, 2).unwrap();
        let cs = naive_dbscan(&s, &params, DistanceMetric::Chebyshev);
        assert!(cs.clusters.is_empty());
    }
}
