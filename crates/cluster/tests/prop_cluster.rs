//! Property-based tests: all three clustering methods ≡ the naive oracle on
//! random point sets, across metrics and grid widths.

use icpe_cluster::naive::{naive_dbscan, naive_range_join};
use icpe_cluster::{GdcClusterer, RjcClusterer, SnapshotClusterer, SrjClusterer};
use icpe_types::{
    ClusterSnapshot, DbscanParams, DistanceMetric, ObjectId, Point, Snapshot, Timestamp,
};
use proptest::prelude::*;

fn snapshot_strategy(max_points: usize) -> impl Strategy<Value = Snapshot> {
    prop::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 0..max_points).prop_map(|pts| {
        Snapshot::from_pairs(
            Timestamp(0),
            pts.into_iter()
                .enumerate()
                .map(|(i, (x, y))| (ObjectId(i as u32), Point::new(x, y))),
        )
    })
}

fn metric_strategy() -> impl Strategy<Value = DistanceMetric> {
    prop::sample::select(vec![
        DistanceMetric::L1,
        DistanceMetric::L2,
        DistanceMetric::Chebyshev,
    ])
}

/// Cluster snapshots are comparable after normalization; border points can
/// legitimately attach to different (adjacent) clusters, so compare the
/// member multiset and the cluster count.
fn comparable(cs: &ClusterSnapshot) -> (usize, Vec<ObjectId>) {
    let mut members: Vec<ObjectId> = cs
        .clusters
        .iter()
        .flat_map(|c| c.members().iter().copied())
        .collect();
    members.sort_unstable();
    (cs.clusters.len(), members)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rjc_join_equals_naive(
        snap in snapshot_strategy(120),
        eps in 0.1f64..8.0,
        lg in 0.5f64..15.0,
        metric in metric_strategy(),
    ) {
        let rjc = RjcClusterer::new(lg, DbscanParams::new(eps, 3).unwrap(), metric);
        prop_assert_eq!(rjc.range_join(&snap), naive_range_join(&snap, eps, metric));
    }

    #[test]
    fn srj_join_equals_naive(
        snap in snapshot_strategy(100),
        eps in 0.1f64..8.0,
        lg in 0.5f64..15.0,
        metric in metric_strategy(),
    ) {
        let srj = SrjClusterer::new(lg, DbscanParams::new(eps, 3).unwrap(), metric);
        prop_assert_eq!(srj.range_join(&snap), naive_range_join(&snap, eps, metric));
    }

    #[test]
    fn gdc_join_equals_naive(
        snap in snapshot_strategy(100),
        eps in 0.1f64..8.0,
        metric in metric_strategy(),
    ) {
        let gdc = GdcClusterer::new(DbscanParams::new(eps, 3).unwrap(), metric);
        prop_assert_eq!(gdc.range_join(&snap), naive_range_join(&snap, eps, metric));
    }

    #[test]
    fn all_methods_cluster_identically(
        snap in snapshot_strategy(90),
        eps in 0.2f64..6.0,
        lg in 0.5f64..12.0,
        min_pts in 1usize..8,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let metric = DistanceMetric::Chebyshev;
        let rjc = RjcClusterer::new(lg, params, metric).cluster(&snap);
        let srj = SrjClusterer::new(lg, params, metric).cluster(&snap);
        let gdc = GdcClusterer::new(params, metric).cluster(&snap);
        let oracle = naive_dbscan(&snap, &params, metric);

        prop_assert_eq!(comparable(&rjc), comparable(&oracle));
        prop_assert_eq!(comparable(&srj), comparable(&oracle));
        prop_assert_eq!(comparable(&gdc), comparable(&oracle));
    }

    /// Core points (whose cluster assignment is deterministic) must be
    /// grouped identically by RJC and the oracle: same partition, not just
    /// the same membership multiset.
    #[test]
    fn rjc_core_partition_matches_oracle(
        snap in snapshot_strategy(80),
        eps in 0.2f64..6.0,
        min_pts in 2usize..6,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let metric = DistanceMetric::Chebyshev;
        let detailed = RjcClusterer::new(3.0, params, metric).cluster_detailed(&snap);
        let oracle = naive_dbscan(&snap, &params, metric);

        // Map each core to its cluster index in both partitions; the induced
        // equivalence relations over cores must coincide.
        let core_set: std::collections::HashSet<ObjectId> =
            detailed.cores.iter().copied().collect();
        let cluster_of = |cs: &ClusterSnapshot, id: ObjectId| -> Option<usize> {
            cs.clusters.iter().position(|c| c.contains(id))
        };
        for &a in &detailed.cores {
            for &b in &detailed.cores {
                if core_set.contains(&a) && core_set.contains(&b) {
                    let same_rjc =
                        cluster_of(&detailed.snapshot, a) == cluster_of(&detailed.snapshot, b);
                    let same_oracle = cluster_of(&oracle, a) == cluster_of(&oracle, b);
                    prop_assert_eq!(same_rjc, same_oracle,
                        "cores {:?} {:?} grouped differently", a, b);
                }
            }
        }
    }
}
