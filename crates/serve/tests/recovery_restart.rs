//! Serve-tier restart: ingest half the stream, suspend with a final
//! checkpoint (the SIGTERM path), restart from disk, finish the stream —
//! the subscribers across both incarnations together see exactly the
//! pattern set an uninterrupted server delivers: no duplicate, no missing
//! planted group, and cumulative counters that survive the restart.

use icpe_core::IcpeConfig;
use icpe_runtime::AlignerConfig;
use icpe_serve::recovery::CheckpointPolicy;
use icpe_serve::{client, Event, ServeConfig, Server, Subscription, Topic, WireRecord};
use icpe_types::Constraints;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn engine_config() -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(Constraints::new(4, 8, 4, 2).unwrap())
        .epsilon(2.5)
        .min_pts(4)
        .parallelism(3)
        .aligner(AlignerConfig {
            max_lag: 64,
            emit_empty: true,
            lateness: 8,
        })
        .build()
        .unwrap()
}

fn serve_config() -> ServeConfig {
    let mut config = ServeConfig::new(engine_config());
    // Single in-order producer per phase: no fleet to wait for.
    config.startup_grace = std::time::Duration::ZERO;
    // This test asserts exactly-once delivery, so the subscriber must
    // never be shed even when the whole test suite contends for CPU and
    // the end-of-stream flush bursts patterns faster than the collector
    // thread gets scheduled.
    config
}

/// Collects a subscription on a thread, draining raw lines (fast path)
/// and parsing afterwards.
fn collect(subscriber: Subscription) -> std::thread::JoinHandle<Vec<Event>> {
    std::thread::spawn(move || {
        subscriber
            .collect_lines()
            .unwrap()
            .iter()
            .map(|l| Event::parse(l).unwrap())
            .collect()
    })
}

fn generator() -> icpe_gen::GroupWalkGenerator {
    icpe_gen::GroupWalkGenerator::new(icpe_gen::GroupWalkConfig {
        num_objects: 30,
        num_groups: 3,
        group_size: 5,
        num_snapshots: 30,
        seed: 7,
        ..icpe_gen::GroupWalkConfig::default()
    })
}

/// The workload as wire records (interval 1.0 → time equals the tick).
fn wire_records() -> Vec<WireRecord> {
    generator()
        .traces()
        .to_gps_records()
        .iter()
        .map(|r| WireRecord {
            id: r.id.0,
            time: r.time.0 as f64,
            x: r.location.x,
            y: r.location.y,
        })
        .collect()
}

fn pattern_keys(events: &[Event]) -> Vec<(Vec<u32>, Vec<u32>)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Pattern(p) => Some((p.objects.clone(), p.times.clone())),
            Event::Snapshot(_) => None,
        })
        .collect()
}

/// Blocks until the server has registered `n` live subscribers. The
/// SUBSCRIBE line travels on the subscriber's own connection; producing
/// before it is processed races the server's shutdown path (which may
/// close not-yet-marked connections).
fn wait_for_subscribers(addr: &str, n: u64) {
    for _ in 0..2000 {
        if status_value(addr, "subscribers")
            .parse::<u64>()
            .unwrap_or(0)
            >= n
        {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("subscriber was never registered");
}

/// Blocks until the edge has accepted `n` records. `send_records` returns
/// once the bytes hit the kernel; the handler thread may not even have
/// registered yet — shutting down before ingestion quiesces would race the
/// records still in flight (exactly what a deliberate SIGTERM must not do).
fn wait_for_records(addr: &str, n: usize) {
    for _ in 0..4000 {
        if status_value(addr, "records_in") == n.to_string() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!(
        "ingestion never quiesced at {n} records (records_in={}, rejected={})",
        status_value(addr, "records_in"),
        status_value(addr, "records_rejected"),
    );
}

fn status_value(addr: &str, key: &str) -> String {
    client::fetch_status(addr)
        .unwrap()
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing status key {key}"))
}

#[test]
fn suspended_server_resumes_with_exactly_once_delivery() {
    let records = wire_records();
    let half = records.len() / 2;

    // Reference: one uninterrupted server over the full stream.
    let reference = {
        let server = Server::start(serve_config()).unwrap();
        let addr = server.local_addr().to_string();
        let subscriber = Subscription::connect(&addr, Topic::Patterns).unwrap();
        let collector = collect(subscriber);
        wait_for_subscribers(&addr, 1);
        client::send_records(&addr, records.iter().copied(), false).unwrap();
        wait_for_records(&addr, records.len());
        server.finish();
        let mut keys = pattern_keys(&collector.join().unwrap());
        keys.sort();
        keys
    };
    assert!(
        !reference.is_empty(),
        "workload must plant detectable groups"
    );

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "icpe-serve-restart-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::new(&dir)
        // Periodic checkpoints stay out of the way; suspend() writes the
        // final one this test restarts from.
        .every(std::time::Duration::from_secs(3600))
        .retain(2);

    // Incarnation A: first half of the stream, then SIGTERM-equivalent.
    let events_a = {
        let server = Server::start(serve_config().with_checkpoints(policy.clone())).unwrap();
        let addr = server.local_addr().to_string();
        let subscriber = Subscription::connect(&addr, Topic::Patterns).unwrap();
        let collector = collect(subscriber);
        wait_for_subscribers(&addr, 1);
        client::send_records(&addr, records[..half].iter().copied(), false).unwrap();
        wait_for_records(&addr, half);
        server.suspend().unwrap();
        collector.join().unwrap()
    };
    assert!(
        std::fs::read_dir(&dir).unwrap().count() > 0,
        "suspend wrote a checkpoint file"
    );

    // Incarnation B: restarts from disk, finishes the stream.
    let (events_b, records_in_after_restart) = {
        let server = Server::start(serve_config().with_checkpoints(policy)).unwrap();
        let addr = server.local_addr().to_string();
        assert_ne!(
            status_value(&addr, "checkpoint_seq"),
            "none",
            "restarted server reports the checkpoint it resumed from"
        );
        let subscriber = Subscription::connect(&addr, Topic::Patterns).unwrap();
        let collector = collect(subscriber);
        wait_for_subscribers(&addr, 1);
        client::send_records(&addr, records[half..].iter().copied(), false).unwrap();
        // Counters are cumulative across the restart (observability must
        // not reset to zero) — poll until the second half is consumed.
        wait_for_records(&addr, records.len());
        let records_in = status_value(&addr, "records_in");
        server.finish();
        (collector.join().unwrap(), records_in)
    };
    assert_eq!(
        records_in_after_restart,
        records.len().to_string(),
        "records_in resumed from the checkpointed value"
    );

    // Across both incarnations: exactly the reference patterns, once each.
    let mut got = pattern_keys(&events_a);
    got.extend(pattern_keys(&events_b));
    let got_len = got.len();
    got.sort();
    let deduped: BTreeSet<_> = got.iter().cloned().collect();
    assert_eq!(deduped.len(), got_len, "a pattern was delivered twice");
    assert_eq!(
        got, reference,
        "restarted pair diverged from the uninterrupted server"
    );

    // Every planted group made it through the restart.
    let delivered_sets: BTreeSet<Vec<u32>> = got.iter().map(|(objs, _)| objs.clone()).collect();
    for group in generator().planted_groups() {
        let ids: Vec<u32> = group.iter().map(|o| o.0).collect();
        assert!(
            delivered_sets.contains(&ids),
            "planted group {ids:?} missing after restart"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_checkpoints_appear_in_status_and_on_disk() {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "icpe-serve-periodic-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::new(&dir)
        .every(std::time::Duration::from_millis(25))
        .retain(2);
    let server = Server::start(serve_config().with_checkpoints(policy)).unwrap();
    let addr = server.local_addr().to_string();

    // A little traffic, then wait for the periodic worker to land a few.
    client::send_records(
        &addr,
        (0..40u32).map(|t| WireRecord {
            id: 1 + t % 4,
            time: (t / 4) as f64,
            x: 0.1 * t as f64,
            y: 0.0,
        }),
        false,
    )
    .unwrap();
    let mut written = 0u64;
    for _ in 0..400 {
        written = status_value(&addr, "checkpoints_written").parse().unwrap();
        if written >= 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(written >= 3, "periodic checkpoints never landed: {written}");
    assert_ne!(status_value(&addr, "checkpoint_seq"), "none");

    // Retention: at most `retain` files (plus no stray tmp files).
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let live = files.iter().filter(|f| f.ends_with(".icpe")).count();
    assert!((1..=2).contains(&live), "retention violated: {files:?}");
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
