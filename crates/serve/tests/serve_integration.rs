//! End-to-end tests of the serve subsystem over real TCP on an ephemeral
//! port: producer → server → pipeline → subscriber, with planted
//! ground-truth groups so the expected patterns are known exactly.

use icpe_core::{IcpeConfig, IcpePipeline};
use icpe_gen::{DisorderConfig, GroupWalkConfig, GroupWalkGenerator};
use icpe_runtime::AlignerConfig;
use icpe_serve::loadgen::{self, LoadConfig};
use icpe_serve::{client, Event, ServeConfig, Server, Subscription, Topic};
use icpe_types::Constraints;
use std::collections::{BTreeSet, HashMap};
use std::io::Write;
use std::net::TcpStream;

fn engine_config(parallelism: usize) -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(Constraints::new(4, 8, 4, 2).unwrap())
        .epsilon(2.5)
        .min_pts(4)
        .parallelism(parallelism)
        // Generous alignment allowances: the producers race (bounded by
        // the server's skew window) *and* scramble their own streams, so
        // give first records comfortable headroom before their snapshot
        // seals.
        .aligner(AlignerConfig {
            max_lag: 64,
            emit_empty: true,
            lateness: 16,
        })
        .build()
        .unwrap()
}

fn planted_generator(num_snapshots: u32) -> GroupWalkGenerator {
    GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 30,
        num_groups: 3,
        group_size: 5,
        num_snapshots,
        seed: 7,
        ..GroupWalkConfig::default()
    })
}

/// Pattern events keyed by (objects, times) — the exactly-once identity.
fn pattern_keys(events: &[Event]) -> Vec<(Vec<u32>, Vec<u32>)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Pattern(p) => Some((p.objects.clone(), p.times.clone())),
            Event::Snapshot(_) => None,
        })
        .collect()
}

#[test]
fn planted_patterns_reach_subscriber_exactly_once() {
    let generator = planted_generator(30);
    let traces = generator.traces();

    // Ground truth: the same records through the in-process batch pipeline.
    let reference = IcpePipeline::run(&engine_config(3), traces.to_gps_records());
    let mut expected: Vec<(Vec<u32>, Vec<u32>)> = reference
        .patterns
        .iter()
        .map(|p| {
            (
                p.objects.iter().map(|o| o.0).collect(),
                p.times.times().iter().map(|t| t.0).collect(),
            )
        })
        .collect();
    expected.sort();
    assert!(
        !expected.is_empty(),
        "workload must plant detectable groups"
    );

    let server = Server::start(ServeConfig::new(engine_config(3))).unwrap();
    let addr = server.local_addr().to_string();

    let subscriber = Subscription::connect(&addr, Topic::All).unwrap();
    let collector = std::thread::spawn(move || subscriber.collect_events().unwrap());

    // Three producers, both wire formats, cross-object disorder (per-object
    // order preserved — the §4 stream model).
    let report = loadgen::run(
        &addr,
        &traces,
        &LoadConfig {
            producers: 3,
            json_fraction: 0.34,
            disorder: Some(DisorderConfig {
                delay_probability: 0.3,
                max_displacement: 40,
                seed: 11,
            }),
            ..LoadConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.records_sent, 30 * 30);

    let metrics = server.finish();
    let events = collector.join().unwrap();

    // Stamping accepted everything: no record was late or malformed.
    assert_eq!(metrics.late_records, 0, "disorder was within lateness");
    assert_eq!(metrics.snapshots, 30, "every snapshot sealed");

    // Every reference pattern arrives exactly once, and nothing else.
    let mut got = pattern_keys(&events);
    let got_len = got.len();
    got.sort();
    let deduped: BTreeSet<_> = got.iter().cloned().collect();
    assert_eq!(deduped.len(), got_len, "no pattern delivered twice");
    assert_eq!(
        got, expected,
        "subscriber saw exactly the reference patterns"
    );

    // The planted groups are among the delivered object sets.
    let delivered_sets: BTreeSet<Vec<u32>> = got.iter().map(|(objs, _)| objs.clone()).collect();
    for group in planted_generator(30).planted_groups() {
        let ids: Vec<u32> = group.iter().map(|o| o.0).collect();
        assert!(
            delivered_sets.contains(&ids),
            "planted group {ids:?} missing from {delivered_sets:?}"
        );
    }

    // Snapshot events arrived in order and account for every pattern.
    let sealed: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            Event::Snapshot(s) => Some(s.time),
            Event::Pattern(_) => None,
        })
        .collect();
    assert_eq!(sealed, (0..30).collect::<Vec<_>>());
    let per_window: HashMap<u32, usize> =
        events.iter().fold(HashMap::new(), |mut acc, e| match e {
            Event::Pattern(p) => {
                *acc.entry(*p.times.last().unwrap()).or_insert(0) += 1;
                acc
            }
            Event::Snapshot(_) => acc,
        });
    // A snapshot event counts the patterns that closed at its time and
    // were delivered before the seal notice; patterns flushed at end of
    // stream arrive after their window's seal, so the count is a lower
    // bound of the per-window total.
    let mut counted = 0usize;
    for event in &events {
        if let Event::Snapshot(s) = event {
            assert!(
                s.patterns as usize <= per_window.get(&s.time).copied().unwrap_or(0),
                "snapshot {} says {} patterns, window only had {:?}",
                s.time,
                s.patterns,
                per_window.get(&s.time)
            );
            counted += s.patterns as usize;
        }
    }
    assert!(counted <= got_len);
}

#[test]
fn slow_subscriber_is_shed_without_stalling_ingestion() {
    // Tiny population, many ticks: a long event stream (patterns +
    // snapshot notices) that overflows both the slow subscriber's queue
    // and the TCP buffers in front of it.
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 6,
        num_groups: 1,
        group_size: 4,
        num_snapshots: 16_000,
        seed: 13,
        ..GroupWalkConfig::default()
    });
    let traces = generator.traces();

    let engine = IcpeConfig::builder()
        .constraints(Constraints::new(3, 8, 4, 2).unwrap())
        .epsilon(2.5)
        .min_pts(3)
        .parallelism(2)
        .build()
        .unwrap();
    let mut config = ServeConfig::new(engine);
    // Must exceed the pipeline sink's burst size (one channel's worth of
    // events can be published back-to-back after a scheduling hiccup —
    // and the sharded aligner head runs more subtask threads, so under a
    // loaded test machine those hiccups pile higher) so the draining
    // subscriber survives, while the wedged subscriber — whose TCP
    // buffers absorb only a couple thousand events before its writer
    // blocks — still overflows it well within the run.
    config.subscriber_queue = 8192;
    let server = Server::start(config).unwrap();
    let addr = server.local_addr().to_string();

    // The slow subscriber subscribes and then never reads.
    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.write_all(b"SUBSCRIBE all\n").unwrap();
    slow.flush().unwrap();

    // The fast subscriber drains continuously on its own thread — raw
    // lines, parsed after the drain, so reading outpaces the publisher.
    let fast = Subscription::connect(&addr, Topic::All).unwrap();
    let collector = std::thread::spawn(move || fast.collect_lines().unwrap());

    let report = loadgen::run(
        &addr,
        &traces,
        &LoadConfig {
            producers: 2,
            ..LoadConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.records_sent, 6 * 16_000);

    // The wedged subscriber must be shed while the run is still going —
    // poll the live counter (shedding happens when its queue overflows).
    let mut shed = 0;
    for _ in 0..2000 {
        shed = server.shed_count();
        if shed >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(shed >= 1, "wedged subscriber was never shed");
    // The shed is visible on the STATUS wire, not just in-process.
    let status_shed: u64 = client::fetch_status(&addr)
        .unwrap()
        .iter()
        .find(|(k, _)| k == "subscribers_shed")
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert!(status_shed >= 1, "STATUS reports subscribers_shed=0");

    // finish() must complete despite the wedged subscriber: ingestion and
    // sealing never waited on it.
    let metrics = server.finish();
    assert_eq!(metrics.snapshots, 16_000, "every snapshot sealed");

    let lines = collector.join().unwrap();
    let events: Vec<Event> = lines.iter().map(|l| Event::parse(l).unwrap()).collect();
    let snapshots_seen = events
        .iter()
        .filter(|e| matches!(e, Event::Snapshot(_)))
        .count();
    assert_eq!(snapshots_seen, 16_000, "fast subscriber saw every snapshot");
    drop(slow);
}

#[test]
fn shed_subscriber_backfills_sealed_patterns_via_events_since_seq() {
    use icpe_serve::EventFollower;

    // Small population, many ticks: enough event volume that the wedged
    // subscriber's TCP buffers fill and the hub sheds it, while a
    // rate-capped load keeps the journal growing slower than the follower
    // polls (its cursor must stay inside the bounded event ring for the
    // backfill to be gapless).
    let generator = GroupWalkGenerator::new(GroupWalkConfig {
        num_objects: 6,
        num_groups: 1,
        group_size: 4,
        num_snapshots: 4_000,
        seed: 13,
        ..GroupWalkConfig::default()
    });
    let traces = generator.traces();

    let engine = || {
        IcpeConfig::builder()
            .constraints(Constraints::new(3, 8, 4, 2).unwrap())
            .epsilon(2.5)
            .min_pts(3)
            .parallelism(2)
            .build()
            .unwrap()
    };
    // Reference multiset from the in-process batch pipeline (includes the
    // end-of-stream flush, so it is a superset of what seals mid-run).
    let mut reference: HashMap<(Vec<u32>, Vec<u32>), usize> = HashMap::new();
    for p in &IcpePipeline::run(&engine(), traces.to_gps_records()).patterns {
        let key = (
            p.objects.iter().map(|o| o.0).collect(),
            p.times.times().iter().map(|t| t.0).collect(),
        );
        *reference.entry(key).or_insert(0) += 1;
    }

    let mut config = ServeConfig::new(engine());
    config.subscriber_queue = 64;
    config.journal_patterns = true;
    let server = Server::start(config).unwrap();
    let addr = server.local_addr().to_string();

    // The doomed subscriber: subscribes to everything and never reads.
    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.write_all(b"SUBSCRIBE all\n").unwrap();
    slow.flush().unwrap();

    let load_addr = addr.clone();
    let loader = std::thread::spawn(move || {
        loadgen::run(
            &load_addr,
            &traces,
            &LoadConfig {
                producers: 2,
                // Paced so pattern_sealed production stays well under the
                // journal ring's eviction horizon even when this test
                // shares one CPU with the rest of the suite.
                target_records_per_s: Some(6_000),
                ..LoadConfig::default()
            },
        )
        .unwrap()
    });

    // The shed subscriber's recovery path: page the journal over the wire
    // with `EVENTS since-seq`, cursor advancing per page — reconnecting
    // (with retry/backoff built into the follower) instead of holding a
    // stream open.
    let mut follower = EventFollower::new(&addr, 0);
    let mut backfilled: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut saw_shed_event = false;
    let ingest_page =
        |lines: Vec<String>, backfilled: &mut Vec<(Vec<u32>, Vec<u32>)>, saw_shed: &mut bool| {
            for line in lines {
                let v: serde::Value = serde_json::from_str(&line).unwrap();
                let event = v
                    .field("event", "obs event")
                    .ok()
                    .and_then(|e| e.as_str())
                    .unwrap_or_default()
                    .to_string();
                match event.as_str() {
                    "pattern_sealed" => {
                        let ids = |name: &str| -> Vec<u32> {
                            v.field(name, "pattern_sealed")
                                .unwrap()
                                .as_seq()
                                .unwrap()
                                .iter()
                                .map(|x| match x {
                                    serde::Value::Int(i) => *i as u32,
                                    other => panic!("non-integer id {other:?}"),
                                })
                                .collect()
                        };
                        backfilled.push((ids("objects"), ids("times")));
                    }
                    "subscriber_shed" => *saw_shed = true,
                    _ => {}
                }
            }
        };
    // Page as fast as the wire allows while the run is live — the cursor
    // must stay within one ring capacity of the journal head through event
    // bursts — and defer JSON parsing until the stream quiesces.
    let mut pages: Vec<Vec<String>> = Vec::new();
    while !loader.is_finished() {
        pages.push(follower.poll().unwrap());
    }
    let report = loader.join().unwrap();
    assert_eq!(report.records_sent, 6 * 4_000);
    // Quiesce: keep paging until the journal stops growing.
    let mut idle_polls = 0;
    while idle_polls < 10 {
        let page = follower.poll().unwrap();
        if page.is_empty() {
            idle_polls += 1;
        } else {
            idle_polls = 0;
            pages.push(page);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    for page in pages {
        ingest_page(page, &mut backfilled, &mut saw_shed_event);
    }

    // The wedged subscriber was shed, and the shed itself is visible in
    // the journal the reconnected consumer paged through.
    assert!(server.shed_count() >= 1, "wedged subscriber was never shed");
    assert!(
        saw_shed_event,
        "subscriber_shed missing from EVENTS backfill"
    );

    // Exactly once: the journal emits one pattern_sealed per delivered
    // pattern (same code path as the patterns_emitted counter), so a
    // gapless, duplicate-free backfill matches the counter exactly.
    let emitted: u64 = client::fetch_status(&addr)
        .unwrap()
        .iter()
        .find(|(k, _)| k == "patterns_emitted")
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert!(!backfilled.is_empty(), "no patterns sealed mid-run");
    assert_eq!(
        backfilled.len() as u64,
        emitted,
        "EVENTS backfill saw every sealed pattern exactly once"
    );
    // And every backfilled pattern is a real one: within the reference
    // run's multiset (the flush-tail of the reference may exceed what
    // sealed mid-run, never the reverse).
    let mut seen: HashMap<(Vec<u32>, Vec<u32>), usize> = HashMap::new();
    for key in &backfilled {
        *seen.entry(key.clone()).or_insert(0) += 1;
    }
    for (key, count) in &seen {
        assert!(
            reference.get(key).is_some_and(|r| r >= count),
            "backfilled pattern {key:?} (x{count}) not in the reference run"
        );
    }

    server.finish();
    drop(slow);
}

#[test]
fn status_endpoint_reports_counters_and_rejects() {
    let server = Server::start(ServeConfig::new(engine_config(2))).unwrap();
    let addr = server.local_addr().to_string();

    // 3 valid records (one per tick so none is a stale duplicate), plus
    // malformed and stale lines that must be counted as rejected.
    client::send_lines(
        &addr,
        [
            "1,0.0,1.0,2.0".to_string(),
            "1,1.0,1.5,2.0".to_string(),
            "not,a,record,x".to_string(),
            "{\"id\":1,\"time\":2.0,\"x\":2.0,\"y\":2.0}".to_string(),
            "1,0.5,9.9,9.9".to_string(), // stale: tick 0 already reported
        ],
    )
    .unwrap();

    // Poll until the handler has consumed the lines.
    let mut status = Vec::new();
    for _ in 0..500 {
        status = client::fetch_status(&addr).unwrap();
        let records_in = status
            .iter()
            .find(|(k, _)| k == "records_in")
            .map(|(_, v)| v.clone());
        if records_in.as_deref() == Some("3") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let get = |key: &str| {
        status
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing status key {key}"))
    };
    assert_eq!(get("service"), "icpe-serve");
    assert_eq!(get("records_in"), "3");
    assert_eq!(get("records_rejected"), "2");
    assert_eq!(get("ingest_frontier"), "2");
    assert!(get("uptime_s").parse::<f64>().unwrap() >= 0.0);
    assert!(get("records_per_s").parse::<f64>().unwrap() > 0.0);
    // The hub health gauge is part of the stable STATUS surface: no
    // subscriber is connected, so the fullest queue is empty.
    assert_eq!(get("max_subscriber_queue_depth"), "0");
    assert_eq!(get("subscribers_shed"), "0");
    // The sharded aligner head reports on the same stable surface: shard
    // count follows the engine parallelism and nothing arrived late. (The
    // chain gauge is published asynchronously by the router thread, so only
    // its range is stable here: object 1 is at most one chain.)
    assert_eq!(get("aligner_shards"), "2");
    assert!(get("aligner_chains").parse::<u64>().unwrap() <= 1);
    assert_eq!(get("aligner_late_dropped"), "0");
    assert!(get("aligner_shard_imbalance").parse::<f64>().unwrap() >= 1.0);

    // In-process view agrees with the wire view.
    let text = server.status_text();
    assert!(text.contains("records_in=3"), "{text}");
    server.finish();
}

/// Golden test for the METRICS exposition: the metric-family names are a
/// stable interface (dashboards key on them), every pipeline stage and
/// exchange hop reports, and every sample value is finite — a NaN from a
/// zero-duration rate would poison Prometheus `rate()` queries.
#[test]
fn metrics_and_events_endpoints_expose_the_pipeline() {
    // Single in-order producer, tight alignment: windows seal (and the
    // journal fills) while the server is still up to be scraped.
    let engine = IcpeConfig::builder()
        .constraints(Constraints::new(4, 8, 4, 2).unwrap())
        .epsilon(2.5)
        .min_pts(4)
        .parallelism(2)
        .aligner(AlignerConfig {
            max_lag: 8,
            emit_empty: true,
            lateness: 0,
        })
        .build()
        .unwrap();
    let server = Server::start(ServeConfig::new(engine)).unwrap();
    let addr = server.local_addr().to_string();

    let traces = planted_generator(20).traces();
    let report = loadgen::run(
        &addr,
        &traces,
        &LoadConfig {
            producers: 1,
            ..LoadConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.records_sent, 30 * 20);

    // Poll until detection has progressed end-to-end: the enumerate stage
    // registered samples and at least one window-sealed journal entry is
    // retained.
    let mut text = String::new();
    let mut journal: Vec<String> = Vec::new();
    for _ in 0..2000 {
        text = client::fetch_metrics(&addr).unwrap();
        journal = client::fetch_events(&addr, 0).unwrap();
        if text.contains("stage=\"enumerate\"")
            && journal.iter().any(|l| l.contains("window_sealed"))
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Stable family names, all present with their exposition type headers.
    for family in [
        "# TYPE icpe_stage_batches_in_total counter",
        "# TYPE icpe_stage_records_in_total counter",
        "# TYPE icpe_stage_records_out_total counter",
        "# TYPE icpe_stage_batch_seconds histogram",
        "# TYPE icpe_exchange_blocked_seconds_total counter",
        "# TYPE icpe_exchange_queue_depth gauge",
        "# TYPE icpe_serve_records_in_total counter",
        "# TYPE icpe_serve_records_rejected_total counter",
        "# TYPE icpe_serve_snapshots_sealed_total counter",
        "# TYPE icpe_serve_subscribers_shed_total counter",
        "# TYPE icpe_serve_max_subscriber_queue_depth gauge",
        "# TYPE icpe_serve_throughput_tps gauge",
        "# TYPE icpe_serve_avg_latency_seconds gauge",
    ] {
        assert!(text.contains(family), "missing family: {family}\n{text}");
    }

    // Every stage of the RJC topology reports: the sharded head (frontier
    // router, aligner shards, snapshot-merge finalizer), the keyed grid
    // stages, the exchange-only sink hop, and both tree finalizers.
    for stage in [
        "align-route",
        "align-shard",
        "snap-merge-final",
        "grid-query",
        "sync-shard",
        "sync-merge-final",
        "enumerate",
        "sink",
    ] {
        assert!(
            text.contains(&format!("stage=\"{stage}\"")),
            "stage {stage} missing from exposition:\n{text}"
        );
    }

    // Every sample line parses as a finite number (`le="+Inf"` lives in the
    // label set, never in the value position).
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap();
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
        assert!(parsed.is_finite(), "non-finite sample: {line}");
    }

    // The journal is NDJSON with strictly increasing seqs, and the
    // since-seq cursor pages precisely.
    assert!(!journal.is_empty());
    let seq_of = |line: &str| -> u64 {
        let rest = line.strip_prefix("{\"seq\":").expect("journal line shape");
        rest[..rest.find(',').unwrap()].parse().unwrap()
    };
    let seqs: Vec<u64> = journal.iter().map(|l| seq_of(l)).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs increase: {seqs:?}"
    );
    let rest = client::fetch_events(&addr, seqs[0]).unwrap();
    assert_eq!(rest.len(), journal.len() - 1, "since-seq skips the cursor");
    assert!(
        client::fetch_events(&addr, *seqs.last().unwrap())
            .unwrap()
            .is_empty(),
        "nothing beyond the newest seq"
    );

    // Counters only move forward: a second scrape never regresses.
    let records_sample = |t: &str| -> f64 {
        t.lines()
            .find(|l| l.starts_with("icpe_serve_records_in_total"))
            .and_then(|l| l.rsplit(' ').next())
            .unwrap()
            .parse()
            .unwrap()
    };
    let again = client::fetch_metrics(&addr).unwrap();
    assert!(records_sample(&again) >= records_sample(&text));
    assert_eq!(records_sample(&again), 600.0, "all sent records counted");

    server.finish();
}

#[test]
fn idle_producer_with_no_valid_records_does_not_throttle_the_fleet() {
    let server = Server::start(ServeConfig::new(engine_config(1))).unwrap();
    let addr = server.local_addr().to_string();

    // A connection that registers as a producer (its first line is a
    // record-shaped parse failure) but never contributes a valid record.
    // It must not count as "slowest producer" in the skew window.
    let mut idle = TcpStream::connect(&addr).unwrap();
    idle.write_all(b"not,a,valid,record\n").unwrap();
    idle.flush().unwrap();

    // A healthy producer streams 200 ticks; with the idle producer pinning
    // the fleet at tick 0 this would crawl at ~2 s per admitted record.
    let started = std::time::Instant::now();
    client::send_records(
        &addr,
        (0..200).map(|t| icpe_serve::WireRecord {
            id: 1,
            time: t as f64,
            x: 0.0,
            y: 0.0,
        }),
        false,
    )
    .unwrap();
    let mut accepted = String::new();
    for _ in 0..2000 {
        accepted = client::fetch_status(&addr)
            .unwrap()
            .iter()
            .find(|(k, _)| k == "records_in")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if accepted == "200" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(accepted, "200");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(8),
        "ingest crawled: {:?} — idle producer throttled the fleet",
        started.elapsed()
    );
    drop(idle);
    server.finish();
}

#[test]
fn producer_with_persistent_garbage_is_disconnected() {
    let mut config = ServeConfig::new(engine_config(1));
    config.max_consecutive_parse_errors = 8;
    let server = Server::start(config).unwrap();
    let addr = server.local_addr().to_string();

    // 50 garbage lines: the connection must be dropped at the 8th, and the
    // server must stay healthy for well-formed producers afterwards.
    client::send_lines(&addr, (0..50).map(|i| format!("garbage line {i}"))).unwrap();
    client::send_lines(&addr, ["7,0.0,1.0,1.0".to_string()]).unwrap();

    let mut accepted = String::new();
    for _ in 0..500 {
        let status = client::fetch_status(&addr).unwrap();
        accepted = status
            .iter()
            .find(|(k, _)| k == "records_in")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if accepted == "1" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(accepted, "1", "server kept serving after garbage producer");
    let rejected: u64 = client::fetch_status(&addr)
        .unwrap()
        .iter()
        .find(|(k, _)| k == "records_rejected")
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert!((8..=50).contains(&rejected), "rejected {rejected} lines");
    server.finish();
}
