//! The wire protocol: newline-delimited text on every connection.
//!
//! A connection's first line decides its role:
//!
//! * `SUBSCRIBE <topic>` — the connection becomes a **subscriber**; the
//!   server streams NDJSON events (`topic` ∈ `patterns`, `snapshots`,
//!   `all`) until the subscriber disconnects, is shed, or the stream ends.
//! * `STATUS` — the server writes a `key=value` status block and closes.
//! * anything else — the connection is a **producer**; every line is one
//!   GPS record in either of two formats, auto-detected per line:
//!   * CSV: `obj_id,time,x,y` (`time` in seconds since the stream epoch);
//!   * NDJSON: `{"id":7,"time":12.5,"x":1.0,"y":2.0}`.
//!
//! Producers are fire-and-forget: malformed or stale lines are counted and
//! skipped, valid records are stamped (discretized time + per-trajectory
//! *last time* link) and pushed into the pipeline. Event lines pushed to
//! subscribers are NDJSON:
//!
//! * `{"event":"pattern","objects":[1,2,3],"times":[4,5,6,7]}`
//! * `{"event":"snapshot","time":9,"patterns":2}`

use icpe_types::Pattern;
use serde::{Deserialize, Serialize};

/// A record as it appears on the wire, before stamping/validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireRecord {
    /// Reporting object id.
    pub id: u32,
    /// Clock time in seconds since the stream epoch.
    pub time: f64,
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// Why an ingest line was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad record line: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl WireRecord {
    /// Parses one ingest line (CSV or NDJSON, auto-detected) and validates
    /// that the coordinates and time are finite.
    pub fn parse(line: &str) -> Result<WireRecord, ParseError> {
        let line = line.trim();
        let record = if line.starts_with('{') {
            serde_json::from_str::<WireRecord>(line)
                .map_err(|e| ParseError(format!("ndjson: {e}")))?
        } else {
            let mut parts = line.split(',');
            let mut next = |what: &str| {
                parts
                    .next()
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| ParseError(format!("missing field `{what}`")))
            };
            let id = next("obj_id")?
                .parse::<u32>()
                .map_err(|e| ParseError(format!("obj_id: {e}")))?;
            let time = next("time")?
                .parse::<f64>()
                .map_err(|e| ParseError(format!("time: {e}")))?;
            let x = next("x")?
                .parse::<f64>()
                .map_err(|e| ParseError(format!("x: {e}")))?;
            let y = next("y")?
                .parse::<f64>()
                .map_err(|e| ParseError(format!("y: {e}")))?;
            if parts.next().is_some() {
                return Err(ParseError("too many fields".into()));
            }
            WireRecord { id, time, x, y }
        };
        if !record.time.is_finite() || !record.x.is_finite() || !record.y.is_finite() {
            return Err(ParseError("non-finite time or coordinates".into()));
        }
        Ok(record)
    }

    /// Renders the CSV form of this record.
    pub fn to_csv(&self) -> String {
        format!("{},{},{},{}", self.id, self.time, self.x, self.y)
    }

    /// Renders the NDJSON form of this record.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("wire record serializes")
    }
}

/// What a subscriber asked to receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topic {
    /// Pattern events only.
    Patterns,
    /// Snapshot-sealed events only.
    Snapshots,
    /// Everything.
    All,
}

impl Topic {
    /// Parses the argument of a `SUBSCRIBE` line.
    pub fn parse(s: &str) -> Option<Topic> {
        match s.trim().to_ascii_lowercase().as_str() {
            "patterns" => Some(Topic::Patterns),
            "snapshots" => Some(Topic::Snapshots),
            "all" | "" => Some(Topic::All),
            _ => None,
        }
    }

    /// Whether events of `kind` are delivered under this subscription.
    pub fn accepts(&self, kind: EventKind) -> bool {
        matches!(
            (self, kind),
            (Topic::All, _)
                | (Topic::Patterns, EventKind::Pattern)
                | (Topic::Snapshots, EventKind::Snapshot)
        )
    }
}

/// Discriminates the two event-line kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A co-movement pattern.
    Pattern,
    /// A snapshot-sealed notice.
    Snapshot,
}

/// A pattern event as serialized to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternEvent {
    /// Always `"pattern"`.
    pub event: String,
    /// The co-moving object ids, ascending.
    pub objects: Vec<u32>,
    /// The witnessing time sequence (discretized ticks).
    pub times: Vec<u32>,
}

impl PatternEvent {
    /// Builds the event for a detected pattern.
    pub fn from_pattern(p: &Pattern) -> PatternEvent {
        PatternEvent {
            event: "pattern".to_string(),
            objects: p.objects.iter().map(|o| o.0).collect(),
            times: p.times.times().iter().map(|t| t.0).collect(),
        }
    }
}

/// A snapshot-sealed event as serialized to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEvent {
    /// Always `"snapshot"`.
    pub event: String,
    /// The sealed snapshot's discretized time.
    pub time: u32,
    /// Patterns whose witnessing sequence ended at this snapshot.
    pub patterns: u32,
}

/// A parsed subscriber event line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A pattern event.
    Pattern(PatternEvent),
    /// A snapshot-sealed event.
    Snapshot(SnapshotEvent),
}

impl Event {
    /// Parses one NDJSON event line from a subscription stream.
    pub fn parse(line: &str) -> Result<Event, ParseError> {
        let value =
            serde_json::parse(line.trim()).map_err(|e| ParseError(format!("event: {e}")))?;
        let kind = value
            .field("event", "Event")
            .ok()
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| ParseError("missing `event` discriminator".into()))?;
        match kind.as_str() {
            "pattern" => serde_json::from_value::<PatternEvent>(&value)
                .map(Event::Pattern)
                .map_err(|e| ParseError(format!("pattern event: {e}"))),
            "snapshot" => serde_json::from_value::<SnapshotEvent>(&value)
                .map(Event::Snapshot)
                .map_err(|e| ParseError(format!("snapshot event: {e}"))),
            other => Err(ParseError(format!("unknown event kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::{ObjectId, TimeSequence};

    #[test]
    fn csv_lines_parse() {
        let r = WireRecord::parse("7,12.5,1.0,-2.25").unwrap();
        assert_eq!(
            r,
            WireRecord {
                id: 7,
                time: 12.5,
                x: 1.0,
                y: -2.25
            }
        );
        // Whitespace tolerated, integer time tolerated.
        assert_eq!(WireRecord::parse(" 3 , 4 , 5 , 6 ").unwrap().id, 3);
    }

    #[test]
    fn json_lines_parse_and_round_trip() {
        let r = WireRecord::parse(r#"{"id":7,"time":12.5,"x":1.0,"y":-2.25}"#).unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(WireRecord::parse(&r.to_json()).unwrap(), r);
        assert_eq!(WireRecord::parse(&r.to_csv()).unwrap(), r);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "1,2,3",
            "1,2,3,4,5",
            "x,2,3,4",
            "1,nan,3,4",
            "1,inf,3,4",
            "{\"id\":1}",
            "{not json",
            "-1,2,3,4",
        ] {
            assert!(WireRecord::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn topics_filter_events() {
        assert_eq!(Topic::parse("patterns"), Some(Topic::Patterns));
        assert_eq!(Topic::parse(" ALL "), Some(Topic::All));
        assert_eq!(Topic::parse("nope"), None);
        assert!(Topic::Patterns.accepts(EventKind::Pattern));
        assert!(!Topic::Patterns.accepts(EventKind::Snapshot));
        assert!(Topic::All.accepts(EventKind::Snapshot));
    }

    #[test]
    fn events_round_trip() {
        let p = Pattern::new(
            vec![ObjectId(2), ObjectId(1)],
            TimeSequence::from_raw([3, 4, 5]).unwrap(),
        );
        let event = PatternEvent::from_pattern(&p);
        let line = serde_json::to_string(&event).unwrap();
        assert_eq!(Event::parse(&line).unwrap(), Event::Pattern(event));

        let s = SnapshotEvent {
            event: "snapshot".into(),
            time: 9,
            patterns: 2,
        };
        let line = serde_json::to_string(&s).unwrap();
        assert_eq!(Event::parse(&line).unwrap(), Event::Snapshot(s));
        assert!(Event::parse("{\"event\":\"mystery\"}").is_err());
    }
}
