//! Server-side counters behind the `STATUS` endpoint.

use icpe_core::{AlignerStatus, SyncStatus};
use icpe_runtime::{PipelineMetrics, RoutingStatus};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Lock-free counters shared by every connection handler. Pipeline-side
/// numbers (latency, sealing frontier, late drops) live in
/// [`PipelineMetrics`]; this struct holds the network-edge view.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Producer connections currently open.
    pub producers: AtomicU64,
    /// Subscriber connections currently open.
    pub subscribers: AtomicU64,
    /// Valid records accepted into the pipeline.
    pub records_in: AtomicU64,
    /// Ingest micro-batches pushed into the pipeline (each batch is one
    /// channel operation and one stamping-lock hold; `records_in /
    /// ingest_batches` is the mean batch fill).
    pub ingest_batches: AtomicU64,
    /// Lines refused (malformed, non-finite, stale/duplicate tick).
    pub records_rejected: AtomicU64,
    /// Malformed lines moved to the dead-letter ring (a subset of
    /// `records_rejected`: parse failures only, not stale ticks).
    pub records_quarantined: AtomicU64,
    /// Bytes read from producer sockets.
    pub bytes_in: AtomicU64,
    /// Pattern events published.
    pub patterns_out: AtomicU64,
    /// Snapshot-sealed events published.
    pub snapshots_sealed: AtomicU64,
    /// Subscribers disconnected for not keeping up.
    pub subscribers_shed: AtomicU64,
    /// Newest discretized tick accepted at the edge, stored as `tick + 1`
    /// (0 = nothing ingested yet).
    ingested_tick: AtomicU64,
    /// Checkpoints written since start (periodic + final).
    pub checkpoints_written: AtomicU64,
    /// Last written checkpoint's sequence number, stored as `seq + 1`
    /// (0 = none yet).
    last_checkpoint_seq: AtomicU64,
}

impl ServerStats {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        ServerStats {
            started: Instant::now(),
            producers: AtomicU64::new(0),
            subscribers: AtomicU64::new(0),
            records_in: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            records_rejected: AtomicU64::new(0),
            records_quarantined: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            patterns_out: AtomicU64::new(0),
            snapshots_sealed: AtomicU64::new(0),
            subscribers_shed: AtomicU64::new(0),
            ingested_tick: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            last_checkpoint_seq: AtomicU64::new(0),
        }
    }

    /// Counts one ingest micro-batch of `records` stamped records accepted
    /// into the pipeline. Called under the stamping lock so the counters
    /// stay consistent with the checkpoint cut.
    pub fn note_batch(&self, records: u64) {
        self.records_in.fetch_add(records, Ordering::Relaxed);
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successfully written checkpoint for the `STATUS` block.
    pub fn note_checkpoint(&self, seq: u64) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
        self.last_checkpoint_seq
            .fetch_max(seq + 1, Ordering::Relaxed);
    }

    /// Marks the checkpoint this instance resumed from (without counting it
    /// as written by this instance).
    pub fn restore_checkpoint_seq(&self, seq: u64) {
        self.last_checkpoint_seq
            .fetch_max(seq + 1, Ordering::Relaxed);
    }

    /// Last written checkpoint's sequence number, if any.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        match self.last_checkpoint_seq.load(Ordering::Relaxed) {
            0 => None,
            s => Some(s - 1),
        }
    }

    /// The raw `tick + 1` edge-frontier encoding (checkpoint capture).
    pub fn raw_ingested_tick(&self) -> u64 {
        self.ingested_tick.load(Ordering::Relaxed)
    }

    /// Rehydrates the edge frontier from its raw `tick + 1` encoding.
    pub fn restore_ingested_tick(&self, raw: u64) {
        self.ingested_tick.fetch_max(raw, Ordering::Relaxed);
    }

    /// Advances the edge's newest-accepted-tick gauge.
    pub fn note_ingested_tick(&self, tick: u32) {
        self.ingested_tick
            .fetch_max(tick as u64 + 1, Ordering::Relaxed);
    }

    /// Newest discretized tick accepted at the edge, if any.
    pub fn ingested_tick(&self) -> Option<u32> {
        match self.ingested_tick.load(Ordering::Relaxed) {
            0 => None,
            t => Some((t - 1) as u32),
        }
    }

    /// Seconds since the server started.
    pub fn uptime(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Renders the `STATUS` response: one `key=value` per line, stable keys,
    /// merging the network-edge counters with the pipeline's live metrics
    /// and — when the engine runs a keyed grid stage — the routing layer's
    /// epoch/load-balance gauges, the sharded sync merge path's dedup/seal
    /// gauges, and the sharded aligner head's chain/frontier gauges.
    pub fn render(
        &self,
        pipeline: &PipelineMetrics,
        routing: Option<RoutingStatus>,
        sync: Option<SyncStatus>,
        align: Option<AlignerStatus>,
        max_subscriber_queue_depth: usize,
    ) -> String {
        let uptime = self.uptime();
        let records_in = self.records_in.load(Ordering::Relaxed);
        let progress = pipeline.progress();
        let report = pipeline.report();
        let mut out = String::with_capacity(512);
        let mut line = |k: &str, v: String| {
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
            out.push('\n');
        };
        line("service", "icpe-serve".into());
        line("uptime_s", format!("{uptime:.3}"));
        line(
            "producers",
            self.producers.load(Ordering::Relaxed).to_string(),
        );
        line(
            "subscribers",
            self.subscribers.load(Ordering::Relaxed).to_string(),
        );
        line("records_in", records_in.to_string());
        line(
            "records_rejected",
            self.records_rejected.load(Ordering::Relaxed).to_string(),
        );
        line(
            "records_quarantined",
            self.records_quarantined.load(Ordering::Relaxed).to_string(),
        );
        line("records_late", progress.late_records.to_string());
        line(
            "records_per_s",
            format!("{:.1}", records_in as f64 / uptime.max(1e-9)),
        );
        // Ingest vectorization: how many records ride each stamping-lock
        // hold / pipeline push. 1.0 = record-at-a-time (idle producers);
        // approaching the configured ingest batch = saturated edge.
        let batches = self.ingest_batches.load(Ordering::Relaxed);
        line("ingest_batches", batches.to_string());
        line(
            "mean_batch_fill",
            format!("{:.2}", records_in as f64 / batches.max(1) as f64),
        );
        line(
            "bytes_in",
            self.bytes_in.load(Ordering::Relaxed).to_string(),
        );
        line(
            "snapshots_sealed",
            self.snapshots_sealed.load(Ordering::Relaxed).to_string(),
        );
        let patterns_out = self.patterns_out.load(Ordering::Relaxed);
        line("patterns_emitted", patterns_out.to_string());
        line(
            "patterns_per_s",
            format!("{:.1}", patterns_out as f64 / uptime.max(1e-9)),
        );
        line(
            "subscribers_shed",
            self.subscribers_shed.load(Ordering::Relaxed).to_string(),
        );
        // Proactive delivery health: how deep the fullest subscriber queue
        // currently is. Climbing toward the configured queue bound means a
        // consumer is about to be shed — visible before the disconnect.
        line(
            "max_subscriber_queue_depth",
            max_subscriber_queue_depth.to_string(),
        );
        // Per-stage frontiers: what the edge accepted, what the aligner
        // released into clustering, what enumeration completed. The gap
        // between neighbors is each stage's lag in snapshots.
        let edge = self.ingested_tick();
        let fmt_frontier = |t: Option<u32>| t.map_or_else(|| "none".into(), |t| t.to_string());
        line("ingest_frontier", fmt_frontier(edge));
        line("aligned_frontier", fmt_frontier(progress.max_ingested));
        line("sealed_frontier", fmt_frontier(progress.max_sealed));
        line(
            "align_lag_snapshots",
            match (edge, progress.max_ingested) {
                (Some(e), Some(a)) => e.saturating_sub(a).to_string(),
                (Some(e), None) => (e + 1).to_string(),
                _ => "0".into(),
            },
        );
        line("detect_lag_snapshots", progress.lag().to_string());
        line("in_flight_snapshots", progress.in_flight.to_string());
        // The sharded aligner head: how the trajectory chains spread across
        // the shards and how far apart the per-shard frontiers run (a wide
        // spread means one shard's slow trajectories hold the global seal
        // back). Same always-render contract as the routing/sync keys — a
        // GDC deployment runs the serial head and renders them zeroed.
        let a = align.unwrap_or_default();
        line("aligner_shards", a.shards.to_string());
        line("aligner_chains", a.chains.to_string());
        line("aligner_max_shard_chains", a.max_shard_chains.to_string());
        line("aligner_late_dropped", a.late_dropped.to_string());
        line("aligner_sealed_frontier", a.sealed_up_to.to_string());
        line(
            "aligner_min_shard_frontier",
            a.min_shard_frontier.to_string(),
        );
        line(
            "aligner_max_shard_frontier",
            a.max_shard_frontier.to_string(),
        );
        line("aligner_shard_imbalance", format!("{:.3}", a.imbalance()));
        // Durability: how far recovery could rewind to, and how often
        // checkpoints land.
        line(
            "checkpoint_seq",
            self.last_checkpoint_seq()
                .map_or_else(|| "none".into(), |s| s.to_string()),
        );
        line(
            "checkpoints_written",
            self.checkpoints_written.load(Ordering::Relaxed).to_string(),
        );
        // Adaptive routing: which placement epoch is live, how much has
        // moved, and how evenly the grid stage's last window spread. All
        // zeros under static routing that never measured a window; absent
        // keys would break `key=value` consumers, so a grid-less engine
        // (GDC) renders the same keys with zeroed values.
        let r = routing.unwrap_or_default();
        line("routing_epoch", r.epoch.to_string());
        line("cells_mapped", r.mapped_keys.to_string());
        line("cells_migrated", r.cells_migrated.to_string());
        line("max_subtask_load", format!("{:.1}", r.max_subtask_load));
        line("mean_subtask_load", format!("{:.1}", r.mean_subtask_load));
        line("subtask_imbalance", format!("{:.3}", r.imbalance()));
        // Sub-cell refinement: how many base cells are split, how deep,
        // and the cumulative split/coalesce churn. Zeroed when refinement
        // is off (the default) — same always-render contract as above.
        line("refined_cells", r.refined_cells.to_string());
        line("max_refine_depth", r.max_refine_depth.to_string());
        line("cell_splits", r.splits.to_string());
        line("cell_coalesces", r.coalesces.to_string());
        // The sharded GridSync merge path: how the dedup load spreads
        // across the shards and how deep the aggregation tree runs. Same
        // always-render contract as the routing keys — a grid-less engine
        // (GDC) renders them zeroed.
        let s = sync.unwrap_or_default();
        line("sync_shards", s.shards.to_string());
        line("sync_fanin", s.fanin.to_string());
        line("sync_tree_levels", s.levels.to_string());
        line("sync_pairs_merged", s.pairs_merged.to_string());
        line("sync_duplicates", s.duplicates.to_string());
        line("sync_windows_sealed", s.windows_sealed.to_string());
        line("sync_max_shard_load", s.max_shard_load.to_string());
        line("sync_mean_shard_load", format!("{:.1}", s.mean_shard_load));
        line("sync_shard_imbalance", format!("{:.3}", s.imbalance()));
        line(
            "avg_latency_ms",
            format!("{:.3}", report.avg_latency.as_secs_f64() * 1e3),
        );
        line(
            "p95_latency_ms",
            format!("{:.3}", report.p95_latency.as_secs_f64() * 1e3),
        );
        line("throughput_tps", format!("{:.1}", report.throughput_tps));
        out
    }

    /// Renders the network-edge counters in Prometheus text exposition
    /// format — the serve-level half of the `METRICS` endpoint (the
    /// pipeline's per-stage families come from its
    /// [`icpe_runtime::MetricRegistry`]). Every value is finite: the
    /// `NaN` that [`MetricsReport::throughput_tps`] reports before two
    /// snapshots complete renders as `0`, because `NaN` is not a valid
    /// exposition-format sample and would poison scrapers.
    ///
    /// [`MetricsReport::throughput_tps`]: icpe_runtime::MetricsReport
    pub fn render_prometheus(
        &self,
        pipeline: &PipelineMetrics,
        max_subscriber_queue_depth: usize,
    ) -> String {
        let report = pipeline.report();
        let progress = pipeline.progress();
        let mut out = String::with_capacity(1024);
        let mut family = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str(&format!("# HELP icpe_serve_{name} {help}\n"));
            out.push_str(&format!("# TYPE icpe_serve_{name} {kind}\n"));
            out.push_str(&format!("icpe_serve_{name} {value}\n"));
        };
        let count = |v: u64| v.to_string();
        family(
            "records_in_total",
            "counter",
            "Valid records accepted into the pipeline.",
            count(self.records_in.load(Ordering::Relaxed)),
        );
        family(
            "records_rejected_total",
            "counter",
            "Lines refused (malformed, non-finite, stale/duplicate tick).",
            count(self.records_rejected.load(Ordering::Relaxed)),
        );
        family(
            "records_quarantined_total",
            "counter",
            "Malformed producer lines moved to the dead-letter ring.",
            count(self.records_quarantined.load(Ordering::Relaxed)),
        );
        family(
            "records_late_total",
            "counter",
            "Records dropped for arriving after their snapshot sealed.",
            count(progress.late_records),
        );
        family(
            "ingest_batches_total",
            "counter",
            "Ingest micro-batches pushed into the pipeline.",
            count(self.ingest_batches.load(Ordering::Relaxed)),
        );
        family(
            "bytes_in_total",
            "counter",
            "Bytes read from producer sockets.",
            count(self.bytes_in.load(Ordering::Relaxed)),
        );
        family(
            "patterns_emitted_total",
            "counter",
            "Pattern events published.",
            count(self.patterns_out.load(Ordering::Relaxed)),
        );
        family(
            "snapshots_sealed_total",
            "counter",
            "Snapshot-sealed events published.",
            count(self.snapshots_sealed.load(Ordering::Relaxed)),
        );
        family(
            "subscribers_shed_total",
            "counter",
            "Subscribers disconnected for not keeping up.",
            count(self.subscribers_shed.load(Ordering::Relaxed)),
        );
        family(
            "checkpoints_written_total",
            "counter",
            "Checkpoints written since start (periodic + final).",
            count(self.checkpoints_written.load(Ordering::Relaxed)),
        );
        family(
            "producers",
            "gauge",
            "Producer connections currently open.",
            count(self.producers.load(Ordering::Relaxed)),
        );
        family(
            "subscribers",
            "gauge",
            "Subscriber connections currently open.",
            count(self.subscribers.load(Ordering::Relaxed)),
        );
        family(
            "max_subscriber_queue_depth",
            "gauge",
            "Depth of the fullest subscriber queue (shedding nears at the configured bound).",
            count(max_subscriber_queue_depth as u64),
        );
        family(
            "in_flight_snapshots",
            "gauge",
            "Snapshots currently between ingest and completion.",
            count(progress.in_flight as u64),
        );
        family(
            "uptime_seconds",
            "gauge",
            "Seconds since the server started.",
            format!("{:.3}", self.uptime()),
        );
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        family(
            "throughput_tps",
            "gauge",
            "Snapshots sealed per second (0 until two snapshots complete).",
            format!("{:.3}", finite(report.throughput_tps)),
        );
        family(
            "avg_latency_seconds",
            "gauge",
            "Mean end-to-end snapshot latency.",
            format!("{:.9}", finite(report.avg_latency.as_secs_f64())),
        );
        family(
            "p95_latency_seconds",
            "gauge",
            "95th-percentile end-to-end snapshot latency.",
            format!("{:.9}", finite(report.p95_latency.as_secs_f64())),
        );
        out
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses a rendered status block back into `(key, value)` pairs — the
/// client-side half of the `STATUS` exchange.
pub fn parse_status(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_stable_keys() {
        let stats = ServerStats::new();
        stats.records_in.store(42, Ordering::Relaxed);
        let pipeline = PipelineMetrics::new();
        let text = stats.render(&pipeline, None, None, None, 0);
        let kv = parse_status(&text);
        let get = |k: &str| {
            kv.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing key {k}"))
        };
        assert_eq!(get("service"), "icpe-serve");
        assert_eq!(get("records_in"), "42");
        assert_eq!(get("ingest_frontier"), "none");
        assert_eq!(get("detect_lag_snapshots"), "0");
        assert!(get("records_per_s").parse::<f64>().unwrap() > 0.0);

        stats.note_ingested_tick(6);
        stats.note_ingested_tick(3);
        assert_eq!(stats.ingested_tick(), Some(6));
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let frontier = kv.iter().find(|(k, _)| k == "ingest_frontier").unwrap();
        assert_eq!(frontier.1, "6");
        let lag = kv.iter().find(|(k, _)| k == "align_lag_snapshots").unwrap();
        assert_eq!(lag.1, "7", "7 snapshots admitted, none aligned yet");
    }

    #[test]
    fn render_includes_throughput_gauges() {
        let stats = ServerStats::new();
        let pipeline = PipelineMetrics::new();
        // No batches yet: fill renders 0 (guarded division), rates render.
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("ingest_batches"), "0");
        assert_eq!(get("mean_batch_fill"), "0.00");
        assert_eq!(get("patterns_per_s"), "0.0");

        stats.note_batch(48);
        stats.note_batch(16);
        stats.patterns_out.store(7, Ordering::Relaxed);
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("records_in"), "64");
        assert_eq!(get("ingest_batches"), "2");
        assert_eq!(get("mean_batch_fill"), "32.00");
        assert!(get("records_per_s").parse::<f64>().unwrap() > 0.0);
        assert!(get("patterns_per_s").parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn render_includes_sync_gauges() {
        let stats = ServerStats::new();
        let pipeline = PipelineMetrics::new();
        // Without a sync path the keys still render, zeroed.
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("sync_shards"), "0");
        assert_eq!(get("sync_pairs_merged"), "0");
        assert_eq!(get("sync_shard_imbalance"), "1.000");

        let sync = SyncStatus {
            shards: 8,
            fanin: 4,
            levels: 1,
            pairs_merged: 4096,
            duplicates: 17,
            windows_sealed: 120,
            max_shard_load: 90,
            mean_shard_load: 60.0,
        };
        let kv = parse_status(&stats.render(&pipeline, None, Some(sync), None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("sync_shards"), "8");
        assert_eq!(get("sync_fanin"), "4");
        assert_eq!(get("sync_tree_levels"), "1");
        assert_eq!(get("sync_pairs_merged"), "4096");
        assert_eq!(get("sync_duplicates"), "17");
        assert_eq!(get("sync_windows_sealed"), "120");
        assert_eq!(get("sync_max_shard_load"), "90");
        assert_eq!(get("sync_mean_shard_load"), "60.0");
        assert_eq!(get("sync_shard_imbalance"), "1.500");
    }

    #[test]
    fn render_includes_aligner_gauges() {
        let stats = ServerStats::new();
        let pipeline = PipelineMetrics::new();
        // Without a sharded head (GDC) the keys still render, zeroed.
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("aligner_shards"), "0");
        assert_eq!(get("aligner_chains"), "0");
        assert_eq!(get("aligner_sealed_frontier"), "0");
        assert_eq!(get("aligner_shard_imbalance"), "1.000");

        let align = AlignerStatus {
            shards: 4,
            chains: 36,
            max_shard_chains: 18,
            late_dropped: 7,
            sealed_up_to: 21,
            min_shard_frontier: 20,
            max_shard_frontier: 24,
        };
        let kv = parse_status(&stats.render(&pipeline, None, None, Some(align), 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("aligner_shards"), "4");
        assert_eq!(get("aligner_chains"), "36");
        assert_eq!(get("aligner_max_shard_chains"), "18");
        assert_eq!(get("aligner_late_dropped"), "7");
        assert_eq!(get("aligner_sealed_frontier"), "21");
        assert_eq!(get("aligner_min_shard_frontier"), "20");
        assert_eq!(get("aligner_max_shard_frontier"), "24");
        assert_eq!(get("aligner_shard_imbalance"), "2.000");
    }

    #[test]
    fn render_includes_routing_gauges() {
        let stats = ServerStats::new();
        let pipeline = PipelineMetrics::new();
        // Without a routing layer the keys still render, zeroed.
        let kv = parse_status(&stats.render(&pipeline, None, None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("routing_epoch"), "0");
        assert_eq!(get("cells_migrated"), "0");
        assert_eq!(get("subtask_imbalance"), "1.000");
        assert_eq!(get("refined_cells"), "0");
        assert_eq!(get("cell_splits"), "0");

        let routing = RoutingStatus {
            epoch: 3,
            mapped_keys: 5,
            cells_migrated: 11,
            max_subtask_load: 60.0,
            mean_subtask_load: 20.0,
            refined_cells: 2,
            max_refine_depth: 1,
            splits: 4,
            coalesces: 2,
        };
        let kv = parse_status(&stats.render(&pipeline, Some(routing), None, None, 0));
        let get = |k: &str| kv.iter().find(|(key, _)| key == k).unwrap().1.clone();
        assert_eq!(get("routing_epoch"), "3");
        assert_eq!(get("cells_mapped"), "5");
        assert_eq!(get("cells_migrated"), "11");
        assert_eq!(get("max_subtask_load"), "60.0");
        assert_eq!(get("mean_subtask_load"), "20.0");
        assert_eq!(get("subtask_imbalance"), "3.000");
        assert_eq!(get("refined_cells"), "2");
        assert_eq!(get("max_refine_depth"), "1");
        assert_eq!(get("cell_splits"), "4");
        assert_eq!(get("cell_coalesces"), "2");
    }
}
