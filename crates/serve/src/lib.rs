//! # icpe-serve — the network-facing ingestion & pattern-delivery edge
//!
//! Everything upstream of this crate is an in-process dataflow; this crate
//! makes it a *service*. GPS records arrive over TCP from many concurrent
//! producers, flow through the live [`icpe_core::IcpePipeline`], and
//! detected co-movement patterns are pushed to TCP subscribers with bounded
//! latency — the paper's deployment story (devices → Flink job → consumers)
//! with `std::net` in place of the cluster fabric.
//!
//! ## Wire protocol (newline-delimited text; see [`protocol`])
//!
//! A connection's first line picks its role:
//!
//! | first line          | role       | then |
//! |---------------------|------------|------|
//! | a record line       | producer   | one record per line, CSV `obj_id,time,x,y` or NDJSON `{"id":…,"time":…,"x":…,"y":…}`, auto-detected per line |
//! | `SUBSCRIBE <topic>` | subscriber | server streams NDJSON events (`patterns`, `snapshots`, or `all`) |
//! | `STATUS`            | status     | server writes a `key=value` block and closes |
//! | `METRICS`           | metrics    | server writes the per-stage/per-exchange metric families in Prometheus text exposition format and closes |
//! | `EVENTS [since]`    | events     | server writes the retained journal entries with `seq > since` (one JSON object per line) and closes |
//!
//! Producers are stamped and validated server-side: clock times are
//! discretized to ticks ([`icpe_types::Discretizer`]), each record gets its
//! trajectory's §4 *last time* link, and malformed / non-finite / stale
//! lines are counted and dropped — the pipeline only ever sees well-formed,
//! per-trajectory-monotone records.
//!
//! ## Backpressure & shedding
//!
//! * **Ingest is lossless and blocking**: the pipeline's input channel is
//!   bounded, so when detection falls behind, producer handlers block,
//!   kernel TCP buffers fill, and producers throttle (end-to-end flow
//!   control, no unbounded queue).
//! * **Delivery is non-blocking and shedding**: each subscriber has a
//!   bounded event queue; a subscriber that lags more than the queue bound
//!   is disconnected (after its backlog drains) rather than allowed to
//!   stall ingestion. See [`hub::Hub`].
//!
//! ## Pieces
//!
//! * [`Server`] — accept loop + thread-per-connection handlers;
//! * [`loadgen`] — a `gen`-backed TCP load generator (soak-test the server
//!   with planted ground-truth groups);
//! * [`client`] — blocking subscriber/status/producer helpers;
//! * `icpe-serve` binary — run a standalone server from the CLI.

pub mod client;
pub mod hub;
pub mod loadgen;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod stats;

pub use client::{fetch_events, fetch_metrics, fetch_status, EventFollower, Subscription};
pub use protocol::{Event, PatternEvent, SnapshotEvent, Topic, WireRecord};
pub use recovery::{CheckpointPolicy, ServeCheckpoint};
pub use server::{ServeConfig, Server};
pub use stats::ServerStats;
