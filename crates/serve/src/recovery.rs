//! Serve-side durability: the checkpoint policy, the on-disk serve
//! checkpoint (pipeline state + edge state), and edge-counter rehydration.
//!
//! The pipeline's own checkpoint ([`PipelineCheckpoint`]) is necessary but
//! not sufficient for a server restart: the ingestion edge also stamps
//! records (the [`Discretizer`](icpe_types::Discretizer)'s per-trajectory
//! last-tick map drives both duplicate rejection and the §4 *last time*
//! links) and owns cumulative `STATUS` counters. A [`ServeCheckpoint`]
//! bundles all three into one atomic file so a restarted server resumes
//! with exactly the state the stopped one had.

use crate::stats::ServerStats;
use icpe_types::{DiscretizerCheckpoint, PipelineCheckpoint};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// When and where a server writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory the checkpoint files live in (created if absent).
    pub dir: PathBuf,
    /// Interval between periodic checkpoints.
    pub every: Duration,
    /// How many checkpoints to retain (minimum 1).
    pub retain: usize,
}

impl CheckpointPolicy {
    /// A policy checkpointing into `dir` every 30 s, keeping the last 3.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every: Duration::from_secs(30),
            retain: 3,
        }
    }

    /// Overrides the checkpoint interval.
    pub fn every(mut self, every: Duration) -> CheckpointPolicy {
        self.every = every;
        self
    }

    /// Overrides the retention count.
    pub fn retain(mut self, retain: usize) -> CheckpointPolicy {
        self.retain = retain.max(1);
        self
    }
}

/// Cumulative network-edge counters that must survive a restart (a server
/// that forgets how many records it served is lying to its operators).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeStatsCheckpoint {
    /// Valid records accepted into the pipeline.
    pub records_in: u64,
    /// Ingest micro-batches pushed (mean-batch-fill gauge numerator's
    /// partner; cumulative like `records_in`).
    pub ingest_batches: u64,
    /// Lines refused (malformed, non-finite, stale/duplicate tick).
    pub records_rejected: u64,
    /// Bytes read from producer sockets.
    pub bytes_in: u64,
    /// Pattern events published.
    pub patterns_out: u64,
    /// Snapshot-sealed events published.
    pub snapshots_sealed: u64,
    /// Newest discretized tick accepted at the edge, as `tick + 1`
    /// (0 = none).
    pub ingested_tick: u64,
}

impl EdgeStatsCheckpoint {
    /// Captures the current edge counters.
    pub fn capture(stats: &ServerStats) -> EdgeStatsCheckpoint {
        EdgeStatsCheckpoint {
            records_in: stats.records_in.load(Ordering::Relaxed),
            ingest_batches: stats.ingest_batches.load(Ordering::Relaxed),
            records_rejected: stats.records_rejected.load(Ordering::Relaxed),
            bytes_in: stats.bytes_in.load(Ordering::Relaxed),
            patterns_out: stats.patterns_out.load(Ordering::Relaxed),
            snapshots_sealed: stats.snapshots_sealed.load(Ordering::Relaxed),
            ingested_tick: stats.raw_ingested_tick(),
        }
    }

    /// Rehydrates the counters into a fresh stats block.
    pub fn restore(&self, stats: &ServerStats) {
        stats.records_in.store(self.records_in, Ordering::Relaxed);
        stats
            .ingest_batches
            .store(self.ingest_batches, Ordering::Relaxed);
        stats
            .records_rejected
            .store(self.records_rejected, Ordering::Relaxed);
        stats.bytes_in.store(self.bytes_in, Ordering::Relaxed);
        stats
            .patterns_out
            .store(self.patterns_out, Ordering::Relaxed);
        stats
            .snapshots_sealed
            .store(self.snapshots_sealed, Ordering::Relaxed);
        stats.restore_ingested_tick(self.ingested_tick);
    }
}

/// Everything a serve instance needs to restart as if it never stopped:
/// the pipeline's consistent cut, the stamping state at that cut, and the
/// cumulative edge counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeCheckpoint {
    /// The embedded pipeline's checkpoint.
    pub pipeline: PipelineCheckpoint,
    /// Server-side stamping state (discretization + last-time links).
    pub discretizer: DiscretizerCheckpoint,
    /// Cumulative `STATUS` counters.
    pub stats: EdgeStatsCheckpoint,
}
