//! Standalone `icpe-serve` server.
//!
//! ```text
//! icpe-serve [ADDR]
//!
//! ADDR  bind address, default 127.0.0.1:7200 (port 0 = ephemeral)
//!
//! Environment overrides (workload units):
//!   ICPE_EPS       DBSCAN ε                  (default 2.5)
//!   ICPE_MINPTS    DBSCAN minPts             (default 4)
//!   ICPE_M/K/L/G   CP(M,K,L,G) constraints   (default 4,8,4,2)
//!   ICPE_N         keyed-stage parallelism   (default 4)
//!   ICPE_SYNC_FANIN  GridSync aggregation-tree fanin (default 4,
//!                    clamped ≥ 2): the N sync shards' partial merges
//!                    reduce through ⌈N/fanin⌉ combiners per level down
//!                    to one finalizer; fanin ≥ N is a flat N → 1 funnel
//!   ICPE_INTERVAL  seconds per tick          (default 1.0)
//!
//! Micro-batch vectorization (see the README "Performance" section):
//!   ICPE_BATCH         records per exchange-hop batch inside the
//!                      pipeline (default 64; 1 = record-at-a-time)
//!   ICPE_INGEST_BATCH  records stamped + pushed per ingest-edge lock
//!                      hold (default 64; 1 = record-at-a-time)
//!
//! Hotspot-aware adaptive routing (static `hash(cell) % N` unless θ set):
//!   ICPE_REBALANCE_THETA     hot threshold θ — rebalance when the max
//!                            subtask load exceeds θ × the mean (1.5 is a
//!                            reasonable start; setting this enables the
//!                            balancer)
//!   ICPE_REBALANCE_COOLDOWN  min windows between table swaps (default 2)
//!   ICPE_REBALANCE_CELLS     explicit cell-pin budget (default 256)
//!
//! Sub-cell refinement (off unless depth set; requires the balancer —
//! setting a depth enables it with stock thresholds if θ is unset):
//!   ICPE_REFINE_DEPTH     max refinement depth d: a hot cell may split
//!                         into up to 4^d sub-cells (default 0 = off)
//!   ICPE_REFINE_SPLIT     split a cell when its load exceeds this
//!                         fraction of a subtask's fair share (default 0.5)
//!   ICPE_REFINE_COALESCE  fold a refined cell back when its total load
//!                         drops below this fraction (default 0.15; keep
//!                         well under ICPE_REFINE_SPLIT for hysteresis)
//!
//! Durability (off unless a directory is given):
//!   ICPE_CHECKPOINT_DIR     checkpoint directory; the server resumes from
//!                           the newest readable checkpoint in it at start
//!   ICPE_CHECKPOINT_SECS    periodic checkpoint interval   (default 30)
//!   ICPE_CHECKPOINT_RETAIN  checkpoints kept               (default 3)
//!
//! Self-healing & chaos (see the README "Fault tolerance" section):
//!   ICPE_SUPERVISED     1 = run the pipeline under the supervisor: worker
//!                       panics are caught, the pipeline relaunches from
//!                       its latest checkpoint and replays (default off)
//!   ICPE_MAX_RESTARTS   supervised restart budget          (default 5)
//!   ICPE_CHECKPOINT_EVERY_RECORDS
//!                       supervisor-internal checkpoint cadence in records
//!                       (default 8192; bounds replay after a failure)
//!   ICPE_FAULT          deterministic fault plan, e.g.
//!                       `panic@grid-query:0:3;ckpttorn@2` — injects the
//!                       listed one-shot faults (chaos testing only)
//!   ICPE_SOCKET_TIMEOUT_SECS
//!                       per-connection socket read/write timeout; silent
//!                       dead peers are dropped cleanly (default 0 = none)
//!   ICPE_JOURNAL_PATTERNS
//!                       1 = journal every sealed pattern so shed
//!                       subscribers can backfill with `EVENTS since-seq`
//!                       (default 0: pattern volume can evict operational
//!                       events from the bounded journal ring)
//! ```
//!
//! Feed it with `icpe_serve::loadgen` (see `examples/streaming_live.rs`),
//! or any TCP producer speaking the line protocol; watch it with
//! `printf 'STATUS\n' | nc <addr>`.

use icpe_core::{BalancerConfig, IcpeConfig};
use icpe_serve::{CheckpointPolicy, ServeConfig, Server};
use icpe_types::Constraints;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7200".to_string());

    let constraints = Constraints::new(
        env_parse("ICPE_M", 4),
        env_parse("ICPE_K", 8),
        env_parse("ICPE_L", 4),
        env_parse("ICPE_G", 2),
    )
    .expect("valid CP(M,K,L,G) constraints");
    let mut engine = IcpeConfig::builder()
        .constraints(constraints)
        .epsilon(env_parse("ICPE_EPS", 2.5))
        .min_pts(env_parse("ICPE_MINPTS", 4))
        .parallelism(env_parse("ICPE_N", 4))
        .sync_fanin(env_parse("ICPE_SYNC_FANIN", icpe_core::DEFAULT_SYNC_FANIN))
        .batch_size(env_parse("ICPE_BATCH", icpe_runtime::DEFAULT_BATCH_SIZE));
    if let Ok(theta) = std::env::var("ICPE_REBALANCE_THETA") {
        let theta: f64 = theta.parse().expect("ICPE_REBALANCE_THETA is a number");
        engine = engine.rebalance(BalancerConfig {
            theta,
            cooldown_windows: env_parse("ICPE_REBALANCE_COOLDOWN", 2),
            max_mapped_cells: env_parse("ICPE_REBALANCE_CELLS", 256),
            ..BalancerConfig::default()
        });
    }
    let refine_depth: u8 = env_parse("ICPE_REFINE_DEPTH", 0);
    if refine_depth > 0 {
        engine = engine
            .refine_max_depth(refine_depth)
            .refine_split_frac(env_parse("ICPE_REFINE_SPLIT", 0.5))
            .refine_coalesce_frac(env_parse("ICPE_REFINE_COALESCE", 0.15));
    }
    if env_parse("ICPE_SUPERVISED", 0u8) != 0 {
        engine = engine.supervised(icpe_core::Supervision {
            max_restarts: env_parse("ICPE_MAX_RESTARTS", 5),
            checkpoint_every_records: Some(env_parse("ICPE_CHECKPOINT_EVERY_RECORDS", 8192)),
            ..icpe_core::Supervision::default()
        });
    }
    if let Ok(spec) = std::env::var("ICPE_FAULT") {
        let plan = icpe_runtime::FaultPlan::from_spec(&spec).expect("valid ICPE_FAULT spec");
        engine = engine.fault_plan(std::sync::Arc::new(plan));
    }
    let engine = engine.build().expect("valid engine configuration");

    let mut config = ServeConfig::new(engine);
    config.addr = addr;
    config.interval = env_parse("ICPE_INTERVAL", 1.0);
    config.ingest_batch = env_parse("ICPE_INGEST_BATCH", icpe_runtime::DEFAULT_BATCH_SIZE);
    if let Ok(dir) = std::env::var("ICPE_CHECKPOINT_DIR") {
        config = config.with_checkpoints(
            CheckpointPolicy::new(dir)
                .every(std::time::Duration::from_secs_f64(env_parse(
                    "ICPE_CHECKPOINT_SECS",
                    30.0,
                )))
                .retain(env_parse("ICPE_CHECKPOINT_RETAIN", 3)),
        );
    }

    let server = Server::start(config).expect("bind and start server");
    println!("icpe-serve listening on {}", server.local_addr());
    if let Some(seq) = server.stats().last_checkpoint_seq() {
        println!("  resumed from checkpoint seq {seq}");
    }
    println!("  producers:    connect and send `obj_id,time,x,y` lines");
    println!("  subscribers:  send `SUBSCRIBE patterns` (or snapshots | all)");
    println!("  status:       send `STATUS`");

    // Serve until killed; print a status line every 10 s.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let status = server.status_text();
        let pick = |key: &str| {
            status
                .lines()
                .find_map(|l| l.strip_prefix(&format!("{key}=")).map(str::to_string))
                .unwrap_or_else(|| "?".into())
        };
        println!(
            "[status] health={} records_in={} records_per_s={} snapshots_sealed={} patterns={} subscribers={} shed={} epoch={} imbalance={} sync_pairs={} sync_imbalance={}",
            pick("health"),
            pick("records_in"),
            pick("records_per_s"),
            pick("snapshots_sealed"),
            pick("patterns_emitted"),
            pick("subscribers"),
            pick("subscribers_shed"),
            pick("routing_epoch"),
            pick("subtask_imbalance"),
            pick("sync_pairs_merged"),
            pick("sync_shard_imbalance"),
        );
    }
}
