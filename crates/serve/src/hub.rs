//! The pub/sub fan-out: one publisher (the pipeline's event callback), many
//! subscribers, bounded queues, slow-consumer shedding.
//!
//! Every subscriber owns a bounded channel of pre-rendered event lines. The
//! publisher never blocks on a subscriber: [`Hub::publish`] uses `try_send`,
//! and a subscriber whose queue is full is **shed** — removed from the hub
//! and its channel closed, which makes its writer loop drain the backlog
//! and close the socket. Ingestion latency is therefore isolated from the
//! slowest reader, at the cost of that reader's subscription (it can
//! reconnect and resubscribe).

use crate::protocol::{EventKind, Topic};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One registered subscriber.
struct Subscriber {
    id: u64,
    topic: Topic,
    queue: Sender<Arc<str>>,
}

/// The fan-out registry.
pub struct Hub {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    shed: AtomicU64,
    queue_capacity: usize,
}

/// A subscription handle: drain [`SubscriberHandle::lines`] and write them
/// to the peer. The stream ends (after draining) when the subscriber is
/// shed or the hub closes.
pub struct SubscriberHandle {
    /// Hub-assigned subscriber id.
    pub id: u64,
    lines: Receiver<Arc<str>>,
}

impl SubscriberHandle {
    /// The subscriber's event-line stream.
    pub fn lines(&self) -> &Receiver<Arc<str>> {
        &self.lines
    }
}

impl Hub {
    /// A hub whose subscribers each buffer at most `queue_capacity` lines.
    pub fn new(queue_capacity: usize) -> Self {
        Hub {
            subscribers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            shed: AtomicU64::new(0),
            queue_capacity: queue_capacity.max(1),
        }
    }

    /// Registers a subscriber for `topic`.
    pub fn subscribe(&self, topic: Topic) -> SubscriberHandle {
        let (tx, rx) = bounded(self.queue_capacity);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().push(Subscriber {
            id,
            topic,
            queue: tx,
        });
        SubscriberHandle { id, lines: rx }
    }

    /// Removes a subscriber (normal disconnect). No-op if already shed.
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().retain(|s| s.id != id);
    }

    /// Publishes one event line to every subscriber whose topic accepts
    /// `kind`. Never blocks: subscribers that cannot take the line are shed
    /// on the spot (subscribers that simply hung up are reaped without
    /// counting as shed). Returns the ids of the subscribers shed (empty
    /// in the common case — no allocation happens then).
    pub fn publish(&self, kind: EventKind, line: &Arc<str>) -> Vec<u64> {
        let mut subscribers = self.subscribers.lock();
        let mut shed = Vec::new();
        subscribers.retain(|s| {
            if !s.topic.accepts(kind) {
                return true;
            }
            match s.queue.try_send(Arc::clone(line)) {
                Ok(()) => true,
                // Queue full: the consumer is too slow — shed it. Dropping
                // the sender ends its line stream after the backlog drains.
                Err(TrySendError::Full(_)) => {
                    shed.push(s.id);
                    false
                }
                // Consumer already hung up; reap the entry silently.
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
        if !shed.is_empty() {
            self.shed.fetch_add(shed.len() as u64, Ordering::Relaxed);
        }
        shed
    }

    /// Depth of the fullest subscriber queue right now — the proactive
    /// health gauge behind `max_subscriber_queue_depth`: a value climbing
    /// toward the queue capacity means a consumer is falling behind and
    /// about to be shed, visible *before* the disconnect happens.
    pub fn max_queue_depth(&self) -> usize {
        self.subscribers
            .lock()
            .iter()
            .map(|s| s.queue.len())
            .max()
            .unwrap_or(0)
    }

    /// True if any current subscriber accepts events of `kind` — the
    /// publisher's fast path to skip rendering events nobody will receive.
    pub fn accepts_any(&self, kind: EventKind) -> bool {
        self.subscribers
            .lock()
            .iter()
            .any(|s| s.topic.accepts(kind))
    }

    /// Number of currently registered subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// True when no subscriber is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total subscribers shed since the hub was created.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Closes every subscription (end of stream): each subscriber's line
    /// stream ends once it drains its backlog.
    pub fn close(&self) {
        self.subscribers.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn publish_reaches_matching_topics() {
        let hub = Hub::new(8);
        let patterns = hub.subscribe(Topic::Patterns);
        let all = hub.subscribe(Topic::All);
        hub.publish(EventKind::Pattern, &line("p"));
        hub.publish(EventKind::Snapshot, &line("s"));
        hub.close();
        let got: Vec<Arc<str>> = patterns.lines().iter().collect();
        assert_eq!(got, vec![line("p")]);
        let got: Vec<Arc<str>> = all.lines().iter().collect();
        assert_eq!(got, vec![line("p"), line("s")]);
    }

    #[test]
    fn slow_subscriber_is_shed_fast_one_survives() {
        let hub = Hub::new(2);
        let _slow = hub.subscribe(Topic::All); // never drained
        let fast = hub.subscribe(Topic::All);
        let mut shed_total = Vec::new();
        for i in 0..10 {
            shed_total.extend(hub.publish(EventKind::Pattern, &line(&i.to_string())));
            // Keep the fast subscriber drained.
            while fast.lines().try_recv().is_ok() {}
        }
        assert_eq!(
            shed_total,
            vec![_slow.id],
            "exactly the slow subscriber is shed"
        );
        assert_eq!(hub.shed_count(), 1);
        assert_eq!(hub.len(), 1, "fast subscriber still registered");
    }

    #[test]
    fn shed_subscriber_still_drains_its_backlog() {
        let hub = Hub::new(2);
        let sub = hub.subscribe(Topic::All);
        hub.publish(EventKind::Pattern, &line("a"));
        hub.publish(EventKind::Pattern, &line("b"));
        hub.publish(EventKind::Pattern, &line("c")); // full → shed
        assert_eq!(hub.len(), 0);
        // The backlog (a, b) is still deliverable; the stream then ends.
        let got: Vec<Arc<str>> = sub.lines().iter().collect();
        assert_eq!(got, vec![line("a"), line("b")]);
    }

    #[test]
    fn max_queue_depth_tracks_the_fullest_subscriber() {
        let hub = Hub::new(4);
        assert_eq!(hub.max_queue_depth(), 0, "no subscribers, no depth");
        let lagging = hub.subscribe(Topic::All);
        let drained = hub.subscribe(Topic::All);
        hub.publish(EventKind::Pattern, &line("a"));
        hub.publish(EventKind::Pattern, &line("b"));
        while drained.lines().try_recv().is_ok() {}
        assert_eq!(hub.max_queue_depth(), 2, "the lagging queue dominates");
        while lagging.lines().try_recv().is_ok() {}
        assert_eq!(hub.max_queue_depth(), 0, "drained everywhere");
    }

    #[test]
    fn unsubscribe_and_disconnected_reaping() {
        let hub = Hub::new(4);
        let a = hub.subscribe(Topic::All);
        let b = hub.subscribe(Topic::All);
        hub.unsubscribe(a.id);
        assert_eq!(hub.len(), 1);
        drop(b);
        hub.publish(EventKind::Pattern, &line("x"));
        assert_eq!(hub.len(), 0, "disconnected subscriber reaped");
        // Dropping a subscriber is not "shedding" — no false positives.
        assert_eq!(hub.shed_count(), 0);
    }
}
