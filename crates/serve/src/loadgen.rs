//! A `gen`-backed load generator: drives an `icpe-serve` instance over real
//! TCP the way a fleet of reporting devices would, so the system can be
//! soak-tested against itself.
//!
//! Records come from a [`TraceSet`] (e.g. planted
//! [`GroupWalkGenerator`](icpe_gen::GroupWalkGenerator) groups, so a test
//! can assert which patterns must come out the other side). Trajectories are
//! sharded across producer connections by object id — each "device" reports
//! its own objects in time order, the paper's stream model — while the
//! interleaving *across* producers is arbitrary and can additionally be
//! scrambled with bounded displacement to exercise the §4 time-alignment.

use crate::protocol::WireRecord;
use icpe_gen::{DisorderConfig, TraceSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generation settings.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent producer connections.
    pub producers: usize,
    /// Seconds per discretized tick (must match the server's
    /// `ServeConfig::interval`).
    pub interval: f64,
    /// Fraction of producers that send NDJSON instead of CSV (both wire
    /// formats get exercised).
    pub json_fraction: f64,
    /// Optional bounded-displacement scrambling of each producer's stream
    /// (per-object time order is preserved — devices report in order; the
    /// network reorders across devices).
    pub disorder: Option<DisorderConfig>,
    /// Optional total rate cap, records/second across all producers
    /// (`None` = as fast as the sockets allow).
    pub target_records_per_s: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            producers: 4,
            interval: 1.0,
            json_fraction: 0.25,
            disorder: None,
            target_records_per_s: None,
        }
    }
}

/// What a load run achieved.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Records written across all producers.
    pub records_sent: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Achieved aggregate rate.
    pub records_per_s: f64,
}

/// Streams `traces` into the server at `addr`; blocks until every producer
/// finished and returns the achieved rate.
pub fn run(addr: &str, traces: &TraceSet, config: &LoadConfig) -> std::io::Result<LoadReport> {
    let producers = config.producers.max(1);
    // Flatten in global time order, then shard by object id.
    let mut shards: Vec<Vec<WireRecord>> = vec![Vec::new(); producers];
    let mut total = 0u64;
    for record in traces.to_gps_records() {
        let wire = WireRecord {
            id: record.id.0,
            time: record.time.0 as f64 * config.interval,
            x: record.location.x,
            y: record.location.y,
        };
        shards[(record.id.0 as usize) % producers].push(wire);
        total += 1;
    }
    if let Some(disorder) = config.disorder {
        for (i, shard) in shards.iter_mut().enumerate() {
            let cfg = DisorderConfig {
                seed: disorder.seed.wrapping_add(i as u64),
                ..disorder
            };
            *shard = disorder_preserving_per_object(std::mem::take(shard), cfg);
        }
    }

    let per_producer_rate = config
        .target_records_per_s
        .map(|r| (r / producers as u64).max(1));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(producers);
    for (i, shard) in shards.into_iter().enumerate() {
        let addr = addr.to_string();
        let json = (i as f64 + 0.5) / producers as f64 <= config.json_fraction;
        handles.push(std::thread::spawn(move || {
            produce(&addr, &shard, json, per_producer_rate)
        }));
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| std::io::Error::other("producer thread panicked"))??;
    }
    let elapsed = started.elapsed();
    Ok(LoadReport {
        records_sent: total,
        elapsed,
        records_per_s: total as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}

/// One producer connection writing its shard.
fn produce(
    addr: &str,
    records: &[WireRecord],
    json: bool,
    rate: Option<u64>,
) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
    let started = Instant::now();
    for (i, record) in records.iter().enumerate() {
        if json {
            writeln!(writer, "{}", record.to_json())?;
        } else {
            writeln!(writer, "{}", record.to_csv())?;
        }
        if let Some(rate) = rate {
            // Coarse pacing: after each 64-record burst, sleep to the
            // schedule. Smooth enough for soak tests, cheap enough not to
            // dominate at high rates.
            if i % 64 == 63 {
                let due = Duration::from_secs_f64((i + 1) as f64 / rate as f64);
                let elapsed = started.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
        }
    }
    writer.flush()
}

/// Bounded-displacement scrambling that preserves each object's
/// chronological order: positions are shuffled freely, then each object's
/// records are re-dealt into that object's positions oldest-first.
fn disorder_preserving_per_object(
    records: Vec<WireRecord>,
    config: DisorderConfig,
) -> Vec<WireRecord> {
    let mut scrambled = records;
    let n = scrambled.len();
    if n < 2 || config.max_displacement == 0 {
        return scrambled;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    for i in 0..n {
        if rng.random_bool(config.delay_probability) {
            let j = (i + 1 + rng.random_range(0..config.max_displacement)).min(n - 1);
            scrambled.swap(i, j);
        }
    }
    // Re-deal per object in time order.
    let mut queues: HashMap<u32, std::collections::VecDeque<WireRecord>> = HashMap::new();
    let mut in_time_order: Vec<WireRecord> = scrambled.clone();
    in_time_order.sort_by(|a, b| a.time.total_cmp(&b.time));
    for r in in_time_order {
        queues.entry(r.id).or_default().push_back(r);
    }
    scrambled
        .iter()
        .map(|r| {
            queues
                .get_mut(&r.id)
                .and_then(std::collections::VecDeque::pop_front)
                .expect("every position has a record of its object")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, time: f64) -> WireRecord {
        WireRecord {
            id,
            time,
            x: 0.0,
            y: 0.0,
        }
    }

    #[test]
    fn disorder_preserves_multiset_and_per_object_order() {
        let records: Vec<WireRecord> = (0..200).map(|i| record(i % 5, (i / 5) as f64)).collect();
        let scrambled = disorder_preserving_per_object(
            records.clone(),
            DisorderConfig {
                delay_probability: 0.8,
                max_displacement: 17,
                seed: 3,
            },
        );
        assert_ne!(scrambled, records, "scramble must actually reorder");
        // Multiset preserved.
        let key = |r: &WireRecord| (r.id, r.time.to_bits());
        let mut a: Vec<_> = records.iter().map(key).collect();
        let mut b: Vec<_> = scrambled.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Per-object chronological order preserved.
        let mut last: HashMap<u32, f64> = HashMap::new();
        for r in &scrambled {
            if let Some(prev) = last.insert(r.id, r.time) {
                assert!(r.time > prev, "object {} went backwards", r.id);
            }
        }
    }
}
