//! The TCP server: accept loop, per-connection threads, pipeline wiring.
//!
//! Deployment shape (thread-per-connection, `std::net` only):
//!
//! ```text
//! producers ──TCP──▶ ingest handlers ──bounded channel──▶ IcpePipeline
//!                      (parse, stamp,    (backpressure)      (launch)
//!                       validate)                               │ events
//!                                                               ▼
//! subscribers ◀─TCP── writer loops ◀─bounded queues── Hub ◀─ callback
//!                                      (shed slow)
//! ```
//!
//! Backpressure story: the ingest channel is bounded, so when clustering
//! falls behind, ingest handlers block on `push`, the kernel's TCP receive
//! buffers fill, and producers throttle — end-to-end flow control with no
//! unbounded queue anywhere. Subscribers are the opposite: they must never
//! slow ingestion, so their queues are bounded and *non-blocking*; a
//! subscriber that cannot keep up is shed (disconnected) rather than obeyed.

use crate::hub::Hub;
use crate::protocol::{EventKind, PatternEvent, SnapshotEvent, Topic, WireRecord};
use crate::recovery::{CheckpointPolicy, EdgeStatsCheckpoint, ServeCheckpoint};
use crate::stats::ServerStats;
use icpe_core::{
    AlignHandle, HealthHandle, HealthState, IcpeConfig, IcpePipeline, LivePipeline, PipelineEvent,
    RecordSender, RoutingHandle, SyncHandle,
};
use icpe_persist::CheckpointStore;
use icpe_runtime::{MetricRegistry, MetricsReport, ObsEventKind, PipelineMetrics};
use icpe_types::{Discretizer, RawRecord};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

/// Configuration of an [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The detection configuration the embedded pipeline runs.
    pub engine: IcpeConfig,
    /// Seconds per discretized snapshot interval (Definition 1); producers'
    /// `time` fields are divided by this to obtain ticks.
    pub interval: f64,
    /// Per-subscriber event-queue bound; a subscriber lagging this many
    /// events behind is shed. Size it to the burst tolerance wanted: the
    /// publisher never waits, so bursts larger than the queue shed even an
    /// otherwise-healthy consumer.
    pub subscriber_queue: usize,
    /// A producer connection is dropped after this many *consecutive*
    /// malformed lines (defense against non-protocol peers).
    pub max_consecutive_parse_errors: usize,
    /// Maximum ticks a producer may run ahead of the slowest connected
    /// producer before its pushes block (ingestion-edge skew control).
    /// Independent producers race arbitrarily — without this bound, a fast
    /// producer's stream makes every slower producer's records arrive
    /// "late" and be dropped. The server also raises the engine's aligner
    /// lateness to cover this skew.
    pub max_producer_skew: u32,
    /// Startup grace: for this long after the first producer registers, no
    /// producer may advance past tick `max_producer_skew`. Closes the
    /// fleet-connection race — skew control can only see producers that
    /// have already said something, and without the grace a producer
    /// connecting a few milliseconds late finds the stream sealed past its
    /// data.
    pub startup_grace: std::time::Duration,
    /// Records per ingest micro-batch: a producer handler gathers up to
    /// this many *already-buffered* lines, then stamps, pushes and counts
    /// the whole batch under one stamping-lock hold and one pipeline
    /// channel operation. Gathering never waits for the network — a slow
    /// producer ships batches of one (no added latency), a saturating one
    /// ships full batches. `1` restores record-at-a-time ingestion.
    pub ingest_batch: usize,
    /// Durability policy. When set, the server (a) resumes from the newest
    /// readable checkpoint in the policy's directory at startup, (b) writes
    /// periodic checkpoints while running, and (c) supports
    /// [`Server::suspend`] (final checkpoint + restartable shutdown).
    /// `None` (the default) keeps the server fully in-memory.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Socket read/write timeout applied to every accepted connection.
    /// A producer that goes silent for this long (dead peer, half-open
    /// connection after a network partition) is dropped cleanly — its
    /// gathered records are flushed first — instead of pinning its handler
    /// thread forever; a subscriber whose peer stops reading errors out of
    /// its write instead of blocking the writer loop. `None` (the default)
    /// trusts the kernel's TCP keepalive, i.e. effectively never. Also
    /// settable via the `ICPE_SOCKET_TIMEOUT_SECS` environment variable
    /// (picked up by [`ServeConfig::new`]; `0` disables).
    pub socket_timeout: Option<std::time::Duration>,
    /// Journal every sealed pattern as a `pattern_sealed` event, so a
    /// subscriber shed for falling behind can reconnect and backfill its
    /// gap with `EVENTS since-seq`. Off by default: pattern volume can
    /// dwarf the journal's bounded ring and evict the operational events
    /// (seals, failures, recoveries) it exists to retain. Also settable
    /// via the `ICPE_JOURNAL_PATTERNS` environment variable (picked up by
    /// [`ServeConfig::new`]; any value other than `0` enables).
    pub journal_patterns: bool,
}

impl ServeConfig {
    /// Defaults: ephemeral localhost port, 1 s intervals, 1024-line
    /// subscriber queues.
    pub fn new(engine: IcpeConfig) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            engine,
            interval: 1.0,
            subscriber_queue: 1024,
            max_consecutive_parse_errors: 64,
            max_producer_skew: 8,
            startup_grace: std::time::Duration::from_millis(250),
            ingest_batch: icpe_runtime::DEFAULT_BATCH_SIZE,
            checkpoint: None,
            socket_timeout: socket_timeout_from_env(),
            journal_patterns: journal_patterns_from_env(),
        }
    }

    /// Enables durability under `policy`.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Sets the per-connection socket read/write timeout.
    pub fn with_socket_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.socket_timeout = (!timeout.is_zero()).then_some(timeout);
        self
    }
}

/// `ICPE_JOURNAL_PATTERNS` environment default for
/// [`ServeConfig::journal_patterns`] (unset, unparsable, or `0` = off).
fn journal_patterns_from_env() -> bool {
    std::env::var("ICPE_JOURNAL_PATTERNS")
        .ok()
        .and_then(|v| v.parse::<u8>().ok())
        .is_some_and(|v| v != 0)
}

/// `ICPE_SOCKET_TIMEOUT_SECS` environment default for
/// [`ServeConfig::socket_timeout`] (unset, unparsable, or `0` = no timeout).
fn socket_timeout_from_env() -> Option<std::time::Duration> {
    std::env::var("ICPE_SOCKET_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s.is_finite())
        .map(std::time::Duration::from_secs_f64)
}

/// Ingestion-edge stream synchronization: tracks each connected producer's
/// newest pushed tick and blocks a producer that would run more than
/// `max_skew` ticks ahead of the slowest other producer. This bounds the
/// cross-producer disorder the aligner must absorb, turning "fast producer
/// causes slow producer's records to be dropped as late" into plain
/// backpressure on the fast producer's socket.
struct SkewLimiter {
    /// Producer conn id → newest tick pushed (`None` until a first record
    /// is admitted — a producer that has said nothing valid yet must not
    /// hold the fleet back), plus the instant the first producer
    /// registered (starts the grace window).
    #[allow(clippy::type_complexity)]
    state: std::sync::Mutex<(HashMap<u64, Option<u32>>, Option<std::time::Instant>)>,
    cond: std::sync::Condvar,
    max_skew: u32,
    grace: std::time::Duration,
}

impl SkewLimiter {
    fn new(max_skew: u32, grace: std::time::Duration) -> Self {
        SkewLimiter {
            state: std::sync::Mutex::new((HashMap::new(), None)),
            cond: std::sync::Condvar::new(),
            max_skew,
            grace,
        }
    }

    fn register(&self, id: u64) {
        let mut state = self.state.lock().expect("skew lock");
        state.0.insert(id, None);
        state.1.get_or_insert_with(std::time::Instant::now);
        drop(state);
        self.cond.notify_all();
    }

    fn deregister(&self, id: u64) {
        self.state.lock().expect("skew lock").0.remove(&id);
        self.cond.notify_all();
    }

    /// Blocks until `tick` is within `max_skew` of the slowest *other*
    /// registered producer — and, during the startup grace, until the
    /// fleet has had time to connect — then records `tick` as this
    /// producer's frontier. A 2 s cap bounds pathological cases (e.g. a
    /// producer whose stream legitimately starts far in the future): after
    /// it, the record is admitted anyway and the aligner's lateness policy
    /// decides.
    fn admit(&self, id: u64, tick: u32) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut state = self.state.lock().expect("skew lock");
        loop {
            let in_grace = state
                .1
                .is_some_and(|started| started.elapsed() < self.grace);
            // Only producers with at least one admitted record count: a
            // connection that has produced nothing valid (all lines
            // malformed or stale) must not hold the fleet back.
            let min_other = state
                .0
                .iter()
                .filter(|(&other, _)| other != id)
                .filter_map(|(_, &t)| t)
                .min();
            let within_skew = match min_other {
                None => true, // no other active producer to synchronize with
                Some(m) => tick <= m.saturating_add(self.max_skew),
            };
            let admitted = within_skew && !(in_grace && tick > self.max_skew);
            if admitted || std::time::Instant::now() >= deadline {
                break;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(state, std::time::Duration::from_millis(20))
                .expect("skew lock");
            state = guard;
        }
        let entry = state.0.entry(id).or_insert(None);
        *entry = Some(entry.map_or(tick, |t| t.max(tick)));
        drop(state);
        self.cond.notify_all();
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    stats: ServerStats,
    hub: Hub,
    /// Stamping state: discretization + per-trajectory last-time links.
    discretizer: Mutex<Discretizer>,
    /// Lock-free tick projection: an immutable clone of the discretizer
    /// used only for its pure `discretize_time` (a function of the fixed
    /// epoch/interval pair), so producer handlers can project skew-control
    /// ticks per record while gathering a batch without the stamping lock.
    projector: Discretizer,
    /// Producer handle into the pipeline; `None` once draining started.
    ingest: Mutex<Option<RecordSender>>,
    /// The pipeline's shared recorder (for `STATUS`).
    pipeline_metrics: Mutex<Option<PipelineMetrics>>,
    /// The pipeline's per-stage metric registry and event journal (for
    /// `METRICS` / `EVENTS`); also the sink for serve-originated journal
    /// events (subscriber shedding).
    obs: Mutex<Option<MetricRegistry>>,
    /// The grid stage's routing view (epoch, migrations, load split), when
    /// the engine runs one (for `STATUS`).
    routing: Mutex<Option<RoutingHandle>>,
    /// The sharded sync merge path's gauge view, when the engine runs one
    /// (for `STATUS`).
    sync: Mutex<Option<SyncHandle>>,
    /// The sharded aligner head's gauge view, when the engine runs one
    /// (for `STATUS`).
    align: Mutex<Option<AlignHandle>>,
    /// The pipeline's supervision health (for `STATUS`/`METRICS`). Always
    /// reads `healthy` for an unsupervised engine.
    health: Mutex<Option<HealthHandle>>,
    /// Dead-letter ring: the most recent malformed producer lines, kept for
    /// post-mortem inspection (`Server::dead_letters`). Bounded — quarantine
    /// must never become the unbounded queue the rest of the edge avoids.
    dead_letters: Mutex<std::collections::VecDeque<String>>,
    /// Cross-producer skew control.
    skew: SkewLimiter,
    /// Per-connection socket read/write timeout (see
    /// [`ServeConfig::socket_timeout`]).
    socket_timeout: Option<std::time::Duration>,
    /// Journal sealed patterns for `EVENTS since-seq` backfill (see
    /// [`ServeConfig::journal_patterns`]).
    journal_patterns: bool,
    shutting_down: AtomicBool,
    /// Set by [`Server::suspend`] after its final checkpoint: events
    /// produced by the teardown flush are covered by the checkpoint and
    /// will be re-delivered by the resumed instance — publishing them here
    /// too would break exactly-once across the restart.
    suppress_events: AtomicBool,
    /// Open connections, for forced shutdown at drain time. Subscribers
    /// are marked so a clean shutdown can cut producers off while letting
    /// subscriber writers flush their backlog.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_conn_id: AtomicU64,
    max_consecutive_parse_errors: usize,
    ingest_batch: usize,
}

struct ConnEntry {
    stream: TcpStream,
    is_subscriber: bool,
}

impl Shared {
    fn register_conn(&self, stream: &TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().insert(
                id,
                ConnEntry {
                    stream: clone,
                    is_subscriber: false,
                },
            );
        }
        id
    }

    fn mark_subscriber(&self, id: u64) {
        if let Some(entry) = self.conns.lock().get_mut(&id) {
            entry.is_subscriber = true;
        }
    }

    fn unregister_conn(&self, id: u64) {
        self.conns.lock().remove(&id);
    }

    /// Force-closes connections; `subscribers_too` keeps or cuts the
    /// delivery side.
    fn close_conns(&self, subscribers_too: bool) {
        let mut conns = self.conns.lock();
        conns.retain(|_, entry| {
            if entry.is_subscriber && !subscribers_too {
                return true;
            }
            let _ = entry.stream.shutdown(Shutdown::Both);
            false
        });
    }
}

/// The periodic checkpoint worker: a thread plus its stop signal.
struct CheckpointWorker {
    handle: JoinHandle<()>,
    stop: Arc<(StdMutex<bool>, Condvar)>,
}

impl CheckpointWorker {
    fn stop_and_join(self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        let _ = self.handle.join();
    }
}

/// A running `icpe-serve` instance (see the crate docs for the protocol).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    pipeline: Option<LivePipeline>,
    accept: Option<JoinHandle<()>>,
    store: Option<CheckpointStore>,
    ckpt_worker: Option<CheckpointWorker>,
    clean_shutdown: bool,
}

impl Server {
    /// Binds, launches the embedded pipeline, and starts accepting
    /// connections. With a checkpoint policy configured, the server first
    /// looks for the newest readable checkpoint in the policy's directory
    /// and — if one exists — resumes from it: aligner chains, open pattern
    /// windows, stamping state, and cumulative counters all pick up where
    /// the previous instance stopped.
    pub fn start(mut config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        // Durability: open the store and load the resume point up front so
        // a broken checkpoint directory fails the start, not a later write.
        let store = match &config.checkpoint {
            Some(policy) => {
                let mut store = CheckpointStore::open(&policy.dir, policy.retain)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                // Chaos harness: route the engine fault plan's checkpoint
                // points (`ckptfail@SEQ` / `ckpttorn@SEQ`) into the persist
                // layer's write-fault shim, so one deterministic plan drives
                // worker, exchange, AND durability faults.
                if let Some(plan) = &config.engine.runtime.fault {
                    let plan = Arc::clone(plan);
                    store = store.with_fault_hook(Arc::new(move |seq| {
                        match plan.checkpoint_fault(seq) {
                            Some(icpe_runtime::FaultKind::CheckpointFail) => {
                                Some(icpe_persist::SaveFault::Fail)
                            }
                            Some(icpe_runtime::FaultKind::CheckpointTorn) => {
                                Some(icpe_persist::SaveFault::Torn)
                            }
                            _ => None,
                        }
                    }));
                }
                Some(store)
            }
            None => None,
        };
        // Torn/corrupt files on the way to the newest readable checkpoint
        // are skipped, not fatal — collected here and journaled once the
        // registry is up, so `EVENTS` shows what recovery walked past.
        let (resume, skipped): (Option<(u64, ServeCheckpoint)>, Vec<_>) = match &store {
            Some(store) => store
                .load_latest_with_skips()
                .map_err(|e| std::io::Error::other(e.to_string()))?,
            None => (None, Vec::new()),
        };

        let discretizer = match &resume {
            Some((_, ckpt)) => {
                if ckpt.discretizer.interval != config.interval {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "checkpoint was written with interval {} but the config asks for {}",
                            ckpt.discretizer.interval, config.interval
                        ),
                    ));
                }
                Discretizer::from_checkpoint(&ckpt.discretizer)
            }
            None => Discretizer::new(0.0, config.interval),
        }
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;

        // The aligner must tolerate the full disorder the edge can admit:
        // the admitted-frontier gap (`max_producer_skew`) plus one ingest
        // batch's tick span (gathered records are admitted before they are
        // pushed; the gather bounds the span to `max_producer_skew`, so the
        // pushed gap is at most twice the skew). `max_lag` must exceed the
        // same bound or a slower producer's chains get retired — and its
        // buffered batch dropped late — while its records sit in a batch.
        let edge_disorder = 2 * config.max_producer_skew + 2;
        config.engine.aligner.lateness = config.engine.aligner.lateness.max(edge_disorder);
        config.engine.aligner.max_lag = config.engine.aligner.max_lag.max(2 * edge_disorder);

        let shared = Arc::new(Shared {
            stats: ServerStats::new(),
            hub: Hub::new(config.subscriber_queue),
            // Only the pure (epoch, interval) mapping — not the stamping
            // state (a checkpoint-restored `last_seen` map would be dead
            // weight held for the server's lifetime).
            projector: Discretizer::new(discretizer.epoch(), discretizer.interval())
                .expect("parameters were validated when `discretizer` was built"),
            discretizer: Mutex::new(discretizer),
            ingest: Mutex::new(None),
            pipeline_metrics: Mutex::new(None),
            obs: Mutex::new(None),
            routing: Mutex::new(None),
            sync: Mutex::new(None),
            align: Mutex::new(None),
            health: Mutex::new(None),
            dead_letters: Mutex::new(std::collections::VecDeque::new()),
            skew: SkewLimiter::new(config.max_producer_skew, config.startup_grace),
            socket_timeout: config.socket_timeout,
            journal_patterns: config.journal_patterns,
            shutting_down: AtomicBool::new(false),
            suppress_events: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            max_consecutive_parse_errors: config.max_consecutive_parse_errors.max(1),
            ingest_batch: config.ingest_batch.max(1),
        });
        if let Some((seq, ckpt)) = &resume {
            ckpt.stats.restore(&shared.stats);
            shared.stats.restore_checkpoint_seq(*seq);
        }

        // Pipeline → hub bridge. Runs on the pipeline driver thread; only
        // non-blocking work happens here (render + try_send fan-out), and
        // rendering is skipped entirely when no subscriber wants the kind.
        let bridge = Arc::clone(&shared);
        let mut patterns_per_time: HashMap<u32, u32> = HashMap::new();
        let on_event = move |event| {
            if bridge.suppress_events.load(Ordering::SeqCst) {
                // Suspending: everything from here on is covered by the
                // final checkpoint and re-delivered after the restart.
                return;
            }
            match event {
                PipelineEvent::Pattern(p) => {
                    bridge.stats.patterns_out.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = p.times.max() {
                        *patterns_per_time.entry(t.0).or_insert(0) += 1;
                    }
                    // Journal every sealed pattern (opt-in): a subscriber
                    // shed for falling behind can reconnect and backfill
                    // what it missed with `EVENTS since-seq` (bounded by
                    // the journal ring).
                    if bridge.journal_patterns {
                        if let Some(obs) = &*bridge.obs.lock() {
                            obs.emit(ObsEventKind::PatternSealed {
                                objects: p.objects.iter().map(|o| o.0).collect(),
                                times: p.times.times().iter().map(|t| t.0).collect(),
                            });
                        }
                    }
                    if bridge.hub.accepts_any(EventKind::Pattern) {
                        let line: Arc<str> = Arc::from(
                            serde_json::to_string(&PatternEvent::from_pattern(&p))
                                .expect("pattern event serializes")
                                .as_str(),
                        );
                        let shed = bridge.hub.publish(EventKind::Pattern, &line);
                        note_shed(&bridge, &shed);
                    }
                }
                PipelineEvent::SnapshotSealed { time } => {
                    bridge
                        .stats
                        .snapshots_sealed
                        .fetch_add(1, Ordering::Relaxed);
                    let count = patterns_per_time.remove(&time).unwrap_or(0);
                    // Windows closing after this seal (and the end-of-stream
                    // flush) may still add patterns for earlier times; those
                    // entries would otherwise accumulate forever. Anything at or
                    // below the seal frontier can no longer be reported in a
                    // seal notice, so drop it.
                    patterns_per_time.retain(|&t, _| t > time);
                    if bridge.hub.accepts_any(EventKind::Snapshot) {
                        let event = SnapshotEvent {
                            event: "snapshot".to_string(),
                            time,
                            patterns: count,
                        };
                        let line: Arc<str> = Arc::from(
                            serde_json::to_string(&event)
                                .expect("snapshot event serializes")
                                .as_str(),
                        );
                        let shed = bridge.hub.publish(EventKind::Snapshot, &line);
                        note_shed(&bridge, &shed);
                    }
                }
            }
        };
        let pipeline = match &resume {
            Some((_, ckpt)) => IcpePipeline::launch_from(&config.engine, &ckpt.pipeline, on_event)
                .map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
                })?,
            None => IcpePipeline::launch(&config.engine, on_event),
        };
        *shared.ingest.lock() = Some(pipeline.sender());
        *shared.pipeline_metrics.lock() = Some(pipeline.metrics().clone());
        *shared.obs.lock() = Some(pipeline.obs().clone());
        *shared.routing.lock() = pipeline.routing().cloned();
        *shared.sync.lock() = pipeline.sync().cloned();
        *shared.align.lock() = pipeline.align().cloned();
        *shared.health.lock() = Some(pipeline.health_handle());
        if !skipped.is_empty() {
            if let Some(obs) = &*shared.obs.lock() {
                for skip in &skipped {
                    obs.emit(ObsEventKind::CheckpointSkipped {
                        seq: skip.seq,
                        reason: skip.reason.clone(),
                    });
                }
            }
            eprintln!(
                "icpe-serve: skipped {} unreadable checkpoint(s) while resuming",
                skipped.len()
            );
        }

        // Periodic checkpointing: barrier through the live pipeline, then
        // one atomic file with the edge state captured at the same cut.
        let ckpt_worker = match (&store, &config.checkpoint) {
            (Some(store), Some(policy)) => Some(spawn_checkpoint_worker(
                Arc::clone(&shared),
                pipeline.sender(),
                store.clone(),
                policy.every,
            )),
            _ => None,
        };

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("failed to spawn accept thread");

        Ok(Server {
            addr,
            shared,
            pipeline: Some(pipeline),
            accept: Some(accept),
            store,
            ckpt_worker,
            clean_shutdown: false,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current status block, as served by the `STATUS` endpoint.
    pub fn status_text(&self) -> String {
        render_status(&self.shared)
    }

    /// The pipeline's current supervision health. An unsupervised engine
    /// is always `Healthy`.
    pub fn health(&self) -> HealthState {
        shared_health(&self.shared)
    }

    /// A snapshot of the dead-letter ring: the most recent malformed
    /// producer lines (oldest first, bounded).
    pub fn dead_letters(&self) -> Vec<String> {
        self.shared.dead_letters.lock().iter().cloned().collect()
    }

    /// The current Prometheus exposition block, as served by the `METRICS`
    /// endpoint: the pipeline's per-stage/per-exchange families followed by
    /// the serve-level edge families.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// Network-edge counters (shared with the handlers; live).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Total subscribers shed since start.
    pub fn shed_count(&self) -> u64 {
        self.shared.hub.shed_count()
    }

    /// Drains and shuts down: stops accepting, grants departed producers a
    /// grace period to be fully consumed, closes every remaining
    /// connection, ends the record stream, waits for the pipeline to seal
    /// what was ingested, and closes all subscriptions (each drains its
    /// backlog to its socket first). Returns the pipeline's final metrics.
    ///
    /// This is the **end of the stream**: the enumeration engines flush
    /// their open windows and those final patterns are delivered — and any
    /// periodic checkpoints are deleted, because resuming a *finished*
    /// stream from one would resurrect flushed windows and re-deliver
    /// their patterns. To stop mid-stream and continue later, use
    /// [`Server::suspend`] instead (its final checkpoint is kept).
    ///
    /// Panics if a pipeline subtask panicked.
    pub fn finish(mut self) -> MetricsReport {
        self.drain_ingest_edge();
        // Cut the ingest side only: subscriber sockets must stay open so
        // the events produced while draining still reach them.
        *self.shared.ingest.lock() = None;
        self.shared.close_conns(false);
        let report = self
            .pipeline
            .take()
            .expect("pipeline present until finish")
            .finish();
        // End every subscription; each writer flushes its backlog to its
        // socket and closes it (EOF to the consumer).
        self.shared.hub.close();
        if let Some(store) = &self.store {
            let _ = store.clear();
        }
        self.clean_shutdown = true;
        report
    }

    /// Suspends the server mid-stream (the SIGTERM path): drains connected
    /// producers, writes one final checkpoint covering **every** ingested
    /// record, then tears the pipeline down with its end-of-stream flush
    /// *suppressed* — those flush patterns come from windows still open at
    /// the cut, which the checkpoint preserves, so the resumed instance
    /// delivers them (exactly once) when the windows genuinely close.
    /// A subsequent [`Server::start`] with the same policy resumes from
    /// this checkpoint.
    ///
    /// Fails when no checkpoint policy is configured or the final
    /// checkpoint cannot be taken/written; the server is shut down (without
    /// the checkpoint) either way.
    pub fn suspend(mut self) -> std::io::Result<MetricsReport> {
        self.drain_ingest_edge();
        let result = self.final_checkpoint();
        if result.is_ok() {
            // Everything after the checkpoint barrier is teardown flush:
            // covered by the checkpoint, re-delivered after restart.
            self.shared.suppress_events.store(true, Ordering::SeqCst);
        }
        *self.shared.ingest.lock() = None;
        self.shared.close_conns(false);
        let report = self
            .pipeline
            .take()
            .expect("pipeline present until finish")
            .finish();
        self.shared.hub.close();
        self.clean_shutdown = true;
        result.map(|()| report)
    }

    /// Shared shutdown prologue: stop accepting, let departed producers be
    /// fully consumed, stop the periodic checkpoint worker (it holds a
    /// producer handle that would otherwise keep the stream open forever).
    fn drain_ingest_edge(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Grace: a producer that closed its side may still have records in
        // kernel buffers; its handler exits once it drains to EOF. Only
        // producers that stay open past the deadline are cut off.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while self.shared.stats.producers.load(Ordering::Relaxed) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        if let Some(worker) = self.ckpt_worker.take() {
            worker.stop_and_join();
        }
    }

    /// Takes and persists the suspend-time checkpoint.
    fn final_checkpoint(&self) -> std::io::Result<()> {
        let store = self.store.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "suspend requires a checkpoint policy (ServeConfig::with_checkpoints)",
            )
        })?;
        let pipeline = self.pipeline.as_ref().expect("pipeline present");
        write_checkpoint(&self.shared, &pipeline.sender(), store).map_err(std::io::Error::other)?;
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.clean_shutdown {
            // finish() ran: subscriber writers are flushing their final
            // backlogs — leave their sockets to close naturally.
            return;
        }
        // Finish not called: detach. Stop accepting and close sockets, but
        // do not block on the pipeline (beyond stopping the checkpoint
        // worker, whose producer handle would keep the stream open).
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(worker) = self.ckpt_worker.take() {
            worker.stop_and_join();
        }
        *self.shared.ingest.lock() = None;
        self.shared.close_conns(true);
        self.shared.hub.close();
    }
}

/// Accounts a publish's shed subscribers: the cumulative edge counter plus
/// one typed journal entry per shed connection, so `EVENTS` shows *which*
/// subscriber was dropped and when relative to the stream's other
/// transitions.
fn note_shed(shared: &Shared, shed: &[u64]) {
    if shed.is_empty() {
        return;
    }
    shared
        .stats
        .subscribers_shed
        .fetch_add(shed.len() as u64, Ordering::Relaxed);
    if let Some(obs) = &*shared.obs.lock() {
        for &id in shed {
            obs.emit(ObsEventKind::SubscriberShed { subscriber: id });
        }
    }
}

/// Takes one consistent serve checkpoint — pipeline barrier plus the edge
/// state captured at the same cut — and persists it atomically.
///
/// The discretizer lock is held across the barrier enqueue so no producer
/// can stamp a record between the pipeline cut and the stamping snapshot:
/// the pair is a single consistent cut. Producers block on stamping for
/// the barrier's traversal time; the pipeline itself (which drains the
/// ingest channel) needs no lock, so the pause is bounded and deadlock-free.
fn write_checkpoint(
    shared: &Shared,
    sender: &RecordSender,
    store: &CheckpointStore,
) -> Result<u64, String> {
    let discretizer = shared.discretizer.lock();
    let pipeline = sender.checkpoint().map_err(|e| e.to_string())?;
    let discretizer_ckpt = discretizer.checkpoint();
    // Producers stamp, push AND count under this lock (see
    // `producer_loop`), so while it is held the record counters are frozen
    // at exactly the cut: capture them before releasing it. (`bytes_in` /
    // `records_rejected` tick outside the lock and stay approximate.)
    let stats = EdgeStatsCheckpoint::capture(&shared.stats);
    drop(discretizer);
    let seq = pipeline.seq;
    let checkpoint = ServeCheckpoint {
        pipeline,
        discretizer: discretizer_ckpt,
        stats,
    };
    store.save(seq, &checkpoint).map_err(|e| e.to_string())?;
    shared.stats.note_checkpoint(seq);
    Ok(seq)
}

/// Spawns the periodic checkpoint thread. The worker owns a producer
/// handle into the pipeline; it must be stopped before the stream can end
/// (see [`Server::finish`]).
fn spawn_checkpoint_worker(
    shared: Arc<Shared>,
    sender: RecordSender,
    store: CheckpointStore,
    every: std::time::Duration,
) -> CheckpointWorker {
    let stop = Arc::new((StdMutex::new(false), Condvar::new()));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("serve-checkpoint".into())
        .spawn(move || {
            let (lock, cvar) = &*thread_stop;
            loop {
                let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                if *guard {
                    return;
                }
                let (guard, _) = cvar
                    .wait_timeout(guard, every)
                    .unwrap_or_else(|e| e.into_inner());
                if *guard {
                    return;
                }
                drop(guard);
                if write_checkpoint(&shared, &sender, &store).is_err() {
                    // Pipeline gone (shutdown race) or disk failure; the
                    // next tick retries, and shutdown stops the loop.
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        })
        .expect("failed to spawn checkpoint thread");
    CheckpointWorker { handle, stop }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(conn_shared, stream);
            });
    }
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // Idle-dead defense: a silent producer or a subscriber that stopped
    // reading errors its handler out instead of pinning the thread (and,
    // for producers, the skew limiter's frontier) forever.
    stream.set_read_timeout(shared.socket_timeout).ok();
    stream.set_write_timeout(shared.socket_timeout).ok();
    let conn_id = shared.register_conn(&stream);
    let result = dispatch(&shared, stream, conn_id);
    shared.unregister_conn(conn_id);
    result
}

fn dispatch(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(());
    }
    let trimmed = first.trim();
    if let Some(topic) = trimmed.strip_prefix("SUBSCRIBE") {
        shared.mark_subscriber(conn_id);
        serve_subscriber(shared, stream, topic)
    } else if trimmed == "STATUS" {
        serve_status(shared, stream)
    } else if trimmed == "METRICS" {
        serve_metrics(shared, stream)
    } else if trimmed == "EVENTS" || trimmed.starts_with("EVENTS ") {
        serve_events(shared, stream, trimmed.strip_prefix("EVENTS").unwrap_or(""))
    } else {
        serve_producer(shared, reader, first, conn_id)
    }
}

/// Producer connection: every line is one record; parse → stamp → push.
fn serve_producer(
    shared: &Arc<Shared>,
    mut reader: BufReader<TcpStream>,
    first_line: String,
    conn_id: u64,
) -> std::io::Result<()> {
    let Some(sender) = shared.ingest.lock().clone() else {
        return Ok(()); // draining: refuse new records
    };
    shared.stats.producers.fetch_add(1, Ordering::Relaxed);
    shared.skew.register(conn_id);
    let mut quarantined = 0u64;
    let result = producer_loop(
        shared,
        &mut reader,
        first_line,
        sender,
        conn_id,
        &mut quarantined,
    );
    shared.skew.deregister(conn_id);
    shared.stats.producers.fetch_sub(1, Ordering::Relaxed);
    // One journal entry per connection that produced garbage: which peer,
    // how many lines — the per-line payloads are in the dead-letter ring.
    if quarantined > 0 {
        if let Some(obs) = &*shared.obs.lock() {
            obs.emit(ObsEventKind::RecordQuarantined {
                conn: conn_id,
                records: quarantined,
            });
        }
    }
    result
}

/// Most recent malformed lines kept for inspection (older ones rotate out).
const DEAD_LETTER_CAPACITY: usize = 256;

/// Moves one malformed producer line into the bounded dead-letter ring.
fn quarantine_line(shared: &Shared, line: &str, quarantined: &mut u64) {
    *quarantined += 1;
    shared
        .stats
        .records_quarantined
        .fetch_add(1, Ordering::Relaxed);
    let mut ring = shared.dead_letters.lock();
    if ring.len() >= DEAD_LETTER_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(line.trim_end().to_string());
}

fn producer_loop(
    shared: &Arc<Shared>,
    reader: &mut BufReader<TcpStream>,
    first_line: String,
    sender: RecordSender,
    conn_id: u64,
    quarantined: &mut u64,
) -> std::io::Result<()> {
    let ingest_batch = shared.ingest_batch;
    let span_bound = shared.skew.max_skew;
    let mut line = first_line;
    let mut consecutive_errors = 0usize;
    let mut raws: Vec<RawRecord> = Vec::with_capacity(ingest_batch);
    let mut eof = false;
    while !eof {
        // Gather: parse the line in hand, then keep pulling lines for as
        // long as complete lines are *already buffered* and the batch has
        // room. Gathering never waits on the socket, so a trickling
        // producer ships batches of one while a saturating one fills whole
        // batches.
        raws.clear();
        // Projected tick range of the gathered batch. The span is bounded
        // by `max_producer_skew`: gathered records are *admitted* (visible
        // to the skew limiter) before they are *pushed*, so an unbounded
        // batch span would let the pushed frontier lag the admitted one by
        // the whole batch — far enough for the aligner to retire this
        // producer's chains and drop the batch's records as late once it
        // finally lands.
        let mut tick_range: Option<(u32, u32)> = None;
        loop {
            shared
                .stats
                .bytes_in
                .fetch_add(line.len() as u64, Ordering::Relaxed);
            if !line.trim().is_empty() {
                match WireRecord::parse(&line) {
                    Ok(wire) => {
                        consecutive_errors = 0;
                        // Tick-span bound (lock-free projection): ship the
                        // batch gathered so far before this record would
                        // stretch it past the skew window.
                        let tick = shared.projector.discretize_time(wire.time).0;
                        let (lo, hi) = tick_range
                            .map_or((tick, tick), |(lo, hi)| (lo.min(tick), hi.max(tick)));
                        if hi - lo > span_bound && !raws.is_empty() {
                            if !flush_batch(shared, &sender, &mut raws) {
                                return Ok(()); // pipeline gone
                            }
                            tick_range = Some((tick, tick));
                        } else {
                            tick_range = Some((lo, hi));
                        }
                        // Hold this producer to the cross-producer skew
                        // window per record, exactly as in record-at-a-time
                        // ingestion. The admit wait can stretch to seconds
                        // and must hold neither the stamping lock nor the
                        // batch hostage — at most a skew window's worth of
                        // gathered records rides the wait.
                        shared.skew.admit(conn_id, tick);
                        raws.push(RawRecord::new(
                            icpe_types::ObjectId(wire.id),
                            icpe_types::Point::new(wire.x, wire.y),
                            wire.time,
                        ));
                    }
                    Err(_) => {
                        shared
                            .stats
                            .records_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        quarantine_line(shared, &line, quarantined);
                        consecutive_errors += 1;
                        if consecutive_errors >= shared.max_consecutive_parse_errors {
                            // Dropping the peer must not drop the valid
                            // records gathered before its garbage.
                            let _ = flush_batch(shared, &sender, &mut raws);
                            return Ok(());
                        }
                    }
                }
            }
            if raws.len() >= ingest_batch || !reader.buffer().contains(&b'\n') {
                break;
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    // Connection died mid-gather: the records already
                    // gathered were valid and admitted — deliver them.
                    let _ = flush_batch(shared, &sender, &mut raws);
                    return Err(e);
                }
            }
        }

        if !flush_batch(shared, &sender, &mut raws) {
            return Ok(()); // pipeline gone
        }

        if eof {
            return Ok(());
        }
        // No shutdown-flag check here: during drain, a departed producer's
        // buffered records must still be consumed (until EOF); producers
        // that stay open are cut off by `finish` closing their socket.
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
    }
    Ok(())
}

/// Stamps, pushes and counts one gathered ingest batch under ONE stamping
/// lock hold: the checkpoint worker enqueues its barrier while holding the
/// same lock, so "in the discretizer's stamping state" and "entered the
/// pipeline before the cut" coincide — a record (or batch) can never
/// straddle the two sides of a checkpoint. Push may block under
/// backpressure while holding the lock; the pipeline drains independently
/// of it, so the stall is bounded and deadlock-free. Stale/duplicate ticks
/// stamp to `None` and are counted as rejected. Returns `false` when the
/// pipeline is gone.
fn flush_batch(shared: &Shared, sender: &RecordSender, raws: &mut Vec<RawRecord>) -> bool {
    if raws.is_empty() {
        return true;
    }
    let mut stamped: Vec<icpe_types::GpsRecord> = Vec::with_capacity(raws.len());
    let mut stale = 0u64;
    {
        let mut discretizer = shared.discretizer.lock();
        let mut max_tick: Option<u32> = None;
        for raw in raws.iter() {
            match discretizer.push(raw) {
                Some(record) => {
                    max_tick =
                        Some(max_tick.map_or(record.time.0, |t| std::cmp::max(t, record.time.0)));
                    stamped.push(record);
                }
                None => stale += 1,
            }
        }
        if !stamped.is_empty() {
            let accepted = stamped.len() as u64;
            if sender.push_batch(stamped).is_err() {
                return false; // pipeline gone
            }
            shared.stats.note_batch(accepted);
            if let Some(tick) = max_tick {
                shared.stats.note_ingested_tick(tick);
            }
        }
    }
    if stale > 0 {
        shared
            .stats
            .records_rejected
            .fetch_add(stale, Ordering::Relaxed);
    }
    raws.clear();
    true
}

/// Subscriber connection: register with the hub, then become the writer
/// loop. Ends when the peer disconnects, the hub sheds us, or the stream
/// ends — the backlog is always flushed first.
fn serve_subscriber(
    shared: &Arc<Shared>,
    stream: TcpStream,
    topic_arg: &str,
) -> std::io::Result<()> {
    let Some(topic) = Topic::parse(topic_arg) else {
        let mut w = BufWriter::new(stream);
        writeln!(w, "ERR unknown topic (use: patterns | snapshots | all)")?;
        return w.flush();
    };
    let subscription = shared.hub.subscribe(topic);
    shared.stats.subscribers.fetch_add(1, Ordering::Relaxed);
    let mut writer = BufWriter::new(stream);
    let mut result = Ok(());
    for line in subscription.lines().iter() {
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| {
            writer.write_all(b"\n")?;
            writer.flush()
        }) {
            result = Err(e);
            break; // peer gone
        }
    }
    shared.hub.unsubscribe(subscription.id);
    shared.stats.subscribers.fetch_sub(1, Ordering::Relaxed);
    result
}

/// The pipeline's supervision health as seen from the serve edge
/// (`Healthy` before launch completes or for an unsupervised engine).
fn shared_health(shared: &Shared) -> HealthState {
    shared
        .health
        .lock()
        .as_ref()
        .map_or(HealthState::Healthy, HealthHandle::get)
}

/// Assembles the `STATUS` block: the edge/pipeline counters plus the
/// supervision health line.
fn render_status(shared: &Shared) -> String {
    let metrics = shared.pipeline_metrics.lock().clone().unwrap_or_default();
    let routing = shared.routing.lock().as_ref().map(RoutingHandle::status);
    let sync = shared.sync.lock().as_ref().map(SyncHandle::status);
    let align = shared.align.lock().as_ref().map(AlignHandle::status);
    let depth = shared.hub.max_queue_depth();
    let mut text = shared.stats.render(&metrics, routing, sync, align, depth);
    text.push_str("health=");
    text.push_str(shared_health(shared).as_str());
    text.push('\n');
    text
}

/// `STATUS` connection: one text block, then close.
fn serve_status(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let mut w = BufWriter::new(stream);
    w.write_all(render_status(shared).as_bytes())?;
    w.flush()
}

/// Assembles the `METRICS` exposition: per-stage/per-exchange pipeline
/// families first, then the serve-level edge families. The two renders use
/// disjoint prefixes (`icpe_` vs `icpe_serve_`), so concatenation keeps
/// every family's samples contiguous as the exposition format requires.
fn render_metrics(shared: &Shared) -> String {
    let metrics = shared.pipeline_metrics.lock().clone().unwrap_or_default();
    let mut text = match &*shared.obs.lock() {
        Some(obs) => obs.render_prometheus(),
        None => String::new(),
    };
    text.push_str(
        &shared
            .stats
            .render_prometheus(&metrics, shared.hub.max_queue_depth()),
    );
    let health = shared_health(shared);
    text.push_str("# HELP icpe_serve_health Pipeline supervision health (0=healthy 1=recovering 2=degraded 3=failed).\n");
    text.push_str("# TYPE icpe_serve_health gauge\n");
    text.push_str(&format!("icpe_serve_health {}\n", health as u8));
    text
}

/// `METRICS` connection: one Prometheus text-exposition block, then close.
fn serve_metrics(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let mut w = BufWriter::new(stream);
    w.write_all(render_metrics(shared).as_bytes())?;
    w.flush()
}

/// `EVENTS [since-seq]` connection: the journal's retained entries with
/// sequence numbers strictly greater than `since-seq` (default 0 = all
/// retained), one JSON object per line, then close. Consumers page by
/// passing the last `seq` they saw.
fn serve_events(shared: &Arc<Shared>, stream: TcpStream, arg: &str) -> std::io::Result<()> {
    let mut w = BufWriter::new(stream);
    let since = match arg.trim() {
        "" => 0u64,
        s => match s.parse() {
            Ok(n) => n,
            Err(_) => {
                writeln!(w, "ERR usage: EVENTS [since-seq]")?;
                return w.flush();
            }
        },
    };
    if let Some(obs) = shared.obs.lock().clone() {
        for event in obs.events_since(since) {
            writeln!(w, "{}", event.render_json())?;
        }
    }
    w.flush()
}
