//! Blocking client helpers: subscribe to events, fetch status, send
//! records. Used by the integration tests and the `streaming_live` example;
//! also a reference implementation of the wire protocol for real consumers.

use crate::protocol::{Event, Topic, WireRecord};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// A live subscription: iterate to receive events until the server ends
/// the stream (or sheds this subscriber).
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Subscription {
    /// Like [`Subscription::connect`], but retries the connection with
    /// exponential backoff — the client side of fault tolerance: a server
    /// that is restarting (or has shed this consumer and not yet settled)
    /// is retried rather than given up on. `attempts` counts total tries;
    /// `backoff` is the first retry's delay and doubles per retry.
    pub fn connect_with_retry(
        addr: &str,
        topic: Topic,
        attempts: u32,
        backoff: std::time::Duration,
    ) -> std::io::Result<Subscription> {
        retry_with_backoff(attempts, backoff, || Subscription::connect(addr, topic))
    }

    /// Connects and subscribes to `topic`.
    pub fn connect(addr: &str, topic: Topic) -> std::io::Result<Subscription> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let topic_name = match topic {
            Topic::Patterns => "patterns",
            Topic::Snapshots => "snapshots",
            Topic::All => "all",
        };
        let mut writer = stream.try_clone()?;
        writeln!(writer, "SUBSCRIBE {topic_name}")?;
        writer.flush()?;
        Ok(Subscription {
            reader: BufReader::new(stream),
        })
    }

    /// Reads the next event; `Ok(None)` at end of stream.
    pub fn next_event(&mut self) -> std::io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Event::parse(&line)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
        }
    }

    /// Drains the subscription to end of stream, collecting every event.
    pub fn collect_events(mut self) -> std::io::Result<Vec<Event>> {
        let mut events = Vec::new();
        while let Some(event) = self.next_event()? {
            events.push(event);
        }
        Ok(events)
    }

    /// Drains the subscription to end of stream, collecting raw NDJSON
    /// lines without parsing them. The fast path for high-volume
    /// consumers: reading must outpace the publisher to avoid being shed,
    /// so defer parsing (`Event::parse`) until after the drain.
    pub fn collect_lines(mut self) -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(lines);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                lines.push(trimmed.to_string());
            }
        }
    }
}

/// Runs `op` up to `attempts` times, sleeping `backoff` (doubling each
/// retry, capped at 2 s) between failures; returns the first success or the
/// last error.
fn retry_with_backoff<T>(
    attempts: u32,
    backoff: std::time::Duration,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let cap = std::time::Duration::from_secs(2);
    let mut delay = backoff;
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = (delay * 2).min(cap);
        }
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("no attempts made")))
}

/// A resumable `EVENTS` tail: remembers the last journal sequence number it
/// has seen and asks only for what came after, so a consumer that was
/// disconnected (shed as a slow subscriber, network blip, server restart)
/// reconnects and backfills **without duplicates** — the journal's
/// monotonic `seq` is the resume cursor, exactly as `EVENTS since-seq`
/// serves it.
pub struct EventFollower {
    addr: String,
    since: u64,
    attempts: u32,
    backoff: std::time::Duration,
}

impl EventFollower {
    /// A follower starting from journal sequence `since` (0 = everything
    /// retained), reconnecting with up to 5 attempts of doubling backoff
    /// starting at 50 ms.
    pub fn new(addr: &str, since: u64) -> EventFollower {
        EventFollower {
            addr: addr.to_string(),
            since,
            attempts: 5,
            backoff: std::time::Duration::from_millis(50),
        }
    }

    /// Overrides the reconnect policy.
    pub fn with_retry(mut self, attempts: u32, backoff: std::time::Duration) -> EventFollower {
        self.attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// The resume cursor: the highest journal `seq` seen so far.
    pub fn cursor(&self) -> u64 {
        self.since
    }

    /// Fetches every journal line newer than the cursor (retrying the
    /// connection per the policy) and advances the cursor past them. An
    /// empty result means no new events, not end of stream.
    pub fn poll(&mut self) -> std::io::Result<Vec<String>> {
        let since = self.since;
        let addr = self.addr.clone();
        let lines = retry_with_backoff(self.attempts, self.backoff, || fetch_events(&addr, since))?;
        for line in &lines {
            if let Some(seq) = parse_event_seq(line) {
                self.since = self.since.max(seq);
            }
        }
        Ok(lines)
    }
}

/// Extracts the `"seq":N` field a journal line leads with.
fn parse_event_seq(line: &str) -> Option<u64> {
    let rest = line.split("\"seq\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Fetches and parses the `STATUS` block as `(key, value)` pairs.
pub fn fetch_status(addr: &str) -> std::io::Result<Vec<(String, String)>> {
    Ok(crate::stats::parse_status(&fetch_text(addr, "STATUS")?))
}

/// Fetches the raw `METRICS` block (Prometheus text exposition format).
pub fn fetch_metrics(addr: &str) -> std::io::Result<String> {
    fetch_text(addr, "METRICS")
}

/// Fetches the `EVENTS` journal entries with sequence numbers strictly
/// greater than `since` (0 = everything retained), one raw JSON line per
/// entry.
pub fn fetch_events(addr: &str, since: u64) -> std::io::Result<Vec<String>> {
    let text = fetch_text(addr, &format!("EVENTS {since}"))?;
    Ok(text.lines().map(str::to_string).collect())
}

/// One-shot request/response: send `request` as a line, read to EOF.
fn fetch_text(addr: &str, request: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{request}")?;
    writer.flush()?;
    let mut text = String::new();
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        text.push_str(&line);
    }
    Ok(text)
}

/// Opens one producer connection and streams `records` (CSV or NDJSON);
/// returns how many were written.
pub fn send_records<I: IntoIterator<Item = WireRecord>>(
    addr: &str,
    records: I,
    json: bool,
) -> std::io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream);
    let mut sent = 0u64;
    for record in records {
        if json {
            writeln!(writer, "{}", record.to_json())?;
        } else {
            writeln!(writer, "{}", record.to_csv())?;
        }
        sent += 1;
    }
    writer.flush()?;
    Ok(sent)
}

/// Opens a raw producer connection and writes arbitrary lines (for tests
/// exercising the malformed-input path).
pub fn send_lines<I: IntoIterator<Item = String>>(addr: &str, lines: I) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream);
    for line in lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()
}
