//! Property-based tests: R-tree ≡ brute force, grid coverage lemmas,
//! sub-cell refinement candidate equivalence.

use icpe_index::{GrIndex, Grid, GridKey, RTree, RefinementTree};
use icpe_types::{DistanceMetric, ObjectId, Point, Rect};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_point() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), 0..max)
}

/// The ε-pairs a replication scheme discovers: a pair `(i, j)` is reported
/// iff the points are within Chebyshev ε **and** they meet in some cell —
/// one partner's home key lies in the other's `{home} ∪ query keys` set.
/// This mirrors the pipeline exactly (data object to the home cell, query
/// objects to the replication keys, exact ε check at the probe).
fn discovered_pairs(
    points: &[Point],
    eps: f64,
    keys_of: impl Fn(Point) -> (GridKey, Vec<GridKey>),
) -> BTreeSet<(usize, usize)> {
    let placed: Vec<(GridKey, Vec<GridKey>)> = points.iter().map(|&p| keys_of(p)).collect();
    let mut out = BTreeSet::new();
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if !DistanceMetric::Chebyshev.within(&points[i], &points[j], eps) {
                continue;
            }
            let (hi, ki) = &placed[i];
            let (hj, kj) = &placed[j];
            if hi == hj || ki.contains(hj) || kj.contains(hi) {
                out.insert((i, j));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_insert_equals_brute_force(points in arb_points(300), q in arb_point(), eps in 0.1f64..30.0) {
        let mut tree = RTree::with_max_entries(8);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        tree.check_invariants();
        let rect = Rect::range_region(q, eps);
        let mut got: Vec<usize> = tree.query_rect_vec(&rect).iter().map(|(_, v)| **v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points.iter().enumerate()
            .filter(|(_, p)| rect.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rtree_bulk_load_equals_incremental(points in arb_points(300), q in arb_point(), eps in 0.1f64..30.0) {
        let mut inc = RTree::with_max_entries(8);
        for (i, p) in points.iter().enumerate() {
            inc.insert(*p, i);
        }
        let items: Vec<(Point, usize)> = points.iter().copied().zip(0..).collect();
        let bulk = RTree::bulk_load(items);
        if !points.is_empty() {
            bulk.check_invariants();
        }
        prop_assert_eq!(inc.len(), bulk.len());

        let rect = Rect::range_region(q, eps);
        let mut a: Vec<usize> = inc.query_rect_vec(&rect).iter().map(|(_, v)| **v).collect();
        let mut b: Vec<usize> = bulk.query_rect_vec(&rect).iter().map(|(_, v)| **v).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rtree_metric_query_equals_brute_force(
        points in arb_points(200),
        q in arb_point(),
        eps in 0.1f64..20.0,
        metric_idx in 0usize..3,
    ) {
        let metric = [DistanceMetric::L1, DistanceMetric::L2, DistanceMetric::Chebyshev][metric_idx];
        let mut tree = RTree::with_max_entries(6);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let mut out = Vec::new();
        tree.query_within(&q, eps, metric, &mut out);
        let mut got: Vec<usize> = out.iter().map(|(_, v)| **v).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points.iter().enumerate()
            .filter(|(_, p)| metric.within(&q, p, eps))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_key_is_consistent_with_cell_rect(p in arb_point(), lg in 0.05f64..20.0) {
        let g = Grid::new(lg);
        let key = g.key_of(p);
        let rect = g.cell_rect(key);
        // The point lies in its cell (half-open semantics may put boundary
        // points in the neighbor; containment check is closed, so inclusion
        // always holds on the closed rect).
        prop_assert!(rect.contains_point(&p), "point {:?} not in cell rect {:?}", p, rect);
        // The cell is among the keys covering any rect containing p.
        let covering = g.keys_in_rect(&Rect::range_region(p, 0.01));
        prop_assert!(covering.contains(&key));
    }

    /// The heart of Lemma 1: for any pair (a, b) within Chebyshev distance
    /// eps, at least one direction of the replication scheme finds the pair:
    /// either b's home cell is in a's Lemma-1 key set (or equals a's home),
    /// or a's home cell is in b's Lemma-1 key set (or equals b's home).
    #[test]
    fn lemma1_replication_covers_all_pairs(
        a in arb_point(),
        dx in -5.0f64..5.0,
        dy in -5.0f64..5.0,
        lg in 0.5f64..10.0,
        eps in 0.5f64..5.0,
    ) {
        let b = Point::new(a.x + dx.clamp(-eps, eps), a.y + dy.clamp(-eps, eps));
        prop_assert!(DistanceMetric::Chebyshev.within(&a, &b, eps + 1e-9));
        let g = Grid::new(lg);
        let home_a = g.key_of(a);
        let home_b = g.key_of(b);

        let a_reaches_b = home_a == home_b || g.lemma1_query_keys(a, eps).contains(&home_b);
        let b_reaches_a = home_b == home_a || g.lemma1_query_keys(b, eps).contains(&home_a);
        prop_assert!(
            a_reaches_b || b_reaches_a,
            "pair not covered: a={:?} (home {}), b={:?} (home {})",
            a, home_a, b, home_b
        );
    }

    /// Lemma 1 under refinement: for any pair within Chebyshev ε and any
    /// refinement tree, at least one partner's refined replication set
    /// reaches the other's refined home key (or they share a leaf) — the
    /// ε-padding at sub-cell borders loses no pair.
    #[test]
    fn refined_lemma1_replication_covers_all_pairs(
        a in arb_point(),
        dx in -5.0f64..5.0,
        dy in -5.0f64..5.0,
        lg in 0.5f64..10.0,
        eps in 0.5f64..5.0,
        depth_a in 0u8..=3,
        depth_b in 0u8..=3,
        extra in prop::collection::vec((-10i64..10, -10i64..10, 1u8..=3), 0..4),
    ) {
        let b = Point::new(a.x + dx.clamp(-eps, eps), a.y + dy.clamp(-eps, eps));
        prop_assert!(DistanceMetric::Chebyshev.within(&a, &b, eps + 1e-9));
        let g = Grid::new(lg);
        let mut tree = RefinementTree::new();
        // Refine the cells that actually host the pair (the interesting
        // case) plus arbitrary bystander cells.
        tree.set_depth(g.key_of(a), depth_a);
        tree.set_depth(g.key_of(b), depth_b);
        for (x, y, d) in extra {
            tree.set_depth(GridKey::new(x, y), d);
        }
        let home_a = g.key_of_refined(&tree, a);
        let home_b = g.key_of_refined(&tree, b);
        let a_reaches_b =
            home_a == home_b || g.lemma1_query_keys_refined(&tree, a, eps).contains(&home_b);
        let b_reaches_a =
            home_b == home_a || g.lemma1_query_keys_refined(&tree, b, eps).contains(&home_a);
        prop_assert!(
            a_reaches_b || b_reaches_a,
            "pair not covered under refinement: a={:?} (home {}), b={:?} (home {}), tree={:?}",
            a, home_a, b, home_b, tree
        );
    }

    /// Refined ≡ unrefined candidate pair sets: for arbitrary point sets,
    /// ε, and refinement trees, the ε-pairs discovered through the
    /// refinement-aware `lemma1_query_keys`/`full_query_keys` are exactly
    /// the ε-pairs of the unrefined grid — which are exactly the brute-force
    /// ε-pairs. (Refinement may *prune* far-apart same-base-cell candidates
    /// before the probe — that is the point — but never drops a true pair.)
    #[test]
    fn refined_candidate_pairs_equal_unrefined(
        points in arb_points(40),
        lg in 0.5f64..10.0,
        eps in 0.5f64..5.0,
        refinements in prop::collection::vec((0usize..40, 1u8..=3), 0..8),
    ) {
        let g = Grid::new(lg);
        let mut tree = RefinementTree::new();
        // Refine cells that contain actual points so the tree is exercised.
        for (i, d) in refinements {
            if let Some(p) = points.get(i.min(points.len().saturating_sub(1))) {
                tree.set_depth(g.key_of(*p), d);
            }
        }

        let mut brute = BTreeSet::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if DistanceMetric::Chebyshev.within(&points[i], &points[j], eps) {
                    brute.insert((i, j));
                }
            }
        }

        let unrefined_lemma1 =
            discovered_pairs(&points, eps, |p| (g.key_of(p), g.lemma1_query_keys(p, eps)));
        let refined_lemma1 = discovered_pairs(&points, eps, |p| {
            (g.key_of_refined(&tree, p), g.lemma1_query_keys_refined(&tree, p, eps))
        });
        let refined_full = discovered_pairs(&points, eps, |p| {
            (g.key_of_refined(&tree, p), g.full_query_keys_refined(&tree, p, eps))
        });

        prop_assert_eq!(&refined_lemma1, &unrefined_lemma1, "lemma1: refined ≠ unrefined");
        prop_assert_eq!(&refined_lemma1, &brute, "lemma1 refined ≠ brute force");
        prop_assert_eq!(&refined_full, &brute, "full refined ≠ brute force");
    }

    #[test]
    fn nearest_k_equals_brute_force(
        points in arb_points(200),
        q in arb_point(),
        k in 1usize..12,
        metric_idx in 0usize..3,
    ) {
        let metric = [DistanceMetric::L1, DistanceMetric::L2, DistanceMetric::Chebyshev][metric_idx];
        let mut tree = RTree::with_max_entries(6);
        for (i, p) in points.iter().enumerate() {
            tree.insert(*p, i);
        }
        let got = tree.nearest_k(&q, k, metric);
        let mut want: Vec<f64> = points.iter().map(|p| p.distance(&q, metric)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for ((_, _, d), w) in got.iter().zip(&want) {
            prop_assert!((d - w).abs() < 1e-9, "dist {} vs brute {}", d, w);
        }
        // Sorted ascending.
        prop_assert!(got.windows(2).all(|w| w[0].2 <= w[1].2));
    }

    #[test]
    fn gr_index_range_query_equals_brute_force(
        points in arb_points(250),
        q in arb_point(),
        eps in 0.1f64..15.0,
        lg in 0.5f64..20.0,
    ) {
        let pairs: Vec<(ObjectId, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (ObjectId(i as u32), *p))
            .collect();
        let idx = GrIndex::build_from_pairs(pairs.clone(), lg);
        let metric = DistanceMetric::Chebyshev;
        let mut got: Vec<u32> = idx.range_query(&q, eps, metric).into_iter().map(|(id, _)| id.0).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = pairs.iter()
            .filter(|(_, p)| metric.within(&q, p, eps))
            .map(|(id, _)| id.0)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
