//! An arena-based R-tree over planar points.
//!
//! The paper's local index ([3] in its references) — one per grid cell.
//! Supports the two access patterns the range join needs:
//!
//! 1. **incremental insertion** with immediate querying (Lemma 2 interleaves
//!    `query(o); insert(o)` over the data-object stream), and
//! 2. **bulk loading** (Sort-Tile-Recursive), used by the SRJ baseline that
//!    first builds the tree and only then queries it.
//!
//! Splits use the classic quadratic algorithm of Guttman. Nodes live in an
//! arena (`Vec`) and refer to each other by index, which keeps the structure
//! compact and avoids `Box`-per-node allocation churn.

use icpe_types::{DistanceMetric, Point, Rect};

/// Default maximum number of entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

#[derive(Debug, Clone)]
enum NodeKind<T> {
    Leaf { entries: Vec<(Point, T)> },
    Internal { children: Vec<usize> },
}

#[derive(Debug, Clone)]
struct Node<T> {
    mbr: Rect,
    kind: NodeKind<T>,
}

impl<T> Node<T> {
    fn new_leaf() -> Self {
        Node {
            mbr: Rect::empty(),
            kind: NodeKind::Leaf {
                entries: Vec::new(),
            },
        }
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries } => entries.len(),
            NodeKind::Internal { children } => children.len(),
        }
    }
}

/// An R-tree mapping points to payloads of type `T`.
///
/// Duplicate points are allowed (distinct objects can report the same
/// location); each inserted entry is reported independently by queries.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    nodes: Vec<Node<T>>,
    root: usize,
    max_entries: usize,
    min_entries: usize,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// An empty tree with a custom node capacity (`max_entries ≥ 4`).
    pub fn with_max_entries(max_entries: usize) -> Self {
        let max_entries = max_entries.max(4);
        RTree {
            nodes: vec![Node::new_leaf()],
            root: 0,
            max_entries,
            min_entries: (max_entries + 1) / 3,
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bounding rectangle of all entries (empty rect if none).
    pub fn mbr(&self) -> Rect {
        self.nodes[self.root].mbr
    }

    /// Inserts one point with its payload.
    pub fn insert(&mut self, point: Point, value: T) {
        let mut path = Vec::new();
        let leaf = self.choose_leaf(self.root, &point, &mut path);

        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf { entries } => entries.push((point, value)),
            NodeKind::Internal { .. } => unreachable!("choose_leaf returned an internal node"),
        }
        self.nodes[leaf].mbr.expand_to(&point);
        self.len += 1;

        // Walk back up: fix MBRs and split overflowing nodes.
        let mut split_of: Option<usize> = if self.nodes[leaf].len() > self.max_entries {
            Some(self.split(leaf))
        } else {
            None
        };
        for depth in (0..path.len() - 1).rev() {
            let parent = path[depth];
            self.nodes[parent].mbr.expand_to(&point);
            if let Some(new_node) = split_of.take() {
                let mbr = self.nodes[new_node].mbr;
                match &mut self.nodes[parent].kind {
                    NodeKind::Internal { children } => children.push(new_node),
                    NodeKind::Leaf { .. } => unreachable!("leaf on internal path"),
                }
                self.nodes[parent].mbr = self.nodes[parent].mbr.union(&mbr);
                if self.nodes[parent].len() > self.max_entries {
                    split_of = Some(self.split(parent));
                }
            }
        }
        if let Some(sibling) = split_of {
            self.grow_root(sibling);
        }
    }

    /// All entries whose point lies inside `rect` (boundary inclusive).
    pub fn query_rect<'a>(&'a self, rect: &Rect, out: &mut Vec<(&'a Point, &'a T)>) {
        self.query_node(self.root, rect, out);
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn query_rect_vec(&self, rect: &Rect) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        self.query_rect(rect, &mut out);
        out
    }

    /// All entries within distance `eps` of `center` under `metric`.
    ///
    /// Implemented as a rectangle query over the (slightly padded) square
    /// range region followed by a metric refinement. The refinement also runs
    /// for Chebyshev so the reported set is decided by exactly the same
    /// floating-point expression as [`DistanceMetric::within`] everywhere in
    /// the system — rectangle arithmetic alone can disagree at boundary
    /// distances.
    pub fn query_within<'a>(
        &'a self,
        center: &Point,
        eps: f64,
        metric: DistanceMetric,
        out: &mut Vec<(&'a Point, &'a T)>,
    ) {
        let region = Rect::padded_range_region(*center, eps);
        let before = out.len();
        self.query_node(self.root, &region, out);
        out.truncate_filtered(before, |(p, _)| metric.within(center, p, eps));
    }

    /// Like [`RTree::query_within`], but appends owned payload copies
    /// instead of borrows. This lets hot callers keep **one reusable result
    /// buffer across probes** (a `Vec<(&Point, &T)>` borrows the tree, so
    /// it cannot live in the same struct as the tree it borrows from; a
    /// `Vec<T>` can) — the range join's per-probe path allocates nothing.
    pub fn query_payloads_within(
        &self,
        center: &Point,
        eps: f64,
        metric: DistanceMetric,
        out: &mut Vec<T>,
    ) where
        T: Copy,
    {
        let region = Rect::padded_range_region(*center, eps);
        self.query_node_payloads(self.root, &region, center, eps, metric, out);
    }

    fn query_node_payloads(
        &self,
        node: usize,
        rect: &Rect,
        center: &Point,
        eps: f64,
        metric: DistanceMetric,
        out: &mut Vec<T>,
    ) where
        T: Copy,
    {
        let n = &self.nodes[node];
        if !n.mbr.intersects(rect) {
            return;
        }
        match &n.kind {
            NodeKind::Leaf { entries } => {
                for (p, v) in entries {
                    // Same rectangle filter + metric refinement expression
                    // as `query_within`, so both report identical sets at
                    // boundary distances.
                    if rect.contains_point(p) && metric.within(center, p, eps) {
                        out.push(*v);
                    }
                }
            }
            NodeKind::Internal { children } => {
                for &c in children {
                    self.query_node_payloads(c, rect, center, eps, metric, out);
                }
            }
        }
    }

    /// The `k` entries nearest to `center` under `metric`, closest first
    /// (fewer if the tree holds fewer). Classic best-first branch-and-bound
    /// over node MBRs.
    ///
    /// Used by downstream applications (e.g. matching a probe object to the
    /// nearest co-movement group in future-movement prediction); the range
    /// join itself never needs it.
    pub fn nearest_k<'a>(
        &'a self,
        center: &Point,
        k: usize,
        metric: DistanceMetric,
    ) -> Vec<(&'a Point, &'a T, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of current best k (by distance), min-heap of frontier.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Cand(f64, usize);
        impl Eq for Cand {}
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        frontier.push(Reverse(Cand(
            mbr_min_dist(&self.nodes[self.root].mbr, center, metric),
            self.root,
        )));
        let mut best: Vec<(&Point, &T, f64)> = Vec::with_capacity(k + 1);
        while let Some(Reverse(Cand(bound, node))) = frontier.pop() {
            if best.len() == k && bound >= best.last().unwrap().2 {
                break; // no node can improve the current k-th distance
            }
            match &self.nodes[node].kind {
                NodeKind::Leaf { entries } => {
                    for (p, v) in entries {
                        let d = p.distance(center, metric);
                        if best.len() < k || d < best.last().unwrap().2 {
                            let pos = best
                                .binary_search_by(|probe| probe.2.total_cmp(&d))
                                .unwrap_or_else(|e| e);
                            best.insert(pos, (p, v, d));
                            best.truncate(k);
                        }
                    }
                }
                NodeKind::Internal { children } => {
                    for &c in children {
                        let d = mbr_min_dist(&self.nodes[c].mbr, center, metric);
                        if best.len() < k || d < best.last().unwrap().2 {
                            frontier.push(Reverse(Cand(d, c)));
                        }
                    }
                }
            }
        }
        best
    }

    /// Iterates over all stored entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Point, &T)> {
        self.nodes.iter().flat_map(|n| match &n.kind {
            NodeKind::Leaf { entries } => entries.iter().map(|(p, v)| (p, v)).collect::<Vec<_>>(),
            NodeKind::Internal { .. } => Vec::new(),
        })
    }

    /// The height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Internal { children } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Bulk-loads a tree with Sort-Tile-Recursive packing.
    ///
    /// Produces a tree whose leaves are filled close to capacity; used by the
    /// SRJ baseline which builds the whole local index before querying.
    pub fn bulk_load(mut items: Vec<(Point, T)>) -> Self {
        Self::bulk_load_with_max_entries(DEFAULT_MAX_ENTRIES, &mut items)
    }

    /// STR bulk loading with a custom node capacity.
    pub fn bulk_load_with_max_entries(max_entries: usize, items: &mut Vec<(Point, T)>) -> Self {
        let mut tree = Self::with_max_entries(max_entries);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let cap = tree.max_entries;

        // --- pack leaves ---
        let n = items.len();
        let num_leaves = n.div_ceil(cap);
        let num_slices = (num_leaves as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(num_slices);
        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));

        let mut leaves: Vec<usize> = Vec::with_capacity(num_leaves);
        let mut drained: Vec<(Point, T)> = std::mem::take(items);
        // Process slice by slice, popping from the back to move values out.
        let mut slices: Vec<Vec<(Point, T)>> = Vec::with_capacity(num_slices);
        while !drained.is_empty() {
            let take = slice_size.min(drained.len());
            let rest = drained.split_off(take);
            slices.push(std::mem::replace(&mut drained, rest));
        }
        for mut slice in slices {
            slice.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            while !slice.is_empty() {
                let take = cap.min(slice.len());
                let rest = slice.split_off(take);
                let chunk = std::mem::replace(&mut slice, rest);
                let mut mbr = Rect::empty();
                for (p, _) in &chunk {
                    mbr.expand_to(p);
                }
                tree.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Leaf { entries: chunk },
                });
                leaves.push(tree.nodes.len() - 1);
            }
        }

        // --- pack internal levels bottom-up ---
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(cap));
            for group in level.chunks(cap) {
                let mut mbr = Rect::empty();
                for &c in group {
                    mbr = mbr.union(&tree.nodes[c].mbr);
                }
                tree.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Internal {
                        children: group.to_vec(),
                    },
                });
                next.push(tree.nodes.len() - 1);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    // ---- internals -------------------------------------------------------

    /// Descends to the leaf best suited for `point`, recording the path
    /// (root..=leaf) into `path`. Returns the leaf index.
    fn choose_leaf(&self, from: usize, point: &Point, path: &mut Vec<usize>) -> usize {
        path.clear();
        let mut node = from;
        loop {
            path.push(node);
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => return node,
                NodeKind::Internal { children } => {
                    let target = Rect::from_point(*point);
                    // Least enlargement, ties by smaller area.
                    let mut best = children[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for &c in children {
                        let enl = self.nodes[c].mbr.enlargement(&target);
                        let area = self.nodes[c].mbr.area();
                        if enl < best_enl || (enl == best_enl && area < best_area) {
                            best = c;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    node = best;
                }
            }
        }
    }

    /// Splits the overflowing node, leaving half in place and returning the
    /// index of the freshly allocated sibling.
    fn split(&mut self, node: usize) -> usize {
        let min = self.min_entries;
        match std::mem::replace(
            &mut self.nodes[node].kind,
            NodeKind::Leaf {
                entries: Vec::new(),
            },
        ) {
            NodeKind::Leaf { entries } => {
                let rects: Vec<Rect> = entries.iter().map(|(p, _)| Rect::from_point(*p)).collect();
                let (a_idx, b_idx) = quadratic_partition(&rects, min);
                let mut a = Vec::with_capacity(a_idx.len());
                let mut b = Vec::with_capacity(b_idx.len());
                let mut which = vec![false; entries.len()];
                for &i in &b_idx {
                    which[i] = true;
                }
                for (i, e) in entries.into_iter().enumerate() {
                    if which[i] {
                        b.push(e);
                    } else {
                        a.push(e);
                    }
                }
                let mbr_of = |es: &[(Point, T)]| {
                    let mut r = Rect::empty();
                    for (p, _) in es {
                        r.expand_to(p);
                    }
                    r
                };
                self.nodes[node].mbr = mbr_of(&a);
                self.nodes[node].kind = NodeKind::Leaf { entries: a };
                let sibling = Node {
                    mbr: mbr_of(&b),
                    kind: NodeKind::Leaf { entries: b },
                };
                self.nodes.push(sibling);
                self.nodes.len() - 1
            }
            NodeKind::Internal { children } => {
                let rects: Vec<Rect> = children.iter().map(|&c| self.nodes[c].mbr).collect();
                let (a_idx, b_idx) = quadratic_partition(&rects, min);
                let a: Vec<usize> = a_idx.iter().map(|&i| children[i]).collect();
                let b: Vec<usize> = b_idx.iter().map(|&i| children[i]).collect();
                let mbr_of = |cs: &[usize], nodes: &[Node<T>]| {
                    let mut r = Rect::empty();
                    for &c in cs {
                        r = r.union(&nodes[c].mbr);
                    }
                    r
                };
                self.nodes[node].mbr = mbr_of(&a, &self.nodes);
                let b_mbr = mbr_of(&b, &self.nodes);
                self.nodes[node].kind = NodeKind::Internal { children: a };
                self.nodes.push(Node {
                    mbr: b_mbr,
                    kind: NodeKind::Internal { children: b },
                });
                self.nodes.len() - 1
            }
        }
    }

    fn grow_root(&mut self, sibling: usize) {
        let old_root = self.root;
        let mbr = self.nodes[old_root].mbr.union(&self.nodes[sibling].mbr);
        self.nodes.push(Node {
            mbr,
            kind: NodeKind::Internal {
                children: vec![old_root, sibling],
            },
        });
        self.root = self.nodes.len() - 1;
    }

    fn query_node<'a>(&'a self, node: usize, rect: &Rect, out: &mut Vec<(&'a Point, &'a T)>) {
        let n = &self.nodes[node];
        if !n.mbr.intersects(rect) {
            return;
        }
        match &n.kind {
            NodeKind::Leaf { entries } => {
                for (p, v) in entries {
                    if rect.contains_point(p) {
                        out.push((p, v));
                    }
                }
            }
            NodeKind::Internal { children } => {
                for &c in children {
                    self.query_node(c, rect, out);
                }
            }
        }
    }

    /// Validates structural invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.check_node(self.root, true);
    }

    fn check_node(&self, node: usize, is_root: bool) -> (Rect, usize) {
        let n = &self.nodes[node];
        match &n.kind {
            NodeKind::Leaf { entries } => {
                let mut mbr = Rect::empty();
                for (p, _) in entries {
                    mbr.expand_to(p);
                    assert!(
                        n.mbr.contains_point(p),
                        "leaf MBR does not contain its point"
                    );
                }
                if !entries.is_empty() {
                    assert_eq!(mbr, n.mbr, "leaf MBR is not tight");
                }
                assert!(
                    entries.len() <= self.max_entries,
                    "leaf overflow: {} > {}",
                    entries.len(),
                    self.max_entries
                );
                (n.mbr, 1)
            }
            NodeKind::Internal { children } => {
                assert!(!children.is_empty(), "internal node with no children");
                assert!(
                    is_root || children.len() >= 2,
                    "non-root internal node with a single child"
                );
                assert!(children.len() <= self.max_entries, "internal overflow");
                let mut mbr = Rect::empty();
                let mut depth = None;
                for &c in children {
                    let (child_mbr, child_depth) = self.check_node(c, false);
                    assert!(
                        n.mbr.contains_rect(&child_mbr),
                        "parent MBR does not contain child MBR"
                    );
                    mbr = mbr.union(&child_mbr);
                    match depth {
                        None => depth = Some(child_depth),
                        Some(d) => assert_eq!(d, child_depth, "unbalanced tree"),
                    }
                }
                (mbr, depth.unwrap() + 1)
            }
        }
    }
}

/// Smallest possible distance from `center` to any point of `mbr` under the
/// given metric (the MINDIST bound of branch-and-bound kNN).
fn mbr_min_dist(mbr: &Rect, center: &Point, metric: DistanceMetric) -> f64 {
    let dx = (mbr.min_x - center.x).max(center.x - mbr.max_x).max(0.0);
    let dy = (mbr.min_y - center.y).max(center.y - mbr.max_y).max(0.0);
    match metric {
        DistanceMetric::L1 => dx + dy,
        DistanceMetric::L2 => (dx * dx + dy * dy).sqrt(),
        DistanceMetric::Chebyshev => dx.max(dy),
    }
}

/// Guttman's quadratic split: picks the two seeds wasting the most area, then
/// assigns each remaining rect to the group needing the least enlargement,
/// honoring the minimum fill `min`.
fn quadratic_partition(rects: &[Rect], min: usize) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(rects.len() >= 2);
    // Pick seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            let dead = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if dead > worst {
                worst = dead;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = rects[seed_a];
    let mut mbr_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..rects.len())
        .filter(|&i| i != seed_a && i != seed_b)
        .collect();

    while let Some(pos) = pick_next(&remaining, &mbr_a, &mbr_b, rects) {
        let i = remaining.swap_remove(pos);
        // Force assignment if one group must absorb all remaining to reach min.
        let need_a = min.saturating_sub(group_a.len());
        let need_b = min.saturating_sub(group_b.len());
        let left = remaining.len() + 1;
        let to_a = if need_a >= left {
            true
        } else if need_b >= left {
            false
        } else {
            let enl_a = mbr_a.enlargement(&rects[i]);
            let enl_b = mbr_b.enlargement(&rects[i]);
            enl_a < enl_b
                || (enl_a == enl_b
                    && (mbr_a.area() < mbr_b.area()
                        || (mbr_a.area() == mbr_b.area() && group_a.len() <= group_b.len())))
        };
        if to_a {
            group_a.push(i);
            mbr_a = mbr_a.union(&rects[i]);
        } else {
            group_b.push(i);
            mbr_b = mbr_b.union(&rects[i]);
        }
    }
    (group_a, group_b)
}

/// Picks the remaining rect with the greatest preference difference between
/// the two groups ("pick next" of the quadratic algorithm).
fn pick_next(remaining: &[usize], mbr_a: &Rect, mbr_b: &Rect, rects: &[Rect]) -> Option<usize> {
    remaining
        .iter()
        .enumerate()
        .max_by(|(_, &i), (_, &j)| {
            let di = (mbr_a.enlargement(&rects[i]) - mbr_b.enlargement(&rects[i])).abs();
            let dj = (mbr_a.enlargement(&rects[j]) - mbr_b.enlargement(&rects[j])).abs();
            di.total_cmp(&dj)
        })
        .map(|(pos, _)| pos)
}

/// Retains, among the elements appended after `from`, only those matching the
/// predicate. Small helper to keep `query_within` allocation-free.
trait TruncateFiltered<T> {
    fn truncate_filtered(&mut self, from: usize, keep: impl FnMut(&T) -> bool);
}

impl<T> TruncateFiltered<T> for Vec<T> {
    fn truncate_filtered(&mut self, from: usize, mut keep: impl FnMut(&T) -> bool) {
        let mut write = from;
        for read in from..self.len() {
            if keep(&self[read]) {
                self.swap(read, write);
                write += 1;
            }
        }
        self.truncate(write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize, seed: u64) -> Vec<(Point, usize)> {
        // Small deterministic LCG so the unit tests need no rand dependency.
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        (0..n).map(|i| (Point::new(next(), next()), i)).collect()
    }

    fn brute_rect(items: &[(Point, usize)], r: &Rect) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(p, _)| r.contains_point(p))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<usize> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t
            .query_rect_vec(&Rect::new(0.0, 0.0, 10.0, 10.0))
            .is_empty());
    }

    #[test]
    fn single_point_round_trip() {
        let mut t = RTree::new();
        t.insert(Point::new(5.0, 5.0), 42usize);
        assert_eq!(t.len(), 1);
        let hits = t.query_rect_vec(&Rect::new(4.0, 4.0, 6.0, 6.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, 42);
        assert!(t.query_rect_vec(&Rect::new(6.0, 6.0, 7.0, 7.0)).is_empty());
    }

    #[test]
    fn incremental_insert_matches_brute_force() {
        let items = pts(500, 7);
        let mut t = RTree::with_max_entries(8);
        for (p, i) in &items {
            t.insert(*p, *i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);

        for (qi, (q, _)) in items.iter().step_by(37).enumerate() {
            let r = Rect::range_region(*q, 3.0 + qi as f64);
            let mut got: Vec<usize> = t.query_rect_vec(&r).iter().map(|(_, v)| **v).collect();
            got.sort_unstable();
            assert_eq!(got, brute_rect(&items, &r));
        }
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = pts(1000, 13);
        let t = RTree::bulk_load(items.clone());
        t.check_invariants();
        assert_eq!(t.len(), 1000);

        for (q, _) in items.iter().step_by(83) {
            let r = Rect::range_region(*q, 5.0);
            let mut got: Vec<usize> = t.query_rect_vec(&r).iter().map(|(_, v)| **v).collect();
            got.sort_unstable();
            assert_eq!(got, brute_rect(&items, &r));
        }
    }

    #[test]
    fn bulk_load_small_inputs() {
        for n in 0..40 {
            let items = pts(n, n as u64 + 1);
            let t = RTree::bulk_load(items.clone());
            if n > 0 {
                t.check_invariants();
            }
            assert_eq!(t.len(), n);
            let all = t.query_rect_vec(&Rect::new(-1.0, -1.0, 101.0, 101.0));
            assert_eq!(all.len(), n);
        }
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let mut t = RTree::with_max_entries(4);
        for i in 0..20 {
            t.insert(Point::new(1.0, 1.0), i);
        }
        t.check_invariants();
        let hits = t.query_rect_vec(&Rect::new(1.0, 1.0, 1.0, 1.0));
        assert_eq!(hits.len(), 20);
    }

    #[test]
    fn query_within_refines_by_metric() {
        let mut t = RTree::new();
        t.insert(Point::new(1.0, 1.0), 0usize); // chebyshev 1, l1 2, l2 √2
        t.insert(Point::new(1.0, 0.0), 1usize); // all metrics: 1
        t.insert(Point::new(3.0, 3.0), 2usize); // outside
        let c = Point::new(0.0, 0.0);

        let mut out = Vec::new();
        t.query_within(&c, 1.0, DistanceMetric::Chebyshev, &mut out);
        assert_eq!(out.len(), 2);

        out.clear();
        t.query_within(&c, 1.0, DistanceMetric::L1, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(*out[0].1, 1);

        out.clear();
        t.query_within(&c, 1.2, DistanceMetric::L2, &mut out);
        assert_eq!(out.len(), 1);

        out.clear();
        t.query_within(&c, 1.5, DistanceMetric::L2, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn iter_sees_every_entry() {
        let items = pts(128, 3);
        let mut t = RTree::with_max_entries(6);
        for (p, i) in &items {
            t.insert(*p, *i);
        }
        let mut seen: Vec<usize> = t.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn collinear_points_split_correctly() {
        // Degenerate geometry: all points on a line → zero-area unions.
        let mut t = RTree::with_max_entries(4);
        for i in 0..64 {
            t.insert(Point::new(i as f64, 0.0), i);
        }
        t.check_invariants();
        let hits = t.query_rect_vec(&Rect::new(10.0, 0.0, 20.0, 0.0));
        assert_eq!(hits.len(), 11);
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        let items = pts(400, 21);
        let mut tree = RTree::with_max_entries(8);
        for (p, i) in &items {
            tree.insert(*p, *i);
        }
        for metric in [
            DistanceMetric::L1,
            DistanceMetric::L2,
            DistanceMetric::Chebyshev,
        ] {
            for (qi, (q, _)) in items.iter().step_by(97).enumerate() {
                let k = 1 + qi * 3;
                let got: Vec<f64> = tree
                    .nearest_k(q, k, metric)
                    .iter()
                    .map(|(_, _, d)| *d)
                    .collect();
                let mut want: Vec<f64> = items.iter().map(|(p, _)| p.distance(q, metric)).collect();
                want.sort_by(f64::total_cmp);
                want.truncate(k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "{metric:?} k={k}: {g} vs {w}");
                }
                // Distances come out sorted.
                assert!(got.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn nearest_k_edge_cases() {
        let empty: RTree<u32> = RTree::new();
        assert!(empty
            .nearest_k(&Point::new(0.0, 0.0), 3, DistanceMetric::L2)
            .is_empty());

        let mut one = RTree::new();
        one.insert(Point::new(5.0, 5.0), 9u32);
        assert!(one
            .nearest_k(&Point::new(0.0, 0.0), 0, DistanceMetric::L2)
            .is_empty());
        let res = one.nearest_k(&Point::new(0.0, 0.0), 10, DistanceMetric::L1);
        assert_eq!(res.len(), 1);
        assert_eq!(*res[0].1, 9);
        assert_eq!(res[0].2, 10.0);
    }

    #[test]
    fn mbr_min_dist_is_a_lower_bound() {
        let mbr = Rect::new(2.0, 2.0, 4.0, 4.0);
        // Inside → 0.
        assert_eq!(
            mbr_min_dist(&mbr, &Point::new(3.0, 3.0), DistanceMetric::L2),
            0.0
        );
        // Left of the box.
        assert_eq!(
            mbr_min_dist(&mbr, &Point::new(0.0, 3.0), DistanceMetric::L2),
            2.0
        );
        // Diagonal corner.
        assert_eq!(
            mbr_min_dist(&mbr, &Point::new(0.0, 0.0), DistanceMetric::L1),
            4.0
        );
        assert_eq!(
            mbr_min_dist(&mbr, &Point::new(0.0, 0.0), DistanceMetric::Chebyshev),
            2.0
        );
    }

    #[test]
    fn truncate_filtered_helper() {
        let mut v = vec![1, 2, 3, 4, 5, 6];
        v.truncate_filtered(2, |x| x % 2 == 0);
        assert_eq!(&v[..2], &[1, 2]);
        let mut tail = v[2..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, vec![4, 6]);
    }
}
