//! Recursive sub-cell refinement of the uniform grid.
//!
//! The balancer is floored by cell granularity: one base cell hotter than a
//! subtask's fair share cannot be split by routing alone. A [`RefinementTree`]
//! lifts that floor by mapping hot base cells to a refinement *depth*: depth
//! `d` partitions the base cell into `2^d × 2^d` leaf sub-cells (uniform
//! within the base — a split always deepens the whole cell, which keeps the
//! key computation a pure function of `(base, depth)` and lets cold cells
//! re-coalesce one level at a time under hysteresis).
//!
//! Refinement is a pure *routing* concern: the ε-padded replication of
//! Lemma 1 applies at sub-cell borders exactly as at base-cell borders
//! ([`Grid::lemma1_query_keys_refined`](crate::Grid::lemma1_query_keys_refined)),
//! so the candidate pair set — and therefore the sealed pattern multiset —
//! is provably unchanged for any tree shape.

use crate::grid::GridKey;
use std::collections::HashMap;

/// Per-base-cell refinement depths. Absent cells are unrefined (depth 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefinementTree {
    depths: HashMap<GridKey, u8>,
}

impl RefinementTree {
    /// An empty tree: every cell at depth 0 (byte-for-byte the plain grid).
    pub fn new() -> Self {
        RefinementTree::default()
    }

    /// True when no cell is refined.
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// The refinement depth of the base cell containing `key` (0 when
    /// unrefined). Accepts leaf keys: they resolve through their base.
    pub fn depth(&self, key: GridKey) -> u8 {
        self.depths
            .get(&key.base_cell())
            .copied()
            .unwrap_or_default()
    }

    /// Deepens the base cell containing `key` by one level; returns the new
    /// depth.
    pub fn split(&mut self, key: GridKey) -> u8 {
        let d = self.depths.entry(key.base_cell()).or_insert(0);
        *d += 1;
        *d
    }

    /// Shallows the base cell containing `key` by one level (no-op at depth
    /// 0, removed from the tree when it reaches 0); returns the new depth.
    pub fn coalesce(&mut self, key: GridKey) -> u8 {
        let base = key.base_cell();
        match self.depths.get_mut(&base) {
            Some(d) if *d > 1 => {
                *d -= 1;
                *d
            }
            Some(_) => {
                self.depths.remove(&base);
                0
            }
            None => 0,
        }
    }

    /// Pins the base cell containing `key` at an exact depth (0 removes it).
    /// Used by checkpoint restore.
    pub fn set_depth(&mut self, key: GridKey, depth: u8) {
        let base = key.base_cell();
        if depth == 0 {
            self.depths.remove(&base);
        } else {
            self.depths.insert(base, depth);
        }
    }

    /// Number of refined base cells.
    pub fn refined_cells(&self) -> usize {
        self.depths.len()
    }

    /// The deepest refinement level in the tree (0 when empty).
    pub fn max_depth(&self) -> u8 {
        self.depths.values().copied().max().unwrap_or_default()
    }

    /// Iterates `(base cell, depth)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (GridKey, u8)> + '_ {
        self.depths.iter().map(|(&k, &d)| (k, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_coalesce_walk_the_depth() {
        let mut tree = RefinementTree::new();
        let base = GridKey::new(3, -2);
        assert_eq!(tree.depth(base), 0);
        assert_eq!(tree.split(base), 1);
        assert_eq!(tree.split(base), 2);
        assert_eq!(tree.depth(base), 2);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.refined_cells(), 1);
        assert_eq!(tree.coalesce(base), 1);
        assert_eq!(tree.coalesce(base), 0);
        assert!(tree.is_empty(), "depth-0 cells leave the tree");
        assert_eq!(tree.coalesce(base), 0, "coalescing depth 0 is a no-op");
    }

    #[test]
    fn leaf_keys_resolve_through_their_base() {
        let mut tree = RefinementTree::new();
        let base = GridKey::new(1, 1);
        tree.split(base);
        tree.split(base);
        // A depth-2 leaf of (1,1): indices in [4, 8).
        let leaf = GridKey::sub(5, 7, 2);
        assert_eq!(leaf.base_cell(), base);
        assert_eq!(tree.depth(leaf), 2);
        // Splitting via the leaf deepens the base.
        assert_eq!(tree.split(leaf), 3);
        assert_eq!(tree.depth(base), 3);
    }

    #[test]
    fn set_depth_pins_and_clears() {
        let mut tree = RefinementTree::new();
        let base = GridKey::new(0, 0);
        tree.set_depth(base, 3);
        assert_eq!(tree.depth(base), 3);
        tree.set_depth(base, 0);
        assert!(tree.is_empty());
    }
}
