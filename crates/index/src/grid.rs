//! The global grid layer of the GR-index.
//!
//! Grid cells are the paper's distribution keys: records with the same cell
//! key are routed to the same `GridQuery` subtask. This module computes cell
//! keys (`⟨⌊x/lg⌋, ⌊y/lg⌋⟩`, §5.1 "Key Computation") and the replication key
//! sets of the range join:
//!
//! * [`Grid::lemma1_query_keys`] — the cells intersecting the **upper half**
//!   of the range region (Lemma 1), which suffice for a self-join;
//! * [`Grid::full_query_keys`] — the cells intersecting the **full** range
//!   region, used by the SRJ baseline (and by plain, non-join range queries).
//!
//! Hot cells may be **refined** into a 2×2 sub-cell tier (recursively): a
//! [`RefinementTree`](crate::RefinementTree) maps base cells to a refinement
//! depth, and the `*_refined` variants of the key functions route to leaf
//! sub-cells with the same ε-padded replication applied at sub-cell borders,
//! so the candidate pair set is unchanged (see `refine.rs`).

use crate::refine::RefinementTree;
use icpe_types::{Point, Rect};
use std::fmt;

/// A grid cell key `⟨⌊x/lg⌋, ⌊y/lg⌋⟩`, optionally refined.
///
/// `level == 0` is a base cell of the uniform grid. `level == d > 0` names a
/// leaf of a base cell refined `d` times: the base cell `(X, Y)` splits into
/// `2^d × 2^d` sub-cells of width `lg / 2^d`, indexed `x ∈ [X·2^d, (X+1)·2^d)`
/// (rows likewise), so `base = (x >> level, y >> level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridKey {
    /// Column index (at `level`'s resolution).
    pub x: i64,
    /// Row index (at `level`'s resolution).
    pub y: i64,
    /// Refinement depth: 0 = base grid cell, `d` = sub-cell of width `lg/2^d`.
    pub level: u8,
}

impl GridKey {
    /// Creates a base-grid (level 0) key from raw column/row indices.
    pub fn new(x: i64, y: i64) -> Self {
        GridKey { x, y, level: 0 }
    }

    /// Creates a sub-cell key at a refinement depth.
    pub fn sub(x: i64, y: i64, level: u8) -> Self {
        GridKey { x, y, level }
    }

    /// The level-0 base cell this key lives in (identity for base keys).
    #[inline]
    pub fn base_cell(&self) -> GridKey {
        GridKey::new(self.x >> self.level, self.y >> self.level)
    }

    /// True for sub-cell keys (level > 0).
    #[inline]
    pub fn is_refined(&self) -> bool {
        self.level > 0
    }
}

impl fmt::Display for GridKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.level == 0 {
            write!(f, "⟨{},{}⟩", self.x, self.y)
        } else {
            write!(f, "⟨{},{}⟩@{}", self.x, self.y, self.level)
        }
    }
}

/// A uniform grid with cell width `lg`.
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    cell_width: f64,
}

impl Grid {
    /// Creates a grid; `cell_width` must be positive and finite.
    pub fn new(cell_width: f64) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "grid cell width must be positive and finite, got {cell_width}"
        );
        Grid { cell_width }
    }

    /// The cell width `lg`.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// The key of the cell containing `p`.
    #[inline]
    pub fn key_of(&self, p: Point) -> GridKey {
        GridKey::new(
            (p.x / self.cell_width).floor() as i64,
            (p.y / self.cell_width).floor() as i64,
        )
    }

    /// The spatial extent of a cell.
    pub fn cell_rect(&self, key: GridKey) -> Rect {
        let w = self.cell_width;
        Rect::new(
            key.x as f64 * w,
            key.y as f64 * w,
            (key.x + 1) as f64 * w,
            (key.y + 1) as f64 * w,
        )
    }

    /// All cell keys whose cells intersect `rect`.
    pub fn keys_in_rect(&self, rect: &Rect) -> Vec<GridKey> {
        let w = self.cell_width;
        let x0 = (rect.min_x / w).floor() as i64;
        let x1 = (rect.max_x / w).floor() as i64;
        let y0 = (rect.min_y / w).floor() as i64;
        let y1 = (rect.max_y / w).floor() as i64;
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.push(GridKey::new(x, y));
            }
        }
        out
    }

    /// Lemma 1 replication set: the keys of the cells intersecting the upper
    /// half of the range region, `[x−ε, x+ε] × [y, y+ε]`, **excluding** the
    /// home cell of `p` (which receives `p` as a data object instead).
    pub fn lemma1_query_keys(&self, p: Point, eps: f64) -> Vec<GridKey> {
        let home = self.key_of(p);
        let mut keys = self.keys_in_rect(&Rect::padded_upper_range_region(p, eps));
        keys.retain(|&k| k != home);
        keys
    }

    /// Full replication set (no Lemma 1): the keys of all cells intersecting
    /// the complete range region, excluding the home cell. Used by SRJ.
    pub fn full_query_keys(&self, p: Point, eps: f64) -> Vec<GridKey> {
        let home = self.key_of(p);
        let mut keys = self.keys_in_rect(&Rect::padded_range_region(p, eps));
        keys.retain(|&k| k != home);
        keys
    }

    // --- Refinement-aware key computation -----------------------------------

    /// Sub-cell width at a refinement depth: `lg / 2^depth`.
    #[inline]
    pub fn leaf_width(&self, depth: u8) -> f64 {
        self.cell_width / (1u64 << depth) as f64
    }

    /// The leaf sub-cell of `base` (refined to `depth`) containing `p`.
    ///
    /// Indices are clamped into `base`'s sub-cell range, so a point on the
    /// base-cell boundary (which floor-maps into the neighbor at sub-cell
    /// resolution) still lands in a leaf of *its* base cell — home routing
    /// stays consistent with the level-0 `key_of`.
    pub fn leaf_of(&self, base: GridKey, depth: u8, p: Point) -> GridKey {
        if depth == 0 {
            return base;
        }
        let w = self.leaf_width(depth);
        let x = ((p.x / w).floor() as i64).clamp(base.x << depth, ((base.x + 1) << depth) - 1);
        let y = ((p.y / w).floor() as i64).clamp(base.y << depth, ((base.y + 1) << depth) - 1);
        GridKey::sub(x, y, depth)
    }

    /// All leaf sub-cells of `base` (refined to `depth`) that intersect
    /// `rect`. Empty when `rect` misses the base cell entirely.
    pub fn leaves_in_rect(&self, base: GridKey, depth: u8, rect: &Rect) -> Vec<GridKey> {
        if depth == 0 {
            return if rect.intersects(&self.cell_rect(base)) {
                vec![base]
            } else {
                Vec::new()
            };
        }
        let w = self.leaf_width(depth);
        let x0 = ((rect.min_x / w).floor() as i64).max(base.x << depth);
        let x1 = ((rect.max_x / w).floor() as i64).min(((base.x + 1) << depth) - 1);
        let y0 = ((rect.min_y / w).floor() as i64).max(base.y << depth);
        let y1 = ((rect.max_y / w).floor() as i64).min(((base.y + 1) << depth) - 1);
        let mut out = Vec::new();
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.push(GridKey::sub(x, y, depth));
            }
        }
        out
    }

    /// The home key of `p` under a refinement tree: the base cell when
    /// unrefined, otherwise the leaf sub-cell at the base cell's depth.
    pub fn key_of_refined(&self, tree: &RefinementTree, p: Point) -> GridKey {
        let base = self.key_of(p);
        self.leaf_of(base, tree.depth(base), p)
    }

    /// Refinement-aware Lemma 1 replication set: for every base cell
    /// intersecting the padded upper half-region, the cells at *that base's*
    /// refinement depth intersecting the region — excluding `p`'s home key.
    ///
    /// ε-padding applies at sub-cell borders exactly as at base-cell borders,
    /// so for any pair within ε (Chebyshev) the upper partner's home leaf is
    /// reached by the lower partner's replicas (or they share a leaf): the
    /// candidate pair set matches the unrefined grid's.
    pub fn lemma1_query_keys_refined(
        &self,
        tree: &RefinementTree,
        p: Point,
        eps: f64,
    ) -> Vec<GridKey> {
        self.query_keys_refined(tree, p, &Rect::padded_upper_range_region(p, eps))
    }

    /// Refinement-aware full replication set (no Lemma 1): cells at each
    /// base's depth intersecting the padded full range region, excluding the
    /// home key. Used by SRJ under refinement.
    pub fn full_query_keys_refined(
        &self,
        tree: &RefinementTree,
        p: Point,
        eps: f64,
    ) -> Vec<GridKey> {
        self.query_keys_refined(tree, p, &Rect::padded_range_region(p, eps))
    }

    fn query_keys_refined(&self, tree: &RefinementTree, p: Point, region: &Rect) -> Vec<GridKey> {
        let home = self.key_of_refined(tree, p);
        let mut out = Vec::new();
        for base in self.keys_in_rect(region) {
            let depth = tree.depth(base);
            if depth == 0 {
                if base != home {
                    out.push(base);
                }
            } else {
                out.extend(
                    self.leaves_in_rect(base, depth, region)
                        .into_iter()
                        .filter(|&k| k != home),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_key_example() {
        // §5.1: o5 = (4, 8) with lg = 3 → key ⟨1, 2⟩.
        let g = Grid::new(3.0);
        assert_eq!(g.key_of(Point::new(4.0, 8.0)), GridKey::new(1, 2));
    }

    #[test]
    fn keys_handle_negative_coordinates() {
        let g = Grid::new(2.0);
        assert_eq!(g.key_of(Point::new(-0.5, -3.5)), GridKey::new(-1, -2));
        assert_eq!(g.key_of(Point::new(0.0, 0.0)), GridKey::new(0, 0));
    }

    #[test]
    fn cell_rect_round_trips_key() {
        let g = Grid::new(2.5);
        for key in [GridKey::new(0, 0), GridKey::new(3, -2), GridKey::new(-4, 7)] {
            let r = g.cell_rect(key);
            // Center of the cell maps back to the key.
            assert_eq!(g.key_of(r.center()), key);
        }
    }

    #[test]
    fn keys_in_rect_covers_the_rect() {
        let g = Grid::new(1.0);
        let keys = g.keys_in_rect(&Rect::new(0.5, 0.5, 2.5, 1.5));
        // x ∈ {0,1,2}, y ∈ {0,1}
        assert_eq!(keys.len(), 6);
        assert!(keys.contains(&GridKey::new(2, 1)));
        assert!(keys.contains(&GridKey::new(0, 0)));
    }

    #[test]
    fn lemma1_keys_cover_upper_half_only() {
        // p = (1.5, 1.5) is the center of cell (1,1); with eps = 0.5 the
        // upper half-region [x−ε, x+ε] × [y, y+ε] is [1.0, 2.0] × [1.5, 2.0],
        // touching columns {1,2} × rows {1,2} exactly. The assertions below
        // check: the home cell (1,1) is excluded, the three other overlapped
        // cells (2,1), (1,2), (2,2) are present, the boundary pad may add at
        // most the column to the left (region edge sits exactly on x = 1.0,
        // so ≤ 5 keys total), and no key lies below the home row — the
        // Lemma 1 half-region never reaches y < 1.
        let g = Grid::new(1.0);
        let p = Point::new(1.5, 1.5);
        let keys = g.lemma1_query_keys(p, 0.5);
        assert!(!keys.contains(&GridKey::new(1, 1)), "home excluded");
        // Must reach the three cells the upper half-region overlaps; the
        // boundary pad may add the column to the left (edge exactly at 1.0)
        // but never a cell strictly below the home row.
        for k in [GridKey::new(2, 1), GridKey::new(1, 2), GridKey::new(2, 2)] {
            assert!(keys.contains(&k), "missing {k}");
        }
        assert!(keys.len() <= 5);
        assert!(keys.iter().all(|k| k.y >= 1), "no cells below the home row");
    }

    #[test]
    fn lemma1_is_a_subset_of_full_keys() {
        let g = Grid::new(3.0);
        let p = Point::new(10.3, 22.9);
        let eps = 4.2;
        let full = g.full_query_keys(p, eps);
        for k in g.lemma1_query_keys(p, eps) {
            assert!(full.contains(&k));
        }
        // Full region also covers cells strictly below the home row.
        assert!(full.len() > g.lemma1_query_keys(p, eps).len());
    }

    #[test]
    fn paper_o9_example_full_region() {
        // §5.2: o9's range region intersects g5, g6, g9, g10 (a 2×2 block).
        // Model: cell width 3, o9 near the top-left corner of cell ⟨1,1⟩.
        let g = Grid::new(3.0);
        let o9 = Point::new(3.5, 5.5);
        let eps = 1.0;
        let mut full: Vec<GridKey> = g.keys_in_rect(&Rect::range_region(o9, eps));
        full.sort();
        assert_eq!(
            full,
            vec![
                GridKey::new(0, 1),
                GridKey::new(0, 2),
                GridKey::new(1, 1),
                GridKey::new(1, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "grid cell width")]
    fn zero_cell_width_panics() {
        Grid::new(0.0);
    }

    #[test]
    fn sub_cell_keys_round_trip_their_base() {
        for (x, y, level) in [(0, 0, 1), (5, -3, 2), (-8, -1, 3)] {
            let base = GridKey::new(x, y);
            // Every leaf of `base` at `level` maps back to `base`.
            for dy in 0..(1i64 << level) {
                for dx in 0..(1i64 << level) {
                    let leaf = GridKey::sub((x << level) + dx, (y << level) + dy, level);
                    assert_eq!(leaf.base_cell(), base, "leaf {leaf}");
                }
            }
        }
    }

    #[test]
    fn leaf_of_agrees_with_point_location() {
        let g = Grid::new(2.0);
        let p = Point::new(3.5, -0.5);
        let base = g.key_of(p);
        assert_eq!(base, GridKey::new(1, -1));
        // Depth 1: sub-cells of width 1; p is in column 3, row -1.
        assert_eq!(g.leaf_of(base, 1, p), GridKey::sub(3, -1, 1));
        // Depth 2: width 0.5; p in column 7, row -1.
        assert_eq!(g.leaf_of(base, 2, p), GridKey::sub(7, -1, 2));
        // The leaf's base is always the base we asked about.
        for d in 0..=4 {
            assert_eq!(g.leaf_of(base, d, p).base_cell(), base);
        }
    }

    #[test]
    fn leaf_of_clamps_boundary_points_into_the_base() {
        let g = Grid::new(1.0);
        // p on the right/top edge of cell (0,0): floor at sub-cell width
        // would map it to the neighbor, but the leaf must stay in the base.
        let base = GridKey::new(0, 0);
        let p = Point::new(1.0, 1.0);
        let leaf = g.leaf_of(base, 2, p);
        assert_eq!(leaf.base_cell(), base);
        assert_eq!(leaf, GridKey::sub(3, 3, 2));
    }

    #[test]
    fn refined_home_key_matches_base_when_unrefined() {
        let g = Grid::new(1.0);
        let tree = RefinementTree::new();
        let p = Point::new(4.3, -2.7);
        assert_eq!(g.key_of_refined(&tree, p), g.key_of(p));
        assert_eq!(
            g.lemma1_query_keys_refined(&tree, p, 0.8),
            g.lemma1_query_keys(p, 0.8)
        );
        assert_eq!(
            g.full_query_keys_refined(&tree, p, 0.8),
            g.full_query_keys(p, 0.8)
        );
    }

    #[test]
    fn refined_keys_route_to_sub_cells_of_hot_bases() {
        let g = Grid::new(4.0);
        let mut tree = RefinementTree::new();
        tree.split(GridKey::new(0, 0)); // depth 1: 2×2 sub-cells of width 2
        let p = Point::new(1.0, 1.0); // in sub-cell (0,0)@1
        assert_eq!(g.key_of_refined(&tree, p), GridKey::sub(0, 0, 1));
        let keys = g.lemma1_query_keys_refined(&tree, p, 1.5);
        // The upper region [−0.5, 2.5] × [1.0, 2.5] stays inside base (0,0)
        // horizontally up to x = 2.5 < 4, so the sibling sub-cells (1,0)@1,
        // (0,1)@1 and (1,1)@1 are all probed; the home leaf is excluded.
        assert!(!keys.contains(&GridKey::sub(0, 0, 1)), "home leaf excluded");
        for k in [
            GridKey::sub(1, 0, 1),
            GridKey::sub(0, 1, 1),
            GridKey::sub(1, 1, 1),
        ] {
            assert!(keys.contains(&k), "missing {k}");
        }
        // The unrefined neighbor base (-1, 0) is still reached at level 0.
        assert!(keys.contains(&GridKey::new(-1, 0)));
        // No level-0 key for the refined base itself leaks through.
        assert!(!keys.contains(&GridKey::new(0, 0)));
    }

    #[test]
    fn leaves_in_rect_covers_only_the_base() {
        let g = Grid::new(2.0);
        let base = GridKey::new(1, 1); // spans [2,4] × [2,4]
                                       // A rect overlapping the base's left half at depth 1 (width 1).
        let rect = Rect::new(1.0, 2.5, 2.9, 3.2);
        let leaves = g.leaves_in_rect(base, 1, &rect);
        assert_eq!(
            leaves,
            vec![GridKey::sub(2, 2, 1), GridKey::sub(2, 3, 1)],
            "only the base's own sub-cells, clamped to its range"
        );
        // A rect that misses the base entirely yields nothing.
        assert!(g
            .leaves_in_rect(base, 1, &Rect::new(10.0, 10.0, 11.0, 11.0))
            .is_empty());
    }
}
