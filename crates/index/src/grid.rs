//! The global grid layer of the GR-index.
//!
//! Grid cells are the paper's distribution keys: records with the same cell
//! key are routed to the same `GridQuery` subtask. This module computes cell
//! keys (`⟨⌊x/lg⌋, ⌊y/lg⌋⟩`, §5.1 "Key Computation") and the replication key
//! sets of the range join:
//!
//! * [`Grid::lemma1_query_keys`] — the cells intersecting the **upper half**
//!   of the range region (Lemma 1), which suffice for a self-join;
//! * [`Grid::full_query_keys`] — the cells intersecting the **full** range
//!   region, used by the SRJ baseline (and by plain, non-join range queries).

use icpe_types::{Point, Rect};
use std::fmt;

/// A grid cell key `⟨⌊x/lg⌋, ⌊y/lg⌋⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridKey {
    /// Column index.
    pub x: i64,
    /// Row index.
    pub y: i64,
}

impl GridKey {
    /// Creates a key from raw column/row indices.
    pub fn new(x: i64, y: i64) -> Self {
        GridKey { x, y }
    }
}

impl fmt::Display for GridKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.x, self.y)
    }
}

/// A uniform grid with cell width `lg`.
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    cell_width: f64,
}

impl Grid {
    /// Creates a grid; `cell_width` must be positive and finite.
    pub fn new(cell_width: f64) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "grid cell width must be positive and finite, got {cell_width}"
        );
        Grid { cell_width }
    }

    /// The cell width `lg`.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// The key of the cell containing `p`.
    #[inline]
    pub fn key_of(&self, p: Point) -> GridKey {
        GridKey {
            x: (p.x / self.cell_width).floor() as i64,
            y: (p.y / self.cell_width).floor() as i64,
        }
    }

    /// The spatial extent of a cell.
    pub fn cell_rect(&self, key: GridKey) -> Rect {
        let w = self.cell_width;
        Rect::new(
            key.x as f64 * w,
            key.y as f64 * w,
            (key.x + 1) as f64 * w,
            (key.y + 1) as f64 * w,
        )
    }

    /// All cell keys whose cells intersect `rect`.
    pub fn keys_in_rect(&self, rect: &Rect) -> Vec<GridKey> {
        let w = self.cell_width;
        let x0 = (rect.min_x / w).floor() as i64;
        let x1 = (rect.max_x / w).floor() as i64;
        let y0 = (rect.min_y / w).floor() as i64;
        let y1 = (rect.max_y / w).floor() as i64;
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for y in y0..=y1 {
            for x in x0..=x1 {
                out.push(GridKey { x, y });
            }
        }
        out
    }

    /// Lemma 1 replication set: the keys of the cells intersecting the upper
    /// half of the range region, `[x−ε, x+ε] × [y, y+ε]`, **excluding** the
    /// home cell of `p` (which receives `p` as a data object instead).
    pub fn lemma1_query_keys(&self, p: Point, eps: f64) -> Vec<GridKey> {
        let home = self.key_of(p);
        let mut keys = self.keys_in_rect(&Rect::padded_upper_range_region(p, eps));
        keys.retain(|&k| k != home);
        keys
    }

    /// Full replication set (no Lemma 1): the keys of all cells intersecting
    /// the complete range region, excluding the home cell. Used by SRJ.
    pub fn full_query_keys(&self, p: Point, eps: f64) -> Vec<GridKey> {
        let home = self.key_of(p);
        let mut keys = self.keys_in_rect(&Rect::padded_range_region(p, eps));
        keys.retain(|&k| k != home);
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_key_example() {
        // §5.1: o5 = (4, 8) with lg = 3 → key ⟨1, 2⟩.
        let g = Grid::new(3.0);
        assert_eq!(g.key_of(Point::new(4.0, 8.0)), GridKey::new(1, 2));
    }

    #[test]
    fn keys_handle_negative_coordinates() {
        let g = Grid::new(2.0);
        assert_eq!(g.key_of(Point::new(-0.5, -3.5)), GridKey::new(-1, -2));
        assert_eq!(g.key_of(Point::new(0.0, 0.0)), GridKey::new(0, 0));
    }

    #[test]
    fn cell_rect_round_trips_key() {
        let g = Grid::new(2.5);
        for key in [GridKey::new(0, 0), GridKey::new(3, -2), GridKey::new(-4, 7)] {
            let r = g.cell_rect(key);
            // Center of the cell maps back to the key.
            assert_eq!(g.key_of(r.center()), key);
        }
    }

    #[test]
    fn keys_in_rect_covers_the_rect() {
        let g = Grid::new(1.0);
        let keys = g.keys_in_rect(&Rect::new(0.5, 0.5, 2.5, 1.5));
        // x ∈ {0,1,2}, y ∈ {0,1}
        assert_eq!(keys.len(), 6);
        assert!(keys.contains(&GridKey::new(2, 1)));
        assert!(keys.contains(&GridKey::new(0, 0)));
    }

    #[test]
    fn lemma1_keys_cover_upper_half_only() {
        // Point at the center of cell (1,1), eps half a cell: the upper half
        // region touches rows y ∈ {1}, columns x ∈ {0,1,2} — wait, eps = 0.5
        // with cell width 1 touches columns {0,1,2}? The region is
        // [1.0, 2.0] × [1.5, 2.0] for p=(1.5,1.5): columns {1,2}, rows {1,2}.
        let g = Grid::new(1.0);
        let p = Point::new(1.5, 1.5);
        let keys = g.lemma1_query_keys(p, 0.5);
        assert!(!keys.contains(&GridKey::new(1, 1)), "home excluded");
        // Must reach the three cells the upper half-region overlaps; the
        // boundary pad may add the column to the left (edge exactly at 1.0)
        // but never a cell strictly below the home row.
        for k in [GridKey::new(2, 1), GridKey::new(1, 2), GridKey::new(2, 2)] {
            assert!(keys.contains(&k), "missing {k}");
        }
        assert!(keys.len() <= 5);
        assert!(keys.iter().all(|k| k.y >= 1), "no cells below the home row");
    }

    #[test]
    fn lemma1_is_a_subset_of_full_keys() {
        let g = Grid::new(3.0);
        let p = Point::new(10.3, 22.9);
        let eps = 4.2;
        let full = g.full_query_keys(p, eps);
        for k in g.lemma1_query_keys(p, eps) {
            assert!(full.contains(&k));
        }
        // Full region also covers cells strictly below the home row.
        assert!(full.len() > g.lemma1_query_keys(p, eps).len());
    }

    #[test]
    fn paper_o9_example_full_region() {
        // §5.2: o9's range region intersects g5, g6, g9, g10 (a 2×2 block).
        // Model: cell width 3, o9 near the top-left corner of cell ⟨1,1⟩.
        let g = Grid::new(3.0);
        let o9 = Point::new(3.5, 5.5);
        let eps = 1.0;
        let mut full: Vec<GridKey> = g.keys_in_rect(&Rect::range_region(o9, eps));
        full.sort();
        assert_eq!(
            full,
            vec![
                GridKey::new(0, 1),
                GridKey::new(0, 2),
                GridKey::new(1, 1),
                GridKey::new(1, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "grid cell width")]
    fn zero_cell_width_panics() {
        Grid::new(0.0);
    }
}
