//! # icpe-index — the two-layer GR-index
//!
//! The paper accelerates the per-snapshot range join with a two-layer index
//! (§5.1): a **global grid** that maps locations to cells (the distribution
//! keys of the stream runtime) and a **local R-tree** per grid cell.
//!
//! This crate provides both layers from scratch:
//!
//! * [`rtree::RTree`] — an arena-based R-tree over points with incremental
//!   insertion (needed for the Lemma-2 *query-during-build* trick), STR bulk
//!   loading (used by the SRJ baseline's build-then-query strategy) and
//!   rectangle / metric range queries;
//! * [`grid::Grid`] — cell-key computation (`⟨⌊x/lg⌋, ⌊y/lg⌋⟩`) plus the
//!   Lemma-1 *upper-half* replication key sets;
//! * [`refine::RefinementTree`] — recursive 2×2 sub-cell refinement of hot
//!   cells, with ε-padded replication at sub-cell borders;
//! * [`gr::GrIndex`] — the assembled two-layer index for one snapshot.

pub mod gr;
pub mod grid;
pub mod refine;
pub mod rtree;

pub use gr::GrIndex;
pub use grid::{Grid, GridKey};
pub use refine::RefinementTree;
pub use rtree::RTree;
