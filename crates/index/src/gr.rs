//! The assembled two-layer GR-index for one snapshot.
//!
//! `GrIndex` partitions a snapshot's locations by grid cell and builds one
//! R-tree per cell. In the streaming pipeline the two layers live in
//! *different operators* (GridAllocate computes keys, GridQuery owns one
//! cell's R-tree); this assembled form serves the offline/centralized path,
//! the SRJ baseline, and as a reference for tests.

use crate::{Grid, GridKey, RTree};
use icpe_types::{DistanceMetric, ObjectId, Point, Snapshot};
use std::collections::HashMap;

/// A two-layer index over one snapshot: global grid, local R-tree per cell.
#[derive(Debug)]
pub struct GrIndex {
    grid: Grid,
    cells: HashMap<GridKey, RTree<ObjectId>>,
    len: usize,
}

impl GrIndex {
    /// Builds the index over a snapshot with grid cell width `lg`.
    pub fn build(snapshot: &Snapshot, lg: f64) -> Self {
        Self::build_from_pairs(snapshot.entries.iter().map(|e| (e.id, e.location)), lg)
    }

    /// Builds the index from raw `(id, location)` pairs.
    pub fn build_from_pairs(pairs: impl IntoIterator<Item = (ObjectId, Point)>, lg: f64) -> Self {
        let grid = Grid::new(lg);
        let mut buckets: HashMap<GridKey, Vec<(Point, ObjectId)>> = HashMap::new();
        let mut len = 0usize;
        for (id, p) in pairs {
            buckets.entry(grid.key_of(p)).or_default().push((p, id));
            len += 1;
        }
        let cells = buckets
            .into_iter()
            .map(|(k, mut items)| {
                (
                    k,
                    RTree::bulk_load_with_max_entries(
                        crate::rtree::DEFAULT_MAX_ENTRIES,
                        &mut items,
                    ),
                )
            })
            .collect();
        GrIndex { grid, cells, len }
    }

    /// The grid layer.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of indexed locations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no locations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty grid cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Range query: all `(id, location)` within `eps` of `center` under
    /// `metric` (Definition 10; the center itself is reported if indexed).
    pub fn range_query(
        &self,
        center: &Point,
        eps: f64,
        metric: DistanceMetric,
    ) -> Vec<(ObjectId, Point)> {
        let mut out = Vec::new();
        let region = icpe_types::Rect::padded_range_region(*center, eps);
        for key in self.grid.keys_in_rect(&region) {
            if let Some(tree) = self.cells.get(&key) {
                let mut hits = Vec::new();
                tree.query_within(center, eps, metric, &mut hits);
                out.extend(hits.into_iter().map(|(p, id)| (*id, *p)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Timestamp;

    fn snap(points: &[(u32, f64, f64)]) -> Snapshot {
        Snapshot::from_pairs(
            Timestamp(0),
            points
                .iter()
                .map(|&(id, x, y)| (ObjectId(id), Point::new(x, y))),
        )
    }

    #[test]
    fn build_and_count() {
        let s = snap(&[(1, 0.0, 0.0), (2, 10.0, 10.0), (3, 0.5, 0.5)]);
        let idx = GrIndex::build(&s, 2.0);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_cells(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn range_query_matches_brute_force() {
        let pts: Vec<(u32, f64, f64)> = (0..200)
            .map(|i| {
                let x = ((i * 37) % 100) as f64 * 0.9;
                let y = ((i * 53) % 100) as f64 * 1.1;
                (i, x, y)
            })
            .collect();
        let s = snap(&pts);
        let idx = GrIndex::build(&s, 7.0);
        let metric = DistanceMetric::Chebyshev;
        for &(qid, qx, qy) in pts.iter().step_by(17) {
            let center = Point::new(qx, qy);
            let mut got: Vec<u32> = idx
                .range_query(&center, 5.0, metric)
                .into_iter()
                .map(|(id, _)| id.0)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u32> = pts
                .iter()
                .filter(|&&(_, x, y)| metric.within(&center, &Point::new(x, y), 5.0))
                .map(|&(id, _, _)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query at object {qid}");
            assert!(got.contains(&qid), "center must see itself");
        }
    }

    #[test]
    fn empty_snapshot() {
        let idx = GrIndex::build(&Snapshot::new(Timestamp(0)), 1.0);
        assert!(idx.is_empty());
        assert!(idx
            .range_query(&Point::new(0.0, 0.0), 10.0, DistanceMetric::L2)
            .is_empty());
    }
}
