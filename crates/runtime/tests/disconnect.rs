//! Tear-down and lateness tests for the live-serving entry points: a
//! downstream consumer that hangs up must stop every upstream subtask
//! cleanly (no panic, no deadlock), and records arriving after their
//! snapshot sealed must be counted and dropped deterministically — exactly
//! the failure modes a network serving layer exercises.

use icpe_runtime::{
    ingest_channel, map_fn, AlignOperator, AlignerConfig, Collector, Exchange, Operator,
    PipelineMetrics, RuntimeConfig, Stream, TimeAligner,
};
use icpe_types::{GpsRecord, ObjectId, Point, Snapshot, Timestamp};
use std::time::Duration;

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        channel_capacity: 8,
        batch_size: 4,
        fault: None,
    }
}

fn rec(id: u32, t: u32, last: Option<u32>) -> GpsRecord {
    GpsRecord::new(
        ObjectId(id),
        Point::new(t as f64, id as f64),
        Timestamp(t),
        last.map(Timestamp),
    )
}

/// Joins with a watchdog so a regression deadlocks the test, not CI.
fn join_within(handle: icpe_runtime::StreamHandle, secs: u64) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("dataflow did not wind down after consumer hangup (deadlock?)");
}

#[test]
fn receiver_drop_stops_single_stage_source() {
    // Effectively unbounded source; tiny channels so the source is deep in
    // backpressure when the consumer leaves.
    let (receiver, handle) = Stream::source(cfg(), 1, |_| 0..u64::MAX).into_receiver();
    for _ in 0..100 {
        receiver.recv().unwrap(); // whole batches
    }
    drop(receiver);
    join_within(handle, 10);
}

#[test]
fn receiver_drop_cascades_through_parallel_stages() {
    let (receiver, handle) = Stream::source(cfg(), 2, |i| (i as u64)..u64::MAX)
        .apply("inc", 3, Exchange::Rebalance, |_| map_fn(|x: u64| x + 1))
        .apply("key", 2, Exchange::key_by(|x: &u64| *x), |_| {
            map_fn(|x: u64| x)
        })
        .into_receiver();
    for _ in 0..50 {
        receiver.recv().unwrap();
    }
    drop(receiver);
    join_within(handle, 10);
}

#[test]
fn receiver_drop_reaches_stateful_operator_finish_without_panic() {
    // An operator with buffered state: hangup must not panic it even though
    // its `finish` output has nowhere to go.
    struct Buffer(Vec<u64>);
    impl Operator<u64, u64> for Buffer {
        fn process(&mut self, input: u64, out: &mut Collector<u64>) {
            self.0.push(input);
            if self.0.len() >= 10 {
                out.emit_all(self.0.drain(..));
            }
        }
        fn finish(&mut self, out: &mut Collector<u64>) {
            out.emit_all(self.0.drain(..));
        }
    }
    let (receiver, handle) = Stream::source(cfg(), 1, |_| 0..u64::MAX)
        .apply("buffer", 2, Exchange::Rebalance, |_| Buffer(Vec::new()))
        .into_receiver();
    receiver.recv().unwrap();
    drop(receiver);
    join_within(handle, 10);
}

#[test]
fn from_channel_source_delivers_live_pushes_in_order() {
    let (sender, source) = ingest_channel::<u64>(4);
    let (receiver, handle) = Stream::from_channel(cfg(), source)
        .apply("inc", 1, Exchange::Rebalance, |_| map_fn(|x: u64| x + 1))
        .into_receiver();
    let producer = std::thread::spawn(move || {
        for x in 0..1000u64 {
            sender.send(x).unwrap();
        }
        // Dropping the sender ends the stream.
    });
    let got: Vec<u64> = receiver.iter().flatten().collect();
    producer.join().unwrap();
    assert_eq!(got, (1..=1000).collect::<Vec<_>>());
    join_within(handle, 10);
}

#[test]
fn from_channel_producer_observes_consumer_hangup() {
    let (sender, source) = ingest_channel::<u64>(2);
    let (receiver, handle) = Stream::from_channel(cfg(), source).into_receiver();
    sender.send(7).unwrap();
    assert_eq!(receiver.recv(), Ok(vec![7]));
    drop(receiver);
    // The forwarder notices the hangup when it routes its next record:
    // pushes must start failing instead of blocking forever.
    let mut failed = false;
    for x in 0..100u64 {
        if sender.send(x).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "sender never observed the dataflow shutdown");
    join_within(handle, 10);
}

#[test]
fn late_records_are_dropped_and_counted_deterministically() {
    let mut aligner = TimeAligner::new(AlignerConfig {
        max_lag: 2,
        emit_empty: true,
        lateness: 0,
    });
    aligner.push(rec(1, 0, None));
    for t in 1..8 {
        aligner.push(rec(1, t, Some(t - 1)));
    }
    assert_eq!(aligner.late_dropped(), 0);

    // Two ancient records: both must be dropped and counted, repeatably.
    assert!(aligner.push(rec(2, 0, None)).is_empty());
    assert!(aligner.push(rec(2, 1, Some(0))).is_empty());
    assert_eq!(aligner.late_dropped(), 2);

    // The stream keeps sealing afterwards — the dropped records' chain
    // information was still absorbed, so object 2 cannot stall sealing.
    let mut sealed = Vec::new();
    for t in 8..16 {
        sealed.extend(aligner.push(rec(1, t, Some(t - 1))));
        sealed.extend(aligner.push(rec(2, t, Some(if t == 8 { 1 } else { t - 1 }))));
    }
    assert!(
        sealed.iter().any(|s| s.time.0 >= 8),
        "sealing stalled after late drops: {:?}",
        sealed.iter().map(|s| s.time.0).collect::<Vec<_>>()
    );
    assert_eq!(aligner.late_dropped(), 2, "no spurious late counts");
}

#[test]
fn align_operator_mirrors_late_counts_into_shared_metrics() {
    let metrics = PipelineMetrics::new();
    let mut op = AlignOperator::with_metrics(
        AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        },
        metrics.clone(),
    );
    let mut out = Collector::<Snapshot>::new();
    op.process(rec(1, 0, None), &mut out);
    for t in 1..8 {
        op.process(rec(1, t, Some(t - 1)), &mut out);
    }
    op.process(rec(2, 0, None), &mut out); // late
    op.finish(&mut out);
    assert_eq!(metrics.progress().late_records, 1);
    assert_eq!(metrics.report().late_records, 1);
}
