//! Property-based tests for the dataflow runtime: exchange correctness and
//! aligner ordering under arbitrary interleavings.

use icpe_runtime::{map_fn, AlignerConfig, Exchange, RuntimeConfig, Stream, TimeAligner};
use icpe_types::{GpsRecord, ObjectId, Point, Timestamp};
use proptest::prelude::*;

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        channel_capacity: 8,
        batch_size: 4,
        fault: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any keyed pipeline preserves the input multiset, regardless of
    /// parallelism and key skew.
    #[test]
    fn keyed_pipeline_preserves_multiset(
        values in prop::collection::vec(0u64..32, 0..300),
        parallelism in 1usize..6,
    ) {
        let input = values.clone();
        let out = Stream::source(cfg(), 1, move |_| input.clone().into_iter())
            .apply("id", parallelism, Exchange::key_by(|v: &u64| *v), |_| {
                map_fn(|v: u64| v)
            })
            .collect_vec();
        let mut got = out;
        got.sort_unstable();
        let mut want = values;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Per-key order survives any number of keyed stages.
    #[test]
    fn per_key_order_is_stable(
        keys in prop::collection::vec(0u64..4, 1..200),
        p1 in 1usize..5,
        p2 in 1usize..5,
    ) {
        let input: Vec<(u64, u64)> = keys.iter().enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let moved = input.clone();
        let out = Stream::source(cfg(), 1, move |_| moved.clone().into_iter())
            .apply("a", p1, Exchange::key_by(|r: &(u64, u64)| r.0), |_| {
                map_fn(|r: (u64, u64)| r)
            })
            .apply("b", p2, Exchange::key_by(|r: &(u64, u64)| r.0), |_| {
                map_fn(|r: (u64, u64)| r)
            })
            .collect_vec();
        let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (k, seq) in out {
            if let Some(prev) = last_seen.insert(k, seq) {
                prop_assert!(seq > prev, "key {} reordered: {} after {}", k, seq, prev);
            }
        }
    }

    /// The aligner emits strictly increasing, gap-free snapshot times for
    /// any *bounded* shuffle of a well-formed record stream, and no record
    /// of a known trajectory is lost (lateness covers first records).
    ///
    /// The shuffle rotates disjoint two-tick blocks, which guarantees a
    /// record never arrives after a record more than two ticks ahead — the
    /// disorder the `lateness = 2` allowance is specified to absorb.
    #[test]
    fn aligner_output_is_ordered_and_complete(
        num_objects in 1u32..6,
        ticks in 2u32..20,
        rotations in prop::collection::vec(0usize..16, 0..24),
    ) {
        // Build a dense stream: every object reports every tick.
        let mut records = Vec::new();
        for t in 0..ticks {
            for o in 0..num_objects {
                let last = (t > 0).then(|| Timestamp(t - 1));
                records.push(GpsRecord::new(
                    ObjectId(o),
                    Point::new(t as f64, o as f64),
                    Timestamp(t),
                    last,
                ));
            }
        }
        // Bounded shuffle: rotate each disjoint 2-tick block.
        let block = (num_objects as usize) * 2;
        for (bi, chunk) in records.chunks_mut(block).enumerate() {
            if let Some(&r) = rotations.get(bi) {
                let len = chunk.len();
                chunk.rotate_left(r % len.max(1));
            }
        }

        let mut aligner = TimeAligner::new(AlignerConfig {
            max_lag: 64,
            emit_empty: true,
            lateness: 2,
        });
        let mut sealed = Vec::new();
        for r in records {
            sealed.extend(aligner.push(r));
        }
        sealed.extend(aligner.flush());

        // Strictly increasing, dense times.
        let times: Vec<u32> = sealed.iter().map(|s| s.time.0).collect();
        prop_assert_eq!(&times, &(0..ticks).collect::<Vec<_>>());
        // Every snapshot is complete.
        for s in &sealed {
            prop_assert_eq!(s.len(), num_objects as usize,
                "time {} lost records", s.time);
        }
    }
}
