//! Property tests for aligner checkpoint/restore: byte-identical
//! re-serialization and behavioural equivalence on arbitrary streams.

use icpe_runtime::{AlignerConfig, TimeAligner};
use icpe_types::{AlignerCheckpoint, GpsRecord, ObjectId, Point, Timestamp};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a per-trajectory-monotone record stream from raw (id, time)
/// pairs, chaining *last time* links the way the discretizer would (pairs
/// that would go backwards for their trajectory are skipped).
fn build_records(raw: &[(u32, u32)]) -> Vec<GpsRecord> {
    let mut last: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for &(id, t) in raw {
        match last.get(&id) {
            Some(&prev) if t <= prev => continue,
            prev => {
                let link = prev.copied().map(Timestamp);
                out.push(GpsRecord::new(
                    ObjectId(id),
                    Point::new(t as f64, id as f64),
                    Timestamp(t),
                    link,
                ));
            }
        }
        last.insert(id, t);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// checkpoint → JSON → parse → restore → checkpoint is byte-identical,
    /// for any reachable aligner state.
    #[test]
    fn aligner_checkpoint_roundtrip_is_byte_identical(
        raw in prop::collection::vec((0u32..6, 0u32..60), 0..150),
        cut_frac in 0usize..100,
        max_lag in 2u32..20,
        lateness in 0u32..6,
    ) {
        let config = AlignerConfig { max_lag, emit_empty: true, lateness };
        let records = build_records(&raw);
        let cut = records.len() * cut_frac / 100;
        let mut aligner = TimeAligner::new(config);
        for r in &records[..cut] {
            aligner.push(*r);
        }
        let ckpt = aligner.checkpoint();
        let json = serde_json::to_string(&ckpt).unwrap();
        let parsed: AlignerCheckpoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&parsed, &ckpt);
        let restored = TimeAligner::from_checkpoint(config, &parsed);
        let json2 = serde_json::to_string(&restored.checkpoint()).unwrap();
        prop_assert_eq!(json2, json, "re-serialization is not canonical");
    }

    /// A restored aligner behaves identically to the original on any
    /// suffix: same sealed snapshots, same late-drop accounting.
    #[test]
    fn restored_aligner_is_behaviourally_equivalent(
        raw in prop::collection::vec((0u32..6, 0u32..60), 1..150),
        cut_frac in 0usize..100,
        max_lag in 2u32..20,
        lateness in 0u32..6,
    ) {
        let config = AlignerConfig { max_lag, emit_empty: true, lateness };
        let records = build_records(&raw);
        let cut = records.len() * cut_frac / 100;

        let mut original = TimeAligner::new(config);
        for r in &records[..cut] {
            original.push(*r);
        }
        let mut restored = TimeAligner::from_checkpoint(config, &original.checkpoint());

        let mut out_original = Vec::new();
        let mut out_restored = Vec::new();
        for r in &records[cut..] {
            out_original.extend(original.push(*r));
            out_restored.extend(restored.push(*r));
        }
        out_original.extend(original.flush());
        out_restored.extend(restored.flush());
        prop_assert_eq!(out_original, out_restored);
        prop_assert_eq!(original.late_dropped(), restored.late_dropped());
    }
}
