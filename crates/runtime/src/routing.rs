//! The dynamic routing table behind [`Exchange::Dynamic`].
//!
//! A static keyed exchange fixes `subtask = hash(key) % N` forever; on
//! spatially skewed streams (urban hotspots) that overloads whichever
//! subtask the hot cells hash to while its siblings idle. The
//! [`RoutingTable`] makes the key→subtask map *data*: a shared,
//! epoch-versioned overlay of explicit assignments for the hot keys, with
//! consistent-hash fallback for everything unlisted — so an empty table is
//! byte-for-byte equivalent to the static exchange, and a controller can
//! swap in better placements while the dataflow runs.
//!
//! The table itself is policy-free: *what* to assign where is the load
//! balancer's job (see `icpe-cluster`); *when* a swap is safe is the
//! pipeline's job (at snapshot-boundary ticks, so no in-flight window ever
//! splits across two epochs). This layer only guarantees that lookups are
//! cheap (a read lock per keyed record) and swaps are atomic.

use icpe_types::shard::subtask_for;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time view of the routing layer, for `STATUS` endpoints and
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoutingStatus {
    /// Current routing epoch (0 until the first swap).
    pub epoch: u64,
    /// Keys with an explicit assignment (the rest fall back to hashing).
    pub mapped_keys: usize,
    /// Keys whose effective route changed, cumulative over all epochs.
    pub cells_migrated: u64,
    /// Max per-subtask load observed in the most recent accounted window.
    pub max_subtask_load: f64,
    /// Mean per-subtask load in that window.
    pub mean_subtask_load: f64,
    /// Base cells currently refined into sub-cell tiers.
    pub refined_cells: usize,
    /// Deepest refinement level currently active (0 = none).
    pub max_refine_depth: u8,
    /// Cumulative cell splits over the run.
    pub splits: u64,
    /// Cumulative cell coalesces over the run.
    pub coalesces: u64,
}

impl RoutingStatus {
    /// `max / mean` subtask load of the last accounted window (1.0 =
    /// perfectly balanced; `N` = everything on one of `N` subtasks).
    pub fn imbalance(&self) -> f64 {
        if self.mean_subtask_load <= 0.0 {
            1.0
        } else {
            self.max_subtask_load / self.mean_subtask_load
        }
    }
}

/// An epoch-versioned key-hash→subtask map with consistent-hash fallback,
/// shared between the routers that consult it and the controller that
/// swaps it (wrap in `Arc`).
#[derive(Debug, Default)]
pub struct RoutingTable {
    /// Explicit routes, keyed by the same hash [`Routing::Key`] carries.
    map: RwLock<HashMap<u64, usize>>,
    epoch: AtomicU64,
    cells_migrated: AtomicU64,
    /// Last-window subtask loads, as f64 bits (observability only).
    max_load_bits: AtomicU64,
    mean_load_bits: AtomicU64,
    /// Sub-cell refinement gauges, mirrored from the balancer at each
    /// window boundary (observability only; the table routes by key hash
    /// and does not care which refinement level a key lives at).
    refined_cells: AtomicU64,
    max_refine_depth: AtomicU64,
    splits: AtomicU64,
    coalesces: AtomicU64,
}

impl RoutingTable {
    /// An empty table at epoch 0 — routes exactly like the static exchange
    /// until the first [`RoutingTable::install`].
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// The subtask for `key_hash` at parallelism `n`: the explicit
    /// assignment when one exists *and* still names a live subtask,
    /// otherwise the consistent-hash fallback. An assignment to a subtask
    /// `≥ n` (a table restored into a smaller deployment) falls back
    /// rather than routing out of range.
    pub fn subtask(&self, key_hash: u64, n: usize) -> usize {
        if let Some(&s) = self.map.read().get(&key_hash) {
            if s < n {
                return s;
            }
        }
        subtask_for(key_hash, n)
    }

    /// Current epoch (0 until the first install).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically replaces the table: `assignments` becomes the complete
    /// explicit overlay (keys removed from it merge back to hash
    /// fallback), the epoch becomes `epoch`, and `migrated` keys are added
    /// to the cumulative migration counter. Readers see either the old
    /// table or the new one, never a mix.
    pub fn install(&self, epoch: u64, assignments: HashMap<u64, usize>, migrated: u64) {
        let mut map = self.map.write();
        *map = assignments;
        self.epoch.store(epoch, Ordering::Release);
        drop(map);
        self.cells_migrated.fetch_add(migrated, Ordering::Relaxed);
    }

    /// Records the per-subtask load summary of the most recently accounted
    /// window (pure observability; does not affect routing).
    pub fn note_window_loads(&self, max: f64, mean: f64) {
        self.max_load_bits.store(max.to_bits(), Ordering::Relaxed);
        self.mean_load_bits.store(mean.to_bits(), Ordering::Relaxed);
    }

    /// Records the refinement gauges of the most recent window boundary
    /// (pure observability; mirrored from the balancer's tree).
    pub fn note_refinement(
        &self,
        refined_cells: usize,
        max_refine_depth: u8,
        splits: u64,
        coalesces: u64,
    ) {
        self.refined_cells
            .store(refined_cells as u64, Ordering::Relaxed);
        self.max_refine_depth
            .store(max_refine_depth as u64, Ordering::Relaxed);
        self.splits.store(splits, Ordering::Relaxed);
        self.coalesces.store(coalesces, Ordering::Relaxed);
    }

    /// The current status snapshot.
    pub fn status(&self) -> RoutingStatus {
        RoutingStatus {
            epoch: self.epoch(),
            mapped_keys: self.map.read().len(),
            cells_migrated: self.cells_migrated.load(Ordering::Relaxed),
            max_subtask_load: f64::from_bits(self.max_load_bits.load(Ordering::Relaxed)),
            mean_subtask_load: f64::from_bits(self.mean_load_bits.load(Ordering::Relaxed)),
            refined_cells: self.refined_cells.load(Ordering::Relaxed) as usize,
            max_refine_depth: self.max_refine_depth.load(Ordering::Relaxed) as u8,
            splits: self.splits.load(Ordering::Relaxed),
            coalesces: self.coalesces.load(Ordering::Relaxed),
        }
    }

    /// The explicit overlay as a plain map (for checkpointing controllers).
    pub fn assignments(&self) -> HashMap<u64, usize> {
        self.map.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_matches_consistent_hash() {
        let t = RoutingTable::new();
        for h in 0..200u64 {
            for n in 1..6 {
                assert_eq!(t.subtask(h, n), subtask_for(h, n));
            }
        }
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.status().mapped_keys, 0);
    }

    #[test]
    fn install_overrides_and_unmapped_fall_back() {
        let t = RoutingTable::new();
        t.install(1, HashMap::from([(77u64, 3usize)]), 1);
        assert_eq!(t.subtask(77, 4), 3);
        assert_eq!(t.subtask(78, 4), subtask_for(78, 4));
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.status().cells_migrated, 1);

        // A later install replaces the overlay wholesale.
        t.install(2, HashMap::from([(78u64, 0usize)]), 2);
        assert_eq!(t.subtask(77, 4), subtask_for(77, 4), "77 merged back");
        assert_eq!(t.subtask(78, 4), 0);
        assert_eq!(t.status().cells_migrated, 3, "counter is cumulative");
    }

    #[test]
    fn out_of_range_assignment_falls_back() {
        // A table learned at parallelism 8, consulted at parallelism 2.
        let t = RoutingTable::new();
        t.install(1, HashMap::from([(5u64, 7usize)]), 1);
        assert!(t.subtask(5, 2) < 2);
        assert_eq!(t.subtask(5, 2), subtask_for(5, 2));
        assert_eq!(t.subtask(5, 8), 7, "still honored where it fits");
    }

    #[test]
    fn status_reports_window_loads() {
        let t = RoutingTable::new();
        assert_eq!(t.status().imbalance(), 1.0, "no data → balanced");
        t.note_window_loads(90.0, 30.0);
        let s = t.status();
        assert_eq!(s.max_subtask_load, 90.0);
        assert_eq!(s.mean_subtask_load, 30.0);
        assert!((s.imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn status_reports_refinement_gauges() {
        let t = RoutingTable::new();
        let s = t.status();
        assert_eq!((s.refined_cells, s.max_refine_depth), (0, 0));
        assert_eq!((s.splits, s.coalesces), (0, 0));
        t.note_refinement(3, 2, 7, 4);
        let s = t.status();
        assert_eq!(s.refined_cells, 3);
        assert_eq!(s.max_refine_depth, 2);
        assert_eq!(s.splits, 7);
        assert_eq!(s.coalesces, 4);
    }
}
