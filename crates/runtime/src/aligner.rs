//! Stream time synchronization via *"last time"* chaining (paper §4).
//!
//! Flink does not deliver records in global time order, but pattern
//! detection must process snapshots in ascending time order. The paper's
//! mechanism: every record carries the discretized time of its trajectory's
//! *previous* report. Chaining these links tells the system, per trajectory,
//! through which time its reports are fully known — and therefore when a
//! snapshot can no longer gain members and may be sealed.
//!
//! Example from the paper: for records `r1, r3` of one trajectory where
//! `r3.last_time = 2`, the system must keep waiting for `r2`; but if
//! `r5.last_time = 3`, no record was reported at time 4 and the system need
//! not wait for one.
//!
//! A time `u` is sealed when (a) some record with a strictly later time has
//! been witnessed (so `u` is in the past of the stream) and (b) every known
//! trajectory either is clarified through `u` or has lagged out (see
//! [`AlignerConfig::max_lag`]).

use crate::operator::{Collector, Operator};
use icpe_types::shard::{hash_id, subtask_for};
use icpe_types::{AlignerCheckpoint, ChainCheckpoint, GpsRecord, ObjectId, Snapshot, Timestamp};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the [`TimeAligner`].
#[derive(Debug, Clone, Copy)]
pub struct AlignerConfig {
    /// A trajectory whose clarified time lags more than this many intervals
    /// behind the newest witnessed time is considered departed and stops
    /// blocking progress. (Unbounded waiting would stall the stream when a
    /// device goes offline; Flink jobs use idle-source timeouts the same
    /// way.)
    pub max_lag: u32,
    /// Emit empty snapshots for times at which no object reported. Keeps the
    /// snapshot stream dense in time, which the enumeration engines rely on
    /// for gap bookkeeping.
    pub emit_empty: bool,
    /// Extra intervals a time stays open beyond the newest witnessed time.
    /// The *last-time* chaining decides exactly when **known** trajectories
    /// are complete, but a trajectory's very first record carries no link —
    /// only this watermark-style allowance protects it from arriving after
    /// its snapshot sealed.
    pub lateness: u32,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        AlignerConfig {
            max_lag: 16,
            emit_empty: true,
            lateness: 2,
        }
    }
}

/// Per-trajectory chaining state.
#[derive(Debug, Default)]
struct Chain {
    /// Largest time through which this trajectory's reports are fully known.
    clarified: Option<u32>,
    /// Received records whose `last_time` link has not connected yet,
    /// keyed by that `last_time` (value: the record's own time).
    waiting: BTreeMap<u32, u32>,
}

/// Buffers out-of-order [`GpsRecord`]s and seals [`Snapshot`]s in strictly
/// increasing time order once their membership can no longer change.
#[derive(Debug)]
pub struct TimeAligner {
    config: AlignerConfig,
    /// Buffered (not yet sealed) snapshot contents by time.
    buffers: BTreeMap<u32, Snapshot>,
    chains: HashMap<ObjectId, Chain>,
    /// All times `< sealed_up_to` are sealed; `None` until the first seal.
    sealed_up_to: Option<u32>,
    /// Largest record time seen.
    max_seen: u32,
    /// Records dropped for arriving after their snapshot sealed.
    late_dropped: u64,
}

impl TimeAligner {
    /// Creates an aligner.
    pub fn new(config: AlignerConfig) -> Self {
        TimeAligner {
            config,
            buffers: BTreeMap::new(),
            chains: HashMap::new(),
            sealed_up_to: None,
            max_seen: 0,
            late_dropped: 0,
        }
    }

    /// Ingests one record; returns any snapshots that became sealable,
    /// in ascending time order. Allocation-free callers (the vectorized
    /// align stage) use [`TimeAligner::push_into`] with a reused buffer.
    pub fn push(&mut self, rec: GpsRecord) -> Vec<Snapshot> {
        let mut out = Vec::new();
        self.push_into(rec, &mut out);
        out
    }

    /// Ingests one record, appending any snapshots that became sealable to
    /// `out` in ascending time order — [`TimeAligner::push`] without the
    /// per-record result vector, for batch processing with reused scratch.
    pub fn push_into(&mut self, rec: GpsRecord, out: &mut Vec<Snapshot>) {
        let t = rec.time.0;
        if let Some(s) = self.sealed_up_to {
            if t < s {
                // Arrived after its snapshot was sealed (lag exceeded):
                // dropped, deterministically, and counted for observability.
                // The record's *synchronization information* stays valid —
                // advancing the chain prevents the trajectory's later
                // records from waiting forever on a link that will never
                // connect (which would stall sealing until retirement).
                self.late_dropped += 1;
                self.advance_chain(&rec);
                return;
            }
        }
        self.max_seen = self.max_seen.max(t);
        self.buffers
            .entry(t)
            .or_insert_with(|| Snapshot::new(Timestamp(t)))
            .push(rec.id, rec.location, rec.last_time);
        self.advance_chain(&rec);
        self.drain_sealable_into(out);
    }

    /// Advances a trajectory's clarification chain with one record's
    /// last-time link.
    fn advance_chain(&mut self, rec: &GpsRecord) {
        advance_chain_in(&mut self.chains, rec);
    }

    /// Seals everything still buffered (end of stream).
    pub fn flush(&mut self) -> Vec<Snapshot> {
        let mut out = Vec::new();
        let times: Vec<u32> = self.buffers.keys().copied().collect();
        for t in times {
            if self.config.emit_empty {
                if let Some(s) = self.sealed_up_to {
                    for gap in s..t {
                        out.push(Snapshot::new(Timestamp(gap)));
                    }
                }
            }
            out.push(self.buffers.remove(&t).unwrap());
            self.sealed_up_to = Some(t + 1);
        }
        out
    }

    /// Number of buffered (unsealed) snapshots.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }

    /// How many records were dropped for arriving after their snapshot
    /// sealed. Dropping is deterministic: a record is late iff its time is
    /// below the sealed frontier at arrival, regardless of thread timing.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Captures the aligner's full state in durable, canonical form:
    /// buffered snapshots ascend by time, chains by trajectory id, waiting
    /// links by `last_time` — so the checkpoint bytes are a pure function
    /// of the logical state (serialize → restore → serialize is
    /// byte-identical).
    pub fn checkpoint(&self) -> AlignerCheckpoint {
        let buffers: Vec<Snapshot> = self.buffers.values().cloned().collect();
        let mut chains: Vec<ChainCheckpoint> = self
            .chains
            .iter()
            .map(|(&id, chain)| ChainCheckpoint {
                id,
                clarified: chain.clarified,
                waiting: chain.waiting.iter().map(|(&lt, &t)| (lt, t)).collect(),
            })
            .collect();
        chains.sort_by_key(|c| c.id);
        AlignerCheckpoint {
            buffers,
            chains,
            sealed_up_to: self.sealed_up_to,
            max_seen: self.max_seen,
            late_dropped: self.late_dropped,
        }
    }

    /// Rebuilds an aligner from a checkpoint; behaviour on subsequent
    /// records is identical to the aligner the checkpoint was taken from
    /// (including the late-drop counter, which must not reset to zero).
    pub fn from_checkpoint(config: AlignerConfig, ckpt: &AlignerCheckpoint) -> Self {
        let buffers: BTreeMap<u32, Snapshot> =
            ckpt.buffers.iter().map(|s| (s.time.0, s.clone())).collect();
        let chains: HashMap<ObjectId, Chain> = ckpt
            .chains
            .iter()
            .map(|c| {
                (
                    c.id,
                    Chain {
                        clarified: c.clarified,
                        waiting: c.waiting.iter().copied().collect(),
                    },
                )
            })
            .collect();
        TimeAligner {
            config,
            buffers,
            chains,
            sealed_up_to: ckpt.sealed_up_to,
            max_seen: ckpt.max_seen,
            late_dropped: ckpt.late_dropped,
        }
    }

    fn drain_sealable_into(&mut self, out: &mut Vec<Snapshot>) {
        loop {
            let u = match self.sealed_up_to {
                Some(s) => s,
                // Nothing sealed yet: start at the earliest buffered time.
                None => match self.buffers.keys().next() {
                    Some(&t) => t,
                    None => break,
                },
            };
            if !self.can_seal(u) {
                break;
            }
            match self.buffers.remove(&u) {
                Some(snap) => out.push(snap),
                None if self.config.emit_empty => out.push(Snapshot::new(Timestamp(u))),
                None => {}
            }
            self.sealed_up_to = Some(u + 1);
        }
    }

    /// A time `u` can be sealed when it lies strictly in the stream's past
    /// and every known trajectory either is clarified through `u` or has
    /// lagged out.
    fn can_seal(&mut self, u: u32) -> bool {
        if u.saturating_add(self.config.lateness) >= self.max_seen {
            return false;
        }
        !scan_chains(&mut self.chains, u, self.config.max_lag, self.max_seen)
    }
}

/// Advances a trajectory's clarification chain with one record's last-time
/// link. Shared verbatim between [`TimeAligner`] and the per-shard chain
/// maps of [`ShardedAligner`], so the two heads stay equivalent by
/// construction.
fn advance_chain_in(chains: &mut HashMap<ObjectId, Chain>, rec: &GpsRecord) {
    let t = rec.time.0;
    let chain = chains.entry(rec.id).or_default();
    match rec.last_time {
        // First report of the trajectory: the chain starts here.
        None => chain.clarified = Some(chain.clarified.map_or(t, |c| c.max(t))),
        Some(lt) => match chain.clarified {
            Some(c) if lt.0 == c => chain.clarified = Some(t),
            Some(c) if lt.0 < c => {
                // Link points below the clarified frontier (predecessor
                // was dropped after a retirement): fast-forward.
                chain.clarified = Some(c.max(t));
            }
            _ => {
                chain.waiting.insert(lt.0, t);
            }
        },
    }
    // Consume any waiting links that now connect.
    while let Some(c) = chain.clarified {
        match chain.waiting.remove(&c) {
            Some(next_t) => chain.clarified = Some(next_t),
            None => break,
        }
    }
}

/// Runs the §4 retire-or-block scan over one chain map for candidate seal
/// time `u`; returns whether any chain blocks the seal. Retired chains
/// (lagged out per `max_lag`) are removed as a side effect — exactly the
/// `retain` the serial [`TimeAligner::can_seal`] performs. Because the scan
/// is pure per chain, running it over a partition of the chains and OR-ing
/// the blocked flags is identical to running it over their union.
fn scan_chains(chains: &mut HashMap<ObjectId, Chain>, u: u32, max_lag: u32, max_seen: u32) -> bool {
    let mut blocked = false;
    chains.retain(|_, chain| {
        let clarified = chain.clarified.unwrap_or(0);
        if clarified >= u {
            return true;
        }
        // The trajectory is behind. Has it lagged out entirely? A chain
        // whose newest *known* report (frontier) is also ancient is
        // departed; a chain whose clarified end is ancient but whose
        // frontier is recent is stuck on a lost link — retire it too,
        // otherwise it would stall the stream forever.
        if clarified.saturating_add(max_lag) < max_seen {
            return false;
        }
        blocked = true;
        true
    });
    blocked
}

/// Routing decision of [`ShardedAligner::route`] for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routed {
    /// Buffer the record's row on this aligner shard.
    Keep {
        /// Destination shard, `hash_id(object_id) % shards`.
        shard: usize,
    },
    /// The record arrived after its snapshot sealed: drop the row. The
    /// chain advance already happened in the owning shard's map (the
    /// record's synchronization information stays valid), and the drop was
    /// counted against that shard.
    Late {
        /// Shard whose late counter absorbed the drop.
        shard: usize,
    },
}

/// The sharded head's frontier router: the serial [`TimeAligner`] minus the
/// row buffers.
///
/// Sharding the aligner splits its state in two. The *rows* of each
/// buffered snapshot partition cleanly by trajectory id and live on the N
/// aligner shards. The *seal decision* does not: a record is late iff its
/// time is below the **global** sealed frontier at the moment it enters the
/// stream, and that frontier is the min over every trajectory's chain — so
/// the §4 chain state is partitioned per shard *inside* this router, which
/// runs serially at the ingest point, and seal = min over the per-shard
/// frontiers. (Deciding drops against per-shard local frontiers would drop
/// records the serial aligner keeps whenever one shard runs ahead; deciding
/// them downstream would make the outcome depend on thread timing.)
///
/// Per record the router answers "which shard, or late?" via
/// [`route`](ShardedAligner::route); after kept records,
/// [`drain_sealed`](ShardedAligner::drain_sealed) yields the times that
/// became sealable — the `Seal` punctuation broadcast to the shards, which
/// then emit their partial snapshots for merging. The sequence of sealed
/// times and every drop decision are bit-for-bit the serial aligner's:
/// `advance_chain_in` and `scan_chains` are the very same code, and the
/// per-shard scan unions to the serial scan.
#[derive(Debug)]
pub struct ShardedAligner {
    config: AlignerConfig,
    shards: usize,
    /// §4 chains, partitioned by `hash_id(object_id) % shards` — the same
    /// key the aligner shards buffer rows under.
    chains: Vec<HashMap<ObjectId, Chain>>,
    /// Times with at least one buffered row on some shard. Presence is all
    /// the router needs: the serial aligner only ever buffers non-empty
    /// snapshots, so `occupied` mirrors its `buffers.keys()` exactly.
    occupied: BTreeSet<u32>,
    /// All times `< sealed_up_to` are sealed; `None` until the first seal.
    sealed_up_to: Option<u32>,
    /// Largest record time seen.
    max_seen: u32,
    /// Late drops per shard. The decision is the router's, but the count is
    /// attributed to the shard owning the trajectory so gauges and
    /// checkpoint pieces mirror a per-shard deployment; the serial count is
    /// the sum.
    late_dropped: Vec<u64>,
}

impl ShardedAligner {
    /// Creates a router for `shards` aligner shards (clamped to ≥ 1).
    pub fn new(config: AlignerConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedAligner {
            config,
            shards,
            chains: (0..shards).map(|_| HashMap::new()).collect(),
            occupied: BTreeSet::new(),
            sealed_up_to: None,
            max_seen: 0,
            late_dropped: vec![0; shards],
        }
    }

    /// Number of aligner shards this router feeds.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a trajectory's rows and chain.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        subtask_for(hash_id(id), self.shards)
    }

    /// Routes one record: mirrors [`TimeAligner::push_into`] up to (but not
    /// including) the buffer insert and the sealable drain. The caller
    /// forwards `Keep` rows to their shard, then calls
    /// [`drain_sealed`](ShardedAligner::drain_sealed) — once per record, in
    /// arrival order, exactly as the serial aligner drains after every
    /// kept record (drain frequency affects chain retirement timing, so it
    /// is part of the equivalence contract).
    pub fn route(&mut self, rec: &GpsRecord) -> Routed {
        let t = rec.time.0;
        let shard = self.shard_of(rec.id);
        if let Some(s) = self.sealed_up_to {
            if t < s {
                self.late_dropped[shard] += 1;
                advance_chain_in(&mut self.chains[shard], rec);
                return Routed::Late { shard };
            }
        }
        self.max_seen = self.max_seen.max(t);
        self.occupied.insert(t);
        advance_chain_in(&mut self.chains[shard], rec);
        Routed::Keep { shard }
    }

    /// Appends the times that became sealable, ascending — the serial
    /// aligner's sealable drain with times in place of snapshots (the same
    /// loop `TimeAligner::push_into` runs). A listed time is either occupied
    /// (some shard holds rows for it) or an `emit_empty` gap; with
    /// `emit_empty` off, unoccupied times seal silently and are not listed.
    pub fn drain_sealed(&mut self, out: &mut Vec<u32>) {
        loop {
            let u = match self.sealed_up_to {
                Some(s) => s,
                // Nothing sealed yet: start at the earliest buffered time.
                None => match self.occupied.iter().next() {
                    Some(&t) => t,
                    None => break,
                },
            };
            if !self.can_seal(u) {
                break;
            }
            if self.occupied.remove(&u) || self.config.emit_empty {
                out.push(u);
            }
            self.sealed_up_to = Some(u + 1);
        }
    }

    fn can_seal(&mut self, u: u32) -> bool {
        if u.saturating_add(self.config.lateness) >= self.max_seen {
            return false;
        }
        let mut blocked = false;
        for chains in &mut self.chains {
            blocked |= scan_chains(chains, u, self.config.max_lag, self.max_seen);
        }
        !blocked
    }

    /// Seals everything still buffered (end of stream), returning the times
    /// to emit in ascending order — [`TimeAligner::flush`] with times in
    /// place of snapshots, including the `emit_empty` gap times.
    pub fn flush_times(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        let times: Vec<u32> = self.occupied.iter().copied().collect();
        for t in times {
            if self.config.emit_empty {
                if let Some(s) = self.sealed_up_to {
                    out.extend(s..t);
                }
            }
            self.occupied.remove(&t);
            out.push(t);
            self.sealed_up_to = Some(t + 1);
        }
        out
    }

    /// Number of buffered (unsealed) snapshot times across all shards.
    pub fn pending(&self) -> usize {
        self.occupied.len()
    }

    /// Total late drops across shards — equals the serial aligner's count
    /// on the same stream.
    pub fn late_dropped_total(&self) -> u64 {
        self.late_dropped.iter().sum()
    }

    /// Late drops attributed to one shard.
    pub fn shard_late_dropped(&self, shard: usize) -> u64 {
        self.late_dropped[shard]
    }

    /// The sealed frontier: all times `< sealed_up_to` are sealed.
    pub fn sealed_up_to(&self) -> Option<u32> {
        self.sealed_up_to
    }

    /// `(total, max per shard)` live chain counts.
    pub fn chain_counts(&self) -> (u64, u64) {
        let mut total = 0u64;
        let mut max = 0u64;
        for chains in &self.chains {
            let n = chains.len() as u64;
            total += n;
            max = max.max(n);
        }
        (total, max)
    }

    /// `(min, max)` of the per-shard frontiers — the first time each
    /// shard's own chains could still block. Gauge-only (the seal decision
    /// never reads this): a shard's frontier is capped by the lateness
    /// watermark and held back by its slowest non-retired chain, so the
    /// spread is a live measure of shard skew.
    pub fn frontier_range(&self) -> (u32, u32) {
        let cap = self.max_seen.saturating_sub(self.config.lateness);
        let mut min_f = u32::MAX;
        let mut max_f = 0u32;
        for chains in &self.chains {
            let mut f = cap;
            for chain in chains.values() {
                let clarified = chain.clarified.unwrap_or(0);
                if clarified.saturating_add(self.config.max_lag) < self.max_seen {
                    continue; // lagged out: no longer holds the frontier back
                }
                f = f.min(clarified.saturating_add(1));
            }
            min_f = min_f.min(f);
            max_f = max_f.max(f);
        }
        if min_f == u32::MAX {
            (0, 0)
        } else {
            (min_f, max_f)
        }
    }

    /// The router's checkpoint piece: chains (canonically sorted), clock
    /// fields, and the summed late counter — everything except the buffered
    /// rows, which the aligner shards deposit as their own pieces.
    /// [`AlignerCheckpoint::merge`] of the router piece plus the shard
    /// pieces reproduces the serial aligner's checkpoint of the same state.
    pub fn checkpoint(&self) -> AlignerCheckpoint {
        let mut chains: Vec<ChainCheckpoint> = self
            .chains
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|(&id, chain)| ChainCheckpoint {
                id,
                clarified: chain.clarified,
                waiting: chain.waiting.iter().map(|(&lt, &t)| (lt, t)).collect(),
            })
            .collect();
        chains.sort_by_key(|c| c.id);
        AlignerCheckpoint {
            buffers: Vec::new(),
            chains,
            sealed_up_to: self.sealed_up_to,
            max_seen: self.max_seen,
            late_dropped: self.late_dropped_total(),
        }
    }

    /// Rebuilds a router from a (merged) checkpoint onto `shards` shards —
    /// possibly a different count than the checkpoint was written under:
    /// chains rebucket by the hash, `occupied` rebuilds from the buffered
    /// times, and the late counter is credited to shard 0 **only**. The
    /// counter is a merged total; splitting or replicating it across shards
    /// would multiply it at the next merge (the skipped-partition bug class
    /// from the engine restore path), so exactly one shard carries it.
    pub fn from_checkpoint(config: AlignerConfig, shards: usize, ckpt: &AlignerCheckpoint) -> Self {
        let shards = shards.max(1);
        let mut chains: Vec<HashMap<ObjectId, Chain>> =
            (0..shards).map(|_| HashMap::new()).collect();
        for c in &ckpt.chains {
            chains[subtask_for(hash_id(c.id), shards)].insert(
                c.id,
                Chain {
                    clarified: c.clarified,
                    waiting: c.waiting.iter().copied().collect(),
                },
            );
        }
        let mut late_dropped = vec![0; shards];
        late_dropped[0] = ckpt.late_dropped;
        ShardedAligner {
            config,
            shards,
            chains,
            occupied: ckpt
                .buffers
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| s.time.0)
                .collect(),
            sealed_up_to: ckpt.sealed_up_to,
            max_seen: ckpt.max_seen,
            late_dropped,
        }
    }
}

/// Point-in-time view of the sharded aligner head, for STATUS/METRICS.
/// `Default` is the zeroed no-head view (a GDC deployment runs the serial
/// aligner and exposes no shard gauges) — status renderers use it to keep
/// every key present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlignerStatus {
    /// Number of aligner shards (the head's parallelism).
    pub shards: usize,
    /// Live trajectory chains across all shards.
    pub chains: u64,
    /// Chains on the most loaded shard.
    pub max_shard_chains: u64,
    /// Records dropped for arriving after their snapshot sealed.
    pub late_dropped: u64,
    /// The sealed frontier (0 until the first seal).
    pub sealed_up_to: u64,
    /// Smallest per-shard frontier — the shard holding sealing back.
    pub min_shard_frontier: u64,
    /// Largest per-shard frontier — the shard running furthest ahead.
    pub max_shard_frontier: u64,
}

impl AlignerStatus {
    /// Chain-count skew: max shard load over the ideal even share. 1.0 is
    /// perfectly balanced; `shards` is everything on one shard.
    pub fn imbalance(&self) -> f64 {
        if self.chains == 0 {
            1.0
        } else {
            self.max_shard_chains as f64 * self.shards as f64 / self.chains as f64
        }
    }
}

/// Shared gauges for the sharded aligner head: the router thread owns the
/// [`ShardedAligner`], so drivers observe it through these atomics (same
/// contract as the GridSync `SyncStats`).
#[derive(Debug)]
pub struct AlignStats {
    shards: usize,
    chains: AtomicU64,
    max_shard_chains: AtomicU64,
    late_dropped: AtomicU64,
    sealed_up_to: AtomicU64,
    min_frontier: AtomicU64,
    max_frontier: AtomicU64,
}

impl AlignStats {
    /// Creates zeroed gauges for an `shards`-wide head.
    pub fn new(shards: usize) -> Arc<AlignStats> {
        Arc::new(AlignStats {
            shards: shards.max(1),
            chains: AtomicU64::new(0),
            max_shard_chains: AtomicU64::new(0),
            late_dropped: AtomicU64::new(0),
            sealed_up_to: AtomicU64::new(0),
            min_frontier: AtomicU64::new(0),
            max_frontier: AtomicU64::new(0),
        })
    }

    /// Seeds the gauges from a restored checkpoint so observability resumes
    /// from the cut instead of zero.
    pub fn restore(&self, late_dropped: u64, sealed_up_to: Option<u32>) {
        self.late_dropped.store(late_dropped, Ordering::Relaxed);
        self.sealed_up_to
            .store(sealed_up_to.unwrap_or(0) as u64, Ordering::Relaxed);
    }

    /// Publishes the cheap per-batch gauges (O(shards) reads).
    pub fn observe(&self, aligner: &ShardedAligner) {
        let (total, max) = aligner.chain_counts();
        self.chains.store(total, Ordering::Relaxed);
        self.max_shard_chains.store(max, Ordering::Relaxed);
        self.late_dropped
            .store(aligner.late_dropped_total(), Ordering::Relaxed);
        self.sealed_up_to.store(
            aligner.sealed_up_to().unwrap_or(0) as u64,
            Ordering::Relaxed,
        );
    }

    /// Publishes the per-shard frontier spread (O(chains) scan — called on
    /// seal, not per record).
    pub fn observe_frontiers(&self, aligner: &ShardedAligner) {
        let (min_f, max_f) = aligner.frontier_range();
        self.min_frontier.store(min_f as u64, Ordering::Relaxed);
        self.max_frontier.store(max_f as u64, Ordering::Relaxed);
    }

    /// Snapshot of the gauges.
    pub fn status(&self) -> AlignerStatus {
        AlignerStatus {
            shards: self.shards,
            chains: self.chains.load(Ordering::Relaxed),
            max_shard_chains: self.max_shard_chains.load(Ordering::Relaxed),
            late_dropped: self.late_dropped.load(Ordering::Relaxed),
            sealed_up_to: self.sealed_up_to.load(Ordering::Relaxed),
            min_shard_frontier: self.min_frontier.load(Ordering::Relaxed),
            max_shard_frontier: self.max_frontier.load(Ordering::Relaxed),
        }
    }
}

/// [`TimeAligner`] as a pipeline [`Operator`].
pub struct AlignOperator {
    aligner: TimeAligner,
    /// Shared recorder the late-drop counter is mirrored into (the operator
    /// itself is owned by its subtask thread, so drivers observe the count
    /// through this instead).
    metrics: Option<crate::metrics::PipelineMetrics>,
    reported_late: u64,
    /// Sealed-snapshot scratch, reused across records (batch processing
    /// would otherwise allocate a result vector per record).
    scratch: Vec<Snapshot>,
}

impl AlignOperator {
    /// Wraps an aligner for use in a dataflow stage (parallelism must be 1,
    /// since alignment is a global ordering decision).
    pub fn new(config: AlignerConfig) -> Self {
        AlignOperator {
            aligner: TimeAligner::new(config),
            metrics: None,
            reported_late: 0,
            scratch: Vec::new(),
        }
    }

    /// Like [`AlignOperator::new`], additionally mirroring the late-record
    /// counter into a shared [`PipelineMetrics`](crate::PipelineMetrics).
    pub fn with_metrics(config: AlignerConfig, metrics: crate::metrics::PipelineMetrics) -> Self {
        AlignOperator {
            aligner: TimeAligner::new(config),
            metrics: Some(metrics),
            reported_late: 0,
            scratch: Vec::new(),
        }
    }

    fn sync_late_counter(&mut self) {
        if let Some(metrics) = &self.metrics {
            let total = self.aligner.late_dropped();
            if total > self.reported_late {
                metrics.mark_late(total - self.reported_late);
                self.reported_late = total;
            }
        }
    }
}

impl Operator<GpsRecord, Snapshot> for AlignOperator {
    fn process(&mut self, input: GpsRecord, out: &mut Collector<Snapshot>) {
        self.aligner.push_into(input, &mut self.scratch);
        out.emit_all(self.scratch.drain(..));
        self.sync_late_counter();
    }

    fn process_batch(&mut self, batch: Vec<GpsRecord>, out: &mut Collector<Snapshot>) {
        for input in batch {
            self.aligner.push_into(input, &mut self.scratch);
        }
        out.emit_all(self.scratch.drain(..));
        self.sync_late_counter();
    }

    fn finish(&mut self, out: &mut Collector<Snapshot>) {
        out.emit_all(self.aligner.flush());
        self.sync_late_counter();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Point;

    fn rec(id: u32, t: u32, last: Option<u32>) -> GpsRecord {
        GpsRecord::new(
            ObjectId(id),
            Point::new(t as f64, id as f64),
            Timestamp(t),
            last.map(Timestamp),
        )
    }

    fn aligner() -> TimeAligner {
        TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: true,
            lateness: 0,
        })
    }

    #[test]
    fn in_order_single_object_seals_previous_times() {
        let mut a = aligner();
        // Time 0 cannot seal yet: nothing newer witnessed.
        assert!(a.push(rec(1, 0, None)).is_empty());
        let out = a.push(rec(1, 1, Some(0)));
        // Time 0 is now complete (object 1 clarified through 1).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(0));
        assert_eq!(out[0].len(), 1);
    }

    #[test]
    fn paper_example_waits_for_r2_but_not_r4() {
        let mut a = aligner();
        // tr = {r1, r2, r3, r5}; receive r1 then r3 (r3.last_time = 2).
        assert!(a.push(rec(1, 1, None)).is_empty());
        let out = a.push(rec(1, 3, Some(2)));
        // Snapshot 1 seals (r2 cannot change it), but snapshot 2 must wait
        // for the still-missing r2.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(1));

        // r2 arrives: chain connects 1→2→3; snapshot 2 seals.
        let out = a.push(rec(1, 2, Some(1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(2));

        // r5 with last_time 3: no record was reported at time 4, so the
        // system does not wait — snapshot 3 and the empty snapshot 4 seal.
        let out = a.push(rec(1, 5, Some(3)));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].time, Timestamp(3));
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[1].time, Timestamp(4));
        assert!(out[1].is_empty());
    }

    #[test]
    fn two_objects_block_until_both_clarified() {
        let mut a = aligner();
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        let out = a.push(rec(1, 1, Some(0)));
        assert_eq!(out.len(), 1, "time 0 sealable: both clarified ≥ 0");
        assert_eq!(out[0].time, Timestamp(0));
        assert_eq!(out[0].len(), 2);

        let out = a.push(rec(1, 2, Some(1)));
        assert!(out.is_empty(), "time 1 blocked by object 2");

        let out = a.push(rec(2, 1, Some(0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(1));
        assert_eq!(out[0].len(), 2);
    }

    #[test]
    fn out_of_order_across_objects_is_reordered() {
        let mut a = aligner();
        let mut sealed = Vec::new();
        sealed.extend(a.push(rec(2, 1, None)));
        sealed.extend(a.push(rec(1, 0, None)));
        sealed.extend(a.push(rec(1, 1, Some(0))));
        sealed.extend(a.push(rec(2, 2, Some(1))));
        sealed.extend(a.push(rec(1, 2, Some(1))));
        sealed.extend(a.flush());
        let times: Vec<u32> = sealed.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![0, 1, 2], "sealed in ascending order");
        // Snapshot 1 contains both objects despite reversed arrival.
        assert_eq!(sealed[1].len(), 2);
    }

    #[test]
    fn out_of_order_within_object_chains_via_last_time() {
        let mut a = aligner();
        assert!(a.push(rec(1, 0, None)).is_empty());
        // Records at times 2 and 3 arrive before the record at time 1.
        let out = a.push(rec(1, 2, Some(1)));
        // Snapshot 0 seals (the object is clarified through 0 and time 2 was
        // witnessed); snapshots 1 and 2 must wait for the missing link.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(0));
        assert!(a.push(rec(1, 3, Some(2))).is_empty());
        let out = a.push(rec(1, 1, Some(0)));
        // Chain connects 0→1→2→3: snapshots 1 and 2 seal.
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn lagging_object_is_retired_after_max_lag() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 3,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        // Object 1 keeps reporting; object 2 goes silent.
        let mut sealed = Vec::new();
        for t in 1..10 {
            sealed.extend(a.push(rec(1, t, Some(t - 1))));
        }
        assert!(
            sealed.iter().any(|s| s.time.0 >= 4),
            "sealing resumed past the lagged object, sealed: {:?}",
            sealed.iter().map(|s| s.time.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn flush_seals_remaining_buffered_times_with_gaps() {
        let mut a = aligner();
        let mut out = Vec::new();
        out.extend(a.push(rec(1, 2, None)));
        out.extend(a.push(rec(1, 5, Some(2))));
        out.extend(a.flush());
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![2, 3, 4, 5]);
        assert!(out[1].is_empty() && out[2].is_empty());
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn no_empty_snapshots_when_disabled() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: false,
            lateness: 0,
        });
        let mut out = Vec::new();
        out.extend(a.push(rec(1, 2, None)));
        out.extend(a.push(rec(1, 5, Some(2))));
        out.extend(a.flush());
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![2, 5]);
    }

    #[test]
    fn late_record_for_sealed_snapshot_is_dropped() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        for t in 1..8 {
            a.push(rec(1, t, Some(t - 1)));
        }
        // Object 2's ancient record arrives after time 0 was sealed.
        let out = a.push(rec(2, 0, None));
        assert!(out.is_empty(), "late record must not reopen sealed times");
    }

    #[test]
    fn restart_after_retirement_does_not_stall() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        let mut sealed = Vec::new();
        for t in 1..8 {
            sealed.extend(a.push(rec(1, t, Some(t - 1))));
        }
        // Object 2 comes back with a link into its retired past.
        sealed.extend(a.push(rec(2, 8, Some(0))));
        for t in 8..12 {
            sealed.extend(a.push(rec(1, t + 1, Some(t))));
        }
        let max_sealed = sealed.iter().map(|s| s.time.0).max().unwrap();
        assert!(max_sealed >= 8, "stream stalled at {max_sealed}");
    }

    #[test]
    fn empty_aligner_flush_is_empty() {
        let mut a = aligner();
        assert!(a.flush().is_empty());
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn operator_wrapper_emits_through_collector() {
        // Default config has lateness = 2: nothing seals while the stream is
        // only 2 ticks deep; finish() flushes everything.
        let mut op = AlignOperator::new(AlignerConfig::default());
        let mut c = Collector::new();
        op.process(rec(1, 0, None), &mut c);
        op.process(rec(1, 1, Some(0)), &mut c);
        let first: Vec<Snapshot> = c.drain().collect();
        assert!(first.is_empty());
        op.finish(&mut c);
        let rest: Vec<Snapshot> = c.drain().collect();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].time, Timestamp(0));
        assert_eq!(rest[1].time, Timestamp(1));
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        // Build a mid-stream aligner with buffered snapshots, a waiting
        // link, and a late drop; checkpoint it; feed the same suffix to the
        // original and the restored aligner and compare everything.
        let config = AlignerConfig {
            max_lag: 4,
            emit_empty: true,
            lateness: 1,
        };
        let mut a = TimeAligner::new(config);
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        for t in 1..6 {
            a.push(rec(1, t, Some(t - 1)));
        }
        // Object 2's ancient record is now late (dropped + counted).
        a.push(rec(2, 1, Some(0)));
        // A waiting link: record at time 7 before its predecessor at 6.
        a.push(rec(1, 7, Some(6)));

        let ckpt = a.checkpoint();
        assert!(ckpt.late_dropped >= 1, "late drop was recorded");
        let mut b = TimeAligner::from_checkpoint(config, &ckpt);
        assert_eq!(b.checkpoint(), ckpt, "checkpoint round-trips exactly");

        let suffix: Vec<GpsRecord> = vec![
            rec(1, 6, Some(5)),
            rec(1, 8, Some(7)),
            rec(1, 9, Some(8)),
            rec(2, 9, None),
        ];
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for r in suffix {
            out_a.extend(a.push(r));
            out_b.extend(b.push(r));
        }
        out_a.extend(a.flush());
        out_b.extend(b.flush());
        assert_eq!(out_a, out_b, "restored aligner diverged");
        assert_eq!(a.late_dropped(), b.late_dropped());
    }

    #[test]
    fn restored_aligner_keeps_counting_late_records_from_its_base() {
        // The restore path (core's align stage) must rehydrate the counter
        // rather than reset observability to zero.
        let config = AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        };
        let mut a = TimeAligner::new(config);
        a.push(rec(1, 0, None));
        for t in 1..8 {
            a.push(rec(1, t, Some(t - 1)));
        }
        a.push(rec(2, 0, None)); // late → dropped
        let ckpt = a.checkpoint();
        assert_eq!(ckpt.late_dropped, 1);

        let mut restored = TimeAligner::from_checkpoint(config, &ckpt);
        restored.push(rec(2, 1, Some(0))); // another late record
        assert_eq!(restored.late_dropped(), 2, "one rehydrated + one new");
    }

    #[test]
    fn lateness_protects_late_first_records() {
        // Object 2's very first record (no last-time link) arrives one tick
        // late; with lateness ≥ 1 it must not be dropped.
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: true,
            lateness: 1,
        });
        let mut sealed = Vec::new();
        sealed.extend(a.push(rec(1, 0, None)));
        sealed.extend(a.push(rec(1, 1, Some(0))));
        sealed.extend(a.push(rec(2, 0, None))); // late first record
        sealed.extend(a.push(rec(1, 2, Some(1))));
        sealed.extend(a.flush());
        let s0 = sealed.iter().find(|s| s.time == Timestamp(0)).unwrap();
        assert_eq!(s0.len(), 2, "late first record was dropped");
    }

    // ---- sharded head ----------------------------------------------------

    /// Reference harness for the sharded head: the router plus per-shard
    /// row buffers, reassembling full snapshots at seal — what the
    /// pipeline's shard stages + merge tree do across threads, done inline
    /// so outputs can be compared record-for-record against the serial
    /// aligner.
    struct ShardedHarness {
        router: ShardedAligner,
        buffers: Vec<BTreeMap<u32, Snapshot>>,
    }

    impl ShardedHarness {
        fn new(config: AlignerConfig, shards: usize) -> Self {
            ShardedHarness {
                router: ShardedAligner::new(config, shards),
                buffers: (0..shards.max(1)).map(|_| BTreeMap::new()).collect(),
            }
        }

        fn push(&mut self, r: GpsRecord) -> Vec<Snapshot> {
            match self.router.route(&r) {
                Routed::Late { .. } => return Vec::new(),
                Routed::Keep { shard } => {
                    self.buffers[shard]
                        .entry(r.time.0)
                        .or_insert_with(|| Snapshot::new(r.time))
                        .push(r.id, r.location, r.last_time);
                }
            }
            let mut times = Vec::new();
            self.router.drain_sealed(&mut times);
            times.into_iter().map(|t| self.collect(t)).collect()
        }

        fn collect(&mut self, t: u32) -> Snapshot {
            let mut entries = Vec::new();
            for shard in &mut self.buffers {
                if let Some(s) = shard.remove(&t) {
                    entries.extend(s.entries);
                }
            }
            entries.sort_by_key(|e| e.id);
            Snapshot {
                time: Timestamp(t),
                entries,
            }
        }

        fn flush(&mut self) -> Vec<Snapshot> {
            self.router
                .flush_times()
                .into_iter()
                .map(|t| self.collect(t))
                .collect()
        }
    }

    /// Snapshot rows in canonical (id) order, for comparing the serial
    /// aligner's arrival-ordered rows against shard-merged ones.
    fn normalized(mut s: Snapshot) -> Snapshot {
        s.entries.sort_by_key(|e| e.id);
        s
    }

    fn normalized_ckpt(mut c: AlignerCheckpoint) -> AlignerCheckpoint {
        for snap in &mut c.buffers {
            snap.entries.sort_by_key(|e| e.id);
        }
        c
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// A deterministic stream with silent ticks (link gaps) and bounded
    /// out-of-order swaps.
    fn disordered_stream(seed: u64, objects: u32, ticks: u32) -> Vec<GpsRecord> {
        let mut rng = seed;
        let mut recs: Vec<GpsRecord> = Vec::new();
        for id in 1..=objects {
            let mut prev: Option<u32> = None;
            for t in 0..ticks {
                if lcg(&mut rng).is_multiple_of(4) {
                    continue; // silent tick: the next link skips over it
                }
                recs.push(rec(id, t, prev));
                prev = Some(t);
            }
        }
        recs.sort_by_key(|r| r.time.0);
        for i in 0..recs.len() {
            let j = i + (lcg(&mut rng) as usize % 7).min(recs.len() - 1 - i);
            recs.swap(i, j);
        }
        recs
    }

    #[test]
    fn sharded_router_matches_serial_on_disordered_streams() {
        let configs = [
            AlignerConfig {
                max_lag: 6,
                emit_empty: true,
                lateness: 1,
            },
            // Tight lag + zero lateness: forces retirements and late drops.
            AlignerConfig {
                max_lag: 3,
                emit_empty: true,
                lateness: 0,
            },
            AlignerConfig {
                max_lag: 100,
                emit_empty: false,
                lateness: 0,
            },
        ];
        for config in configs {
            for seed in [1u64, 7, 42] {
                for shards in [1usize, 2, 3, 5] {
                    let mut serial = TimeAligner::new(config);
                    let mut sharded = ShardedHarness::new(config, shards);
                    let mut out_serial = Vec::new();
                    let mut out_sharded = Vec::new();
                    for r in disordered_stream(seed, 6, 40) {
                        out_serial.extend(serial.push(r).into_iter().map(normalized));
                        out_sharded.extend(sharded.push(r));
                    }
                    out_serial.extend(serial.flush().into_iter().map(normalized));
                    out_sharded.extend(sharded.flush());
                    assert_eq!(
                        out_serial, out_sharded,
                        "diverged: seed {seed}, {shards} shards"
                    );
                    assert_eq!(
                        serial.late_dropped(),
                        sharded.router.late_dropped_total(),
                        "late counts diverged: seed {seed}, {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_late_boundary_matches_serial_drop_decisions() {
        // One trajectory races ahead on its shard; the other crawls at the
        // seal boundary on a different shard. Records landing exactly at
        // the min-over-frontiers boundary must drop iff the serial aligner
        // drops them — lateness is strict (`t < sealed_up_to`), so `s - 1`
        // drops and `s` itself is kept.
        let config = AlignerConfig {
            max_lag: 4,
            emit_empty: true,
            lateness: 0,
        };
        let probe = ShardedAligner::new(config, 2);
        let fast = (1..100)
            .find(|&i| probe.shard_of(ObjectId(i)) == 0)
            .unwrap();
        let slow = (1..100)
            .find(|&i| probe.shard_of(ObjectId(i)) == 1)
            .unwrap();

        let mut serial = TimeAligner::new(config);
        let mut sharded = ShardedHarness::new(config, 2);
        let mut out_serial = Vec::new();
        let mut out_sharded = Vec::new();
        let feed = |serial: &mut TimeAligner,
                    sharded: &mut ShardedHarness,
                    out_serial: &mut Vec<Snapshot>,
                    out_sharded: &mut Vec<Snapshot>,
                    r: GpsRecord| {
            out_serial.extend(serial.push(r).into_iter().map(normalized));
            out_sharded.extend(sharded.push(r));
        };

        feed(
            &mut serial,
            &mut sharded,
            &mut out_serial,
            &mut out_sharded,
            rec(fast, 0, None),
        );
        feed(
            &mut serial,
            &mut sharded,
            &mut out_serial,
            &mut out_sharded,
            rec(slow, 0, None),
        );
        // The fast shard runs far ahead; the slow trajectory retires once
        // its clarified end lags more than max_lag behind.
        for t in 1..12 {
            feed(
                &mut serial,
                &mut sharded,
                &mut out_serial,
                &mut out_sharded,
                rec(fast, t, Some(t - 1)),
            );
        }
        let s = serial.checkpoint().sealed_up_to.expect("sealing advanced");
        assert_eq!(sharded.router.sealed_up_to(), Some(s), "frontiers agree");
        assert!(s >= 2, "the slow shard no longer holds the frontier");

        // Exactly at the boundary from the slow trajectory's shard.
        assert_eq!(
            sharded.router.route(&rec(slow, s - 1, Some(0))),
            Routed::Late { shard: 1 },
            "one tick below the frontier drops"
        );
        let before = serial.late_dropped();
        out_serial.extend(
            serial
                .push(rec(slow, s - 1, Some(0)))
                .into_iter()
                .map(normalized),
        );
        assert_eq!(serial.late_dropped(), before + 1, "serial dropped it too");

        match sharded.router.route(&rec(slow, s, Some(s - 1))) {
            Routed::Keep { shard } => {
                assert_eq!(shard, 1);
                sharded.buffers[1]
                    .entry(s)
                    .or_insert_with(|| Snapshot::new(Timestamp(s)))
                    .push(
                        ObjectId(slow),
                        rec(slow, s, Some(s - 1)).location,
                        Some(Timestamp(s - 1)),
                    );
                let mut times = Vec::new();
                sharded.router.drain_sealed(&mut times);
                out_sharded.extend(times.into_iter().map(|t| sharded.collect(t)));
            }
            other => panic!("record at the frontier itself must be kept, got {other:?}"),
        }
        out_serial.extend(
            serial
                .push(rec(slow, s, Some(s - 1)))
                .into_iter()
                .map(normalized),
        );

        out_serial.extend(serial.flush().into_iter().map(normalized));
        out_sharded.extend(sharded.flush());
        assert_eq!(out_serial, out_sharded, "sealed outputs diverged");
        assert_eq!(serial.late_dropped(), sharded.router.late_dropped_total());
        assert_eq!(
            sharded.router.shard_late_dropped(1),
            sharded.router.late_dropped_total(),
            "drops attributed to the owning shard"
        );
    }

    #[test]
    fn sharded_reshard_cycle_conserves_state_and_counters() {
        // Run sharded at S=3 with late drops, checkpoint (router piece +
        // per-shard buffer pieces, merged), restore onto S=5, continue, and
        // compare everything against an uninterrupted serial aligner. The
        // merged counter must restore exactly once (credited to shard 0),
        // not once per shard.
        let config = AlignerConfig {
            max_lag: 3,
            emit_empty: true,
            lateness: 0,
        };
        let mut serial = TimeAligner::new(config);
        let mut sharded = ShardedHarness::new(config, 3);
        let stream = disordered_stream(9, 5, 30);
        let (prefix, suffix) = stream.split_at(stream.len() / 2);

        let mut out_serial = Vec::new();
        let mut out_sharded = Vec::new();
        for r in prefix {
            out_serial.extend(serial.push(*r).into_iter().map(normalized));
            out_sharded.extend(sharded.push(*r));
        }
        // Force a late drop at the cut so the counter is non-zero.
        if let Some(s) = serial.checkpoint().sealed_up_to {
            if s > 0 {
                let late = rec(5, s - 1, None);
                out_serial.extend(serial.push(late).into_iter().map(normalized));
                out_sharded.extend(sharded.push(late));
            }
        }
        assert!(serial.late_dropped() > 0, "cut must carry a live counter");

        // Checkpoint: router piece + one buffer-only piece per shard.
        let mut pieces = vec![sharded.router.checkpoint()];
        for shard in &sharded.buffers {
            pieces.push(AlignerCheckpoint {
                buffers: shard.values().cloned().collect(),
                chains: Vec::new(),
                sealed_up_to: None,
                max_seen: 0,
                late_dropped: 0,
            });
        }
        let merged = AlignerCheckpoint::merge(pieces);
        assert_eq!(
            merged,
            normalized_ckpt(serial.checkpoint()),
            "merged pieces reproduce the serial checkpoint"
        );

        // Restore onto a different shard count.
        let mut restored = ShardedHarness::new(config, 5);
        restored.router = ShardedAligner::from_checkpoint(config, 5, &merged);
        for (i, shard) in restored.buffers.iter_mut().enumerate() {
            let piece = merged.piece(false, |id| subtask_for(hash_id(id), 5) == i);
            *shard = piece.buffers.into_iter().map(|s| (s.time.0, s)).collect();
        }
        assert_eq!(
            restored.router.late_dropped_total(),
            merged.late_dropped,
            "restored total intact"
        );
        assert_eq!(
            restored.router.shard_late_dropped(0),
            merged.late_dropped,
            "counter credited to shard 0 only"
        );

        let mut out_restored = out_sharded.clone();
        for r in suffix {
            out_serial.extend(serial.push(*r).into_iter().map(normalized));
            out_restored.extend(restored.push(*r));
        }
        out_serial.extend(serial.flush().into_iter().map(normalized));
        out_restored.extend(restored.flush());
        assert_eq!(out_serial, out_restored, "restore onto 5 shards diverged");
        assert_eq!(serial.late_dropped(), restored.router.late_dropped_total());

        // A second checkpoint cycle must not multiply the counter.
        let merged2 = AlignerCheckpoint::merge(vec![restored.router.checkpoint()]);
        assert_eq!(merged2.late_dropped, serial.late_dropped());
    }

    #[test]
    fn sharded_gauges_report_chains_frontiers_and_drops() {
        let config = AlignerConfig {
            max_lag: 100,
            emit_empty: true,
            lateness: 0,
        };
        let stats = AlignStats::new(2);
        let mut sharded = ShardedHarness::new(config, 2);
        let probe = &sharded.router;
        let a = (1..100)
            .find(|&i| probe.shard_of(ObjectId(i)) == 0)
            .unwrap();
        let b = (1..100)
            .find(|&i| probe.shard_of(ObjectId(i)) == 1)
            .unwrap();
        sharded.push(rec(a, 0, None));
        sharded.push(rec(b, 0, None));
        sharded.push(rec(a, 5, Some(0)));
        stats.observe(&sharded.router);
        stats.observe_frontiers(&sharded.router);
        let status = stats.status();
        assert_eq!(status.shards, 2);
        assert_eq!(status.chains, 2);
        assert_eq!(status.max_shard_chains, 1);
        assert!(
            (status.imbalance() - 1.0).abs() < 1e-9,
            "perfectly balanced"
        );
        // Shard a is clarified through 5 (frontier capped at max_seen);
        // shard b is stuck at 1.
        assert_eq!(status.min_shard_frontier, 1);
        assert_eq!(status.max_shard_frontier, 5);
        assert_eq!(status.sealed_up_to, 1, "time 0 sealed");
        assert_eq!(status.late_dropped, 0);
    }
}
