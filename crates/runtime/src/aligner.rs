//! Stream time synchronization via *"last time"* chaining (paper §4).
//!
//! Flink does not deliver records in global time order, but pattern
//! detection must process snapshots in ascending time order. The paper's
//! mechanism: every record carries the discretized time of its trajectory's
//! *previous* report. Chaining these links tells the system, per trajectory,
//! through which time its reports are fully known — and therefore when a
//! snapshot can no longer gain members and may be sealed.
//!
//! Example from the paper: for records `r1, r3` of one trajectory where
//! `r3.last_time = 2`, the system must keep waiting for `r2`; but if
//! `r5.last_time = 3`, no record was reported at time 4 and the system need
//! not wait for one.
//!
//! A time `u` is sealed when (a) some record with a strictly later time has
//! been witnessed (so `u` is in the past of the stream) and (b) every known
//! trajectory either is clarified through `u` or has lagged out (see
//! [`AlignerConfig::max_lag`]).

use crate::operator::{Collector, Operator};
use icpe_types::{AlignerCheckpoint, ChainCheckpoint, GpsRecord, ObjectId, Snapshot, Timestamp};
use std::collections::{BTreeMap, HashMap};

/// Configuration of the [`TimeAligner`].
#[derive(Debug, Clone, Copy)]
pub struct AlignerConfig {
    /// A trajectory whose clarified time lags more than this many intervals
    /// behind the newest witnessed time is considered departed and stops
    /// blocking progress. (Unbounded waiting would stall the stream when a
    /// device goes offline; Flink jobs use idle-source timeouts the same
    /// way.)
    pub max_lag: u32,
    /// Emit empty snapshots for times at which no object reported. Keeps the
    /// snapshot stream dense in time, which the enumeration engines rely on
    /// for gap bookkeeping.
    pub emit_empty: bool,
    /// Extra intervals a time stays open beyond the newest witnessed time.
    /// The *last-time* chaining decides exactly when **known** trajectories
    /// are complete, but a trajectory's very first record carries no link —
    /// only this watermark-style allowance protects it from arriving after
    /// its snapshot sealed.
    pub lateness: u32,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        AlignerConfig {
            max_lag: 16,
            emit_empty: true,
            lateness: 2,
        }
    }
}

/// Per-trajectory chaining state.
#[derive(Debug, Default)]
struct Chain {
    /// Largest time through which this trajectory's reports are fully known.
    clarified: Option<u32>,
    /// Received records whose `last_time` link has not connected yet,
    /// keyed by that `last_time` (value: the record's own time).
    waiting: BTreeMap<u32, u32>,
}

/// Buffers out-of-order [`GpsRecord`]s and seals [`Snapshot`]s in strictly
/// increasing time order once their membership can no longer change.
#[derive(Debug)]
pub struct TimeAligner {
    config: AlignerConfig,
    /// Buffered (not yet sealed) snapshot contents by time.
    buffers: BTreeMap<u32, Snapshot>,
    chains: HashMap<ObjectId, Chain>,
    /// All times `< sealed_up_to` are sealed; `None` until the first seal.
    sealed_up_to: Option<u32>,
    /// Largest record time seen.
    max_seen: u32,
    /// Records dropped for arriving after their snapshot sealed.
    late_dropped: u64,
}

impl TimeAligner {
    /// Creates an aligner.
    pub fn new(config: AlignerConfig) -> Self {
        TimeAligner {
            config,
            buffers: BTreeMap::new(),
            chains: HashMap::new(),
            sealed_up_to: None,
            max_seen: 0,
            late_dropped: 0,
        }
    }

    /// Ingests one record; returns any snapshots that became sealable,
    /// in ascending time order. Allocation-free callers (the vectorized
    /// align stage) use [`TimeAligner::push_into`] with a reused buffer.
    pub fn push(&mut self, rec: GpsRecord) -> Vec<Snapshot> {
        let mut out = Vec::new();
        self.push_into(rec, &mut out);
        out
    }

    /// Ingests one record, appending any snapshots that became sealable to
    /// `out` in ascending time order — [`TimeAligner::push`] without the
    /// per-record result vector, for batch processing with reused scratch.
    pub fn push_into(&mut self, rec: GpsRecord, out: &mut Vec<Snapshot>) {
        let t = rec.time.0;
        if let Some(s) = self.sealed_up_to {
            if t < s {
                // Arrived after its snapshot was sealed (lag exceeded):
                // dropped, deterministically, and counted for observability.
                // The record's *synchronization information* stays valid —
                // advancing the chain prevents the trajectory's later
                // records from waiting forever on a link that will never
                // connect (which would stall sealing until retirement).
                self.late_dropped += 1;
                self.advance_chain(&rec);
                return;
            }
        }
        self.max_seen = self.max_seen.max(t);
        self.buffers
            .entry(t)
            .or_insert_with(|| Snapshot::new(Timestamp(t)))
            .push(rec.id, rec.location, rec.last_time);
        self.advance_chain(&rec);
        self.drain_sealable_into(out);
    }

    /// Advances a trajectory's clarification chain with one record's
    /// last-time link.
    fn advance_chain(&mut self, rec: &GpsRecord) {
        let t = rec.time.0;
        let chain = self.chains.entry(rec.id).or_default();
        match rec.last_time {
            // First report of the trajectory: the chain starts here.
            None => chain.clarified = Some(chain.clarified.map_or(t, |c| c.max(t))),
            Some(lt) => match chain.clarified {
                Some(c) if lt.0 == c => chain.clarified = Some(t),
                Some(c) if lt.0 < c => {
                    // Link points below the clarified frontier (predecessor
                    // was dropped after a retirement): fast-forward.
                    chain.clarified = Some(c.max(t));
                }
                _ => {
                    chain.waiting.insert(lt.0, t);
                }
            },
        }
        // Consume any waiting links that now connect.
        while let Some(c) = chain.clarified {
            match chain.waiting.remove(&c) {
                Some(next_t) => chain.clarified = Some(next_t),
                None => break,
            }
        }
    }

    /// Seals everything still buffered (end of stream).
    pub fn flush(&mut self) -> Vec<Snapshot> {
        let mut out = Vec::new();
        let times: Vec<u32> = self.buffers.keys().copied().collect();
        for t in times {
            if self.config.emit_empty {
                if let Some(s) = self.sealed_up_to {
                    for gap in s..t {
                        out.push(Snapshot::new(Timestamp(gap)));
                    }
                }
            }
            out.push(self.buffers.remove(&t).unwrap());
            self.sealed_up_to = Some(t + 1);
        }
        out
    }

    /// Number of buffered (unsealed) snapshots.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }

    /// How many records were dropped for arriving after their snapshot
    /// sealed. Dropping is deterministic: a record is late iff its time is
    /// below the sealed frontier at arrival, regardless of thread timing.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Captures the aligner's full state in durable, canonical form:
    /// buffered snapshots ascend by time, chains by trajectory id, waiting
    /// links by `last_time` — so the checkpoint bytes are a pure function
    /// of the logical state (serialize → restore → serialize is
    /// byte-identical).
    pub fn checkpoint(&self) -> AlignerCheckpoint {
        let buffers: Vec<Snapshot> = self.buffers.values().cloned().collect();
        let mut chains: Vec<ChainCheckpoint> = self
            .chains
            .iter()
            .map(|(&id, chain)| ChainCheckpoint {
                id,
                clarified: chain.clarified,
                waiting: chain.waiting.iter().map(|(&lt, &t)| (lt, t)).collect(),
            })
            .collect();
        chains.sort_by_key(|c| c.id);
        AlignerCheckpoint {
            buffers,
            chains,
            sealed_up_to: self.sealed_up_to,
            max_seen: self.max_seen,
            late_dropped: self.late_dropped,
        }
    }

    /// Rebuilds an aligner from a checkpoint; behaviour on subsequent
    /// records is identical to the aligner the checkpoint was taken from
    /// (including the late-drop counter, which must not reset to zero).
    pub fn from_checkpoint(config: AlignerConfig, ckpt: &AlignerCheckpoint) -> Self {
        let buffers: BTreeMap<u32, Snapshot> =
            ckpt.buffers.iter().map(|s| (s.time.0, s.clone())).collect();
        let chains: HashMap<ObjectId, Chain> = ckpt
            .chains
            .iter()
            .map(|c| {
                (
                    c.id,
                    Chain {
                        clarified: c.clarified,
                        waiting: c.waiting.iter().copied().collect(),
                    },
                )
            })
            .collect();
        TimeAligner {
            config,
            buffers,
            chains,
            sealed_up_to: ckpt.sealed_up_to,
            max_seen: ckpt.max_seen,
            late_dropped: ckpt.late_dropped,
        }
    }

    fn drain_sealable_into(&mut self, out: &mut Vec<Snapshot>) {
        loop {
            let u = match self.sealed_up_to {
                Some(s) => s,
                // Nothing sealed yet: start at the earliest buffered time.
                None => match self.buffers.keys().next() {
                    Some(&t) => t,
                    None => break,
                },
            };
            if !self.can_seal(u) {
                break;
            }
            match self.buffers.remove(&u) {
                Some(snap) => out.push(snap),
                None if self.config.emit_empty => out.push(Snapshot::new(Timestamp(u))),
                None => {}
            }
            self.sealed_up_to = Some(u + 1);
        }
    }

    /// A time `u` can be sealed when it lies strictly in the stream's past
    /// and every known trajectory either is clarified through `u` or has
    /// lagged out.
    fn can_seal(&mut self, u: u32) -> bool {
        if u.saturating_add(self.config.lateness) >= self.max_seen {
            return false;
        }
        let max_lag = self.config.max_lag;
        let max_seen = self.max_seen;
        let mut blocked = false;
        self.chains.retain(|_, chain| {
            let clarified = chain.clarified.unwrap_or(0);
            if clarified >= u {
                return true;
            }
            // The trajectory is behind. Has it lagged out entirely? A chain
            // whose newest *known* report (frontier) is also ancient is
            // departed; a chain whose clarified end is ancient but whose
            // frontier is recent is stuck on a lost link — retire it too,
            // otherwise it would stall the stream forever.
            if clarified.saturating_add(max_lag) < max_seen {
                return false;
            }
            blocked = true;
            true
        });
        !blocked
    }
}

/// [`TimeAligner`] as a pipeline [`Operator`].
pub struct AlignOperator {
    aligner: TimeAligner,
    /// Shared recorder the late-drop counter is mirrored into (the operator
    /// itself is owned by its subtask thread, so drivers observe the count
    /// through this instead).
    metrics: Option<crate::metrics::PipelineMetrics>,
    reported_late: u64,
    /// Sealed-snapshot scratch, reused across records (batch processing
    /// would otherwise allocate a result vector per record).
    scratch: Vec<Snapshot>,
}

impl AlignOperator {
    /// Wraps an aligner for use in a dataflow stage (parallelism must be 1,
    /// since alignment is a global ordering decision).
    pub fn new(config: AlignerConfig) -> Self {
        AlignOperator {
            aligner: TimeAligner::new(config),
            metrics: None,
            reported_late: 0,
            scratch: Vec::new(),
        }
    }

    /// Like [`AlignOperator::new`], additionally mirroring the late-record
    /// counter into a shared [`PipelineMetrics`](crate::PipelineMetrics).
    pub fn with_metrics(config: AlignerConfig, metrics: crate::metrics::PipelineMetrics) -> Self {
        AlignOperator {
            aligner: TimeAligner::new(config),
            metrics: Some(metrics),
            reported_late: 0,
            scratch: Vec::new(),
        }
    }

    fn sync_late_counter(&mut self) {
        if let Some(metrics) = &self.metrics {
            let total = self.aligner.late_dropped();
            if total > self.reported_late {
                metrics.mark_late(total - self.reported_late);
                self.reported_late = total;
            }
        }
    }
}

impl Operator<GpsRecord, Snapshot> for AlignOperator {
    fn process(&mut self, input: GpsRecord, out: &mut Collector<Snapshot>) {
        self.aligner.push_into(input, &mut self.scratch);
        out.emit_all(self.scratch.drain(..));
        self.sync_late_counter();
    }

    fn process_batch(&mut self, batch: Vec<GpsRecord>, out: &mut Collector<Snapshot>) {
        for input in batch {
            self.aligner.push_into(input, &mut self.scratch);
        }
        out.emit_all(self.scratch.drain(..));
        self.sync_late_counter();
    }

    fn finish(&mut self, out: &mut Collector<Snapshot>) {
        out.emit_all(self.aligner.flush());
        self.sync_late_counter();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icpe_types::Point;

    fn rec(id: u32, t: u32, last: Option<u32>) -> GpsRecord {
        GpsRecord::new(
            ObjectId(id),
            Point::new(t as f64, id as f64),
            Timestamp(t),
            last.map(Timestamp),
        )
    }

    fn aligner() -> TimeAligner {
        TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: true,
            lateness: 0,
        })
    }

    #[test]
    fn in_order_single_object_seals_previous_times() {
        let mut a = aligner();
        // Time 0 cannot seal yet: nothing newer witnessed.
        assert!(a.push(rec(1, 0, None)).is_empty());
        let out = a.push(rec(1, 1, Some(0)));
        // Time 0 is now complete (object 1 clarified through 1).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(0));
        assert_eq!(out[0].len(), 1);
    }

    #[test]
    fn paper_example_waits_for_r2_but_not_r4() {
        let mut a = aligner();
        // tr = {r1, r2, r3, r5}; receive r1 then r3 (r3.last_time = 2).
        assert!(a.push(rec(1, 1, None)).is_empty());
        let out = a.push(rec(1, 3, Some(2)));
        // Snapshot 1 seals (r2 cannot change it), but snapshot 2 must wait
        // for the still-missing r2.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(1));

        // r2 arrives: chain connects 1→2→3; snapshot 2 seals.
        let out = a.push(rec(1, 2, Some(1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(2));

        // r5 with last_time 3: no record was reported at time 4, so the
        // system does not wait — snapshot 3 and the empty snapshot 4 seal.
        let out = a.push(rec(1, 5, Some(3)));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].time, Timestamp(3));
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[1].time, Timestamp(4));
        assert!(out[1].is_empty());
    }

    #[test]
    fn two_objects_block_until_both_clarified() {
        let mut a = aligner();
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        let out = a.push(rec(1, 1, Some(0)));
        assert_eq!(out.len(), 1, "time 0 sealable: both clarified ≥ 0");
        assert_eq!(out[0].time, Timestamp(0));
        assert_eq!(out[0].len(), 2);

        let out = a.push(rec(1, 2, Some(1)));
        assert!(out.is_empty(), "time 1 blocked by object 2");

        let out = a.push(rec(2, 1, Some(0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(1));
        assert_eq!(out[0].len(), 2);
    }

    #[test]
    fn out_of_order_across_objects_is_reordered() {
        let mut a = aligner();
        let mut sealed = Vec::new();
        sealed.extend(a.push(rec(2, 1, None)));
        sealed.extend(a.push(rec(1, 0, None)));
        sealed.extend(a.push(rec(1, 1, Some(0))));
        sealed.extend(a.push(rec(2, 2, Some(1))));
        sealed.extend(a.push(rec(1, 2, Some(1))));
        sealed.extend(a.flush());
        let times: Vec<u32> = sealed.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![0, 1, 2], "sealed in ascending order");
        // Snapshot 1 contains both objects despite reversed arrival.
        assert_eq!(sealed[1].len(), 2);
    }

    #[test]
    fn out_of_order_within_object_chains_via_last_time() {
        let mut a = aligner();
        assert!(a.push(rec(1, 0, None)).is_empty());
        // Records at times 2 and 3 arrive before the record at time 1.
        let out = a.push(rec(1, 2, Some(1)));
        // Snapshot 0 seals (the object is clarified through 0 and time 2 was
        // witnessed); snapshots 1 and 2 must wait for the missing link.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, Timestamp(0));
        assert!(a.push(rec(1, 3, Some(2))).is_empty());
        let out = a.push(rec(1, 1, Some(0)));
        // Chain connects 0→1→2→3: snapshots 1 and 2 seal.
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn lagging_object_is_retired_after_max_lag() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 3,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        // Object 1 keeps reporting; object 2 goes silent.
        let mut sealed = Vec::new();
        for t in 1..10 {
            sealed.extend(a.push(rec(1, t, Some(t - 1))));
        }
        assert!(
            sealed.iter().any(|s| s.time.0 >= 4),
            "sealing resumed past the lagged object, sealed: {:?}",
            sealed.iter().map(|s| s.time.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn flush_seals_remaining_buffered_times_with_gaps() {
        let mut a = aligner();
        let mut out = Vec::new();
        out.extend(a.push(rec(1, 2, None)));
        out.extend(a.push(rec(1, 5, Some(2))));
        out.extend(a.flush());
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![2, 3, 4, 5]);
        assert!(out[1].is_empty() && out[2].is_empty());
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn no_empty_snapshots_when_disabled() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: false,
            lateness: 0,
        });
        let mut out = Vec::new();
        out.extend(a.push(rec(1, 2, None)));
        out.extend(a.push(rec(1, 5, Some(2))));
        out.extend(a.flush());
        let times: Vec<u32> = out.iter().map(|s| s.time.0).collect();
        assert_eq!(times, vec![2, 5]);
    }

    #[test]
    fn late_record_for_sealed_snapshot_is_dropped() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        for t in 1..8 {
            a.push(rec(1, t, Some(t - 1)));
        }
        // Object 2's ancient record arrives after time 0 was sealed.
        let out = a.push(rec(2, 0, None));
        assert!(out.is_empty(), "late record must not reopen sealed times");
    }

    #[test]
    fn restart_after_retirement_does_not_stall() {
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        });
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        let mut sealed = Vec::new();
        for t in 1..8 {
            sealed.extend(a.push(rec(1, t, Some(t - 1))));
        }
        // Object 2 comes back with a link into its retired past.
        sealed.extend(a.push(rec(2, 8, Some(0))));
        for t in 8..12 {
            sealed.extend(a.push(rec(1, t + 1, Some(t))));
        }
        let max_sealed = sealed.iter().map(|s| s.time.0).max().unwrap();
        assert!(max_sealed >= 8, "stream stalled at {max_sealed}");
    }

    #[test]
    fn empty_aligner_flush_is_empty() {
        let mut a = aligner();
        assert!(a.flush().is_empty());
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn operator_wrapper_emits_through_collector() {
        // Default config has lateness = 2: nothing seals while the stream is
        // only 2 ticks deep; finish() flushes everything.
        let mut op = AlignOperator::new(AlignerConfig::default());
        let mut c = Collector::new();
        op.process(rec(1, 0, None), &mut c);
        op.process(rec(1, 1, Some(0)), &mut c);
        let first: Vec<Snapshot> = c.drain().collect();
        assert!(first.is_empty());
        op.finish(&mut c);
        let rest: Vec<Snapshot> = c.drain().collect();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].time, Timestamp(0));
        assert_eq!(rest[1].time, Timestamp(1));
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        // Build a mid-stream aligner with buffered snapshots, a waiting
        // link, and a late drop; checkpoint it; feed the same suffix to the
        // original and the restored aligner and compare everything.
        let config = AlignerConfig {
            max_lag: 4,
            emit_empty: true,
            lateness: 1,
        };
        let mut a = TimeAligner::new(config);
        a.push(rec(1, 0, None));
        a.push(rec(2, 0, None));
        for t in 1..6 {
            a.push(rec(1, t, Some(t - 1)));
        }
        // Object 2's ancient record is now late (dropped + counted).
        a.push(rec(2, 1, Some(0)));
        // A waiting link: record at time 7 before its predecessor at 6.
        a.push(rec(1, 7, Some(6)));

        let ckpt = a.checkpoint();
        assert!(ckpt.late_dropped >= 1, "late drop was recorded");
        let mut b = TimeAligner::from_checkpoint(config, &ckpt);
        assert_eq!(b.checkpoint(), ckpt, "checkpoint round-trips exactly");

        let suffix: Vec<GpsRecord> = vec![
            rec(1, 6, Some(5)),
            rec(1, 8, Some(7)),
            rec(1, 9, Some(8)),
            rec(2, 9, None),
        ];
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for r in suffix {
            out_a.extend(a.push(r));
            out_b.extend(b.push(r));
        }
        out_a.extend(a.flush());
        out_b.extend(b.flush());
        assert_eq!(out_a, out_b, "restored aligner diverged");
        assert_eq!(a.late_dropped(), b.late_dropped());
    }

    #[test]
    fn restored_aligner_keeps_counting_late_records_from_its_base() {
        // The restore path (core's align stage) must rehydrate the counter
        // rather than reset observability to zero.
        let config = AlignerConfig {
            max_lag: 2,
            emit_empty: true,
            lateness: 0,
        };
        let mut a = TimeAligner::new(config);
        a.push(rec(1, 0, None));
        for t in 1..8 {
            a.push(rec(1, t, Some(t - 1)));
        }
        a.push(rec(2, 0, None)); // late → dropped
        let ckpt = a.checkpoint();
        assert_eq!(ckpt.late_dropped, 1);

        let mut restored = TimeAligner::from_checkpoint(config, &ckpt);
        restored.push(rec(2, 1, Some(0))); // another late record
        assert_eq!(restored.late_dropped(), 2, "one rehydrated + one new");
    }

    #[test]
    fn lateness_protects_late_first_records() {
        // Object 2's very first record (no last-time link) arrives one tick
        // late; with lateness ≥ 1 it must not be dropped.
        let mut a = TimeAligner::new(AlignerConfig {
            max_lag: 100,
            emit_empty: true,
            lateness: 1,
        });
        let mut sealed = Vec::new();
        sealed.extend(a.push(rec(1, 0, None)));
        sealed.extend(a.push(rec(1, 1, Some(0))));
        sealed.extend(a.push(rec(2, 0, None))); // late first record
        sealed.extend(a.push(rec(1, 2, Some(1))));
        sealed.extend(a.flush());
        let s0 = sealed.iter().find(|s| s.time == Timestamp(0)).unwrap();
        assert_eq!(s0.len(), 2, "late first record was dropped");
    }
}
