//! The dataflow builder: sources, parallel stages, sinks.
//!
//! Stages are spawned lazily: declaring stage *i+1* fixes the routing of
//! stage *i*'s output, at which point stage *i*'s subtask threads start.
//! End-of-stream is signalled by channel disconnection — when every upstream
//! sender is dropped, a subtask drains its channel, calls
//! [`Operator::finish`], and drops its own senders, cascading shutdown
//! through the pipeline.
//!
//! ## Vectorized micro-batches
//!
//! Inter-stage channels carry `Vec<T>` batches; each subtask's output
//! [`Router`] buffers records per destination and ships whole buffers (see
//! the `exchange` module docs for the flush rules). Operators receive whole
//! batches through [`Operator::process_batch`] — by default that unrolls to
//! the per-record [`Operator::process`], so operators are batching-agnostic
//! unless they override it to amortize per-batch work. A subtask about to
//! block on an empty input channel first flushes its output buffers, so
//! batching raises throughput under load without adding latency when the
//! stream is idle.

use crate::exchange::{Exchange, Router, SendFault};
use crate::fault::{panic_cause, FaultKind, FaultPlan, StageFailure};
use crate::obs::{ExchangeObs, MetricRegistry, StageObs};
use crate::operator::{Collector, Operator};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Runtime knobs shared by every stage of a dataflow.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Capacity of each inter-subtask channel, **in batches**. Bounded
    /// channels give the pipelined backpressure Flink's network stack
    /// provides.
    pub channel_capacity: usize,
    /// Records per destination batch buffer before a size flush (see the
    /// `exchange` module docs). `1` restores record-at-a-time sends.
    pub batch_size: usize,
    /// Deterministic fault injection (chaos testing): consulted by every
    /// worker before each batch and by every exchange hop before each
    /// send. `None` (the default) is branch-per-batch free of any fault
    /// bookkeeping.
    pub fault: Option<Arc<FaultPlan>>,
}

/// The default records-per-batch of every exchange hop (and of the serve
/// tier's ingest edge). Chosen from the `bench_throughput` sweep: well past
/// the knee where channel synchronization stops dominating, small enough
/// that per-channel buffering stays negligible.
pub const DEFAULT_BATCH_SIZE: usize = 64;

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            channel_capacity: 1024,
            batch_size: DEFAULT_BATCH_SIZE,
            fault: None,
        }
    }
}

/// Which slot of a [`Stream::reduce_tree`] reduction an operator occupies:
/// the level (0 = first combiner level above the producing stage), the
/// subtask index within that level, and how many upstream producers feed
/// the slot — the count punctuation/barrier alignment at the slot waits
/// for, and the index the slot must stamp onto its own outputs so the
/// next level can route them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSlot {
    /// Combiner level, counted from the producing stage upward.
    pub level: usize,
    /// Subtask index within the level (`0..⌈prev_width/fanin⌉`).
    pub subtask: usize,
    /// Upstream subtasks routed to this slot (≤ fanin; the last slot of a
    /// level may receive fewer).
    pub inputs: usize,
}

/// A subtask of the most recently declared stage that has not started yet:
/// given its output router, it spawns its thread.
type PendingSubtask<T> = Box<dyn FnOnce(Router<T>) -> JoinHandle<()> + Send>;

/// A partially built dataflow whose last stage produces records of type `T`.
pub struct Stream<T> {
    pending: Vec<PendingSubtask<T>>,
    handles: Vec<JoinHandle<()>>,
    config: RuntimeConfig,
    /// When set (see [`Stream::instrument`]), every stage declared from
    /// here on records per-batch processing time and records/batches
    /// in/out, and every exchange hop records queue depth plus
    /// blocked-send time, into this registry.
    obs: Option<MetricRegistry>,
    /// When set (see [`Stream::supervise`]), a panicking subtask declared
    /// from here on is *isolated*: the unwind is caught at the thread
    /// boundary, a typed [`StageFailure`] is reported on this channel, and
    /// the worker exits cleanly (its dropped channels cascade teardown
    /// through the rest of the generation). Without a supervisor, panics
    /// propagate to the driver via `join` exactly as before.
    supervisor: Option<Sender<StageFailure>>,
}

/// Runs `body` under the stream's failure policy: supervised workers catch
/// the unwind and report a typed failure; unsupervised workers let it
/// propagate to the thread boundary (and from there to the driver's join).
fn run_worker(
    supervisor: Option<Sender<StageFailure>>,
    stage: &str,
    subtask: usize,
    body: impl FnOnce(),
) {
    match supervisor {
        None => body(),
        Some(tx) => {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                // Receiver gone (supervisor already tearing down): the
                // worker still exits cleanly — that is the point.
                let _ = tx.send(StageFailure {
                    stage: stage.to_string(),
                    subtask,
                    cause: panic_cause(payload.as_ref()),
                });
            }
        }
    }
}

/// Applies a worker-scoped fault (consulted once per input batch).
fn apply_worker_fault(plan: &FaultPlan, stage: &str, subtask: usize, batch: u64) {
    match plan.worker_fault(stage, subtask, batch) {
        Some(FaultKind::Panic) => {
            panic!("injected fault: panic at stage `{stage}` subtask {subtask} batch {batch}")
        }
        Some(FaultKind::Stall(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        _ => {}
    }
}

impl<T: Send + Clone + 'static> Stream<T> {
    /// Declares a source stage with `parallelism` subtasks; subtask `i`
    /// iterates the iterator produced by `make(i)`.
    pub fn source<I, F>(config: RuntimeConfig, parallelism: usize, make: F) -> Stream<T>
    where
        I: Iterator<Item = T> + Send + 'static,
        F: Fn(usize) -> I,
    {
        assert!(parallelism >= 1, "source parallelism must be ≥ 1");
        let mut pending: Vec<PendingSubtask<T>> = Vec::with_capacity(parallelism);
        for i in 0..parallelism {
            let iter = make(i);
            pending.push(Box::new(move |mut router: Router<T>| {
                std::thread::Builder::new()
                    .name(format!("source-{i}"))
                    .spawn(move || {
                        for item in iter {
                            if router.route(item).is_err() {
                                return; // downstream gone; stop producing
                            }
                        }
                        let _ = router.flush();
                    })
                    .expect("failed to spawn source thread")
            }));
        }
        Stream {
            pending,
            handles: Vec::new(),
            config,
            obs: None,
            supervisor: None,
        }
    }

    /// Declares a push-based source stage fed from an external channel: the
    /// dataflow's input arrives through the returned [`Sender`]-side of
    /// `receiver`'s channel rather than from a pre-built iterator. This is
    /// the live-ingestion hook: a network front-end (or any producer thread)
    /// pushes records while the dataflow runs, with the channel's bound
    /// providing end-to-end backpressure. The stream ends when every sender
    /// for `receiver`'s channel has been dropped.
    ///
    /// When the ingest channel runs dry the source flushes its partial
    /// output batches before blocking, so a quiet producer's records (and
    /// checkpoint barriers) never sit in a batch buffer waiting for
    /// traffic.
    pub fn from_channel(config: RuntimeConfig, receiver: Receiver<T>) -> Stream<T> {
        let pending: Vec<PendingSubtask<T>> = vec![Box::new(move |mut router: Router<T>| {
            std::thread::Builder::new()
                .name("source-channel".into())
                .spawn(move || {
                    loop {
                        let item = match receiver.try_recv() {
                            Ok(item) => item,
                            Err(TryRecvError::Empty) => {
                                if router.flush().is_err() {
                                    return;
                                }
                                match receiver.recv() {
                                    Ok(item) => item,
                                    Err(_) => break, // all producers gone
                                }
                            }
                            Err(TryRecvError::Disconnected) => break,
                        };
                        if router.route(item).is_err() {
                            return; // downstream gone; stop forwarding
                        }
                    }
                    let _ = router.flush();
                })
                .expect("failed to spawn channel-source thread")
        })];
        Stream {
            pending,
            handles: Vec::new(),
            config,
            obs: None,
            supervisor: None,
        }
    }

    /// Attaches a supervisor: every stage declared *after* this call runs
    /// its subtasks behind a `catch_unwind` boundary — a panic becomes a
    /// typed [`StageFailure`] on `failures` and a clean thread exit (whose
    /// dropped channels cascade teardown through the generation) instead
    /// of an unwind that [`Stream::for_each`]/[`StreamHandle::join`] would
    /// re-raise on the driver. Source stages carry no operator code and
    /// stay unsupervised.
    pub fn supervise(mut self, failures: Sender<StageFailure>) -> Stream<T> {
        self.supervisor = Some(failures);
        self
    }

    /// Attaches a metric registry: every stage declared *after* this call
    /// is instrumented (per-batch processing-time histogram, records and
    /// batches in/out per subtask) and so is every exchange hop into it
    /// (per-destination queue depth and blocked-send time). The hot path
    /// stays sampling-free relaxed atomics; an uninstrumented dataflow
    /// pays one branch per batch.
    pub fn instrument(mut self, registry: &MetricRegistry) -> Stream<T> {
        self.obs = Some(registry.clone());
        self
    }

    /// Declares a processing stage: `parallelism` subtasks, each running the
    /// operator produced by `factory(subtask_index)`, fed from the previous
    /// stage through `exchange` routing.
    pub fn apply<O, Op, F>(
        mut self,
        name: &str,
        parallelism: usize,
        exchange: Exchange<T>,
        factory: F,
    ) -> Stream<O>
    where
        O: Send + Clone + 'static,
        Op: Operator<T, O> + 'static,
        F: Fn(usize) -> Op,
    {
        assert!(parallelism >= 1, "stage parallelism must be ≥ 1");
        // Channels feeding this new stage (batch-granular).
        let (senders, receivers): (Vec<_>, Vec<Receiver<Vec<T>>>) = (0..parallelism)
            .map(|_| bounded(self.config.channel_capacity))
            .unzip();
        // The hop into this stage is labelled with the *receiving* stage
        // name; the counters are shared across upstream subtask clones so
        // they aggregate per destination.
        let hop_obs = self
            .obs
            .as_ref()
            .map(|reg| ExchangeObs::new(reg, name, parallelism));
        let hop_fault = self
            .config
            .fault
            .as_ref()
            .map(|plan| SendFault::new(Arc::clone(plan), name));
        let template =
            Router::new(senders, exchange, self.config.batch_size, hop_obs).with_fault(hop_fault);

        // Fix the routing of the previous stage → spawn its subtasks now.
        let mut handles = std::mem::take(&mut self.handles);
        for (i, start) in self.pending.drain(..).enumerate() {
            handles.push(start(template.clone_for_subtask(i)));
        }
        drop(template); // subtasks hold their own sender clones

        // The new stage's subtasks start once *their* output routing is known.
        let mut pending: Vec<PendingSubtask<O>> = Vec::with_capacity(parallelism);
        for (i, rx) in receivers.into_iter().enumerate() {
            let mut op = factory(i);
            let thread_name = format!("{name}-{i}");
            let stage = name.to_string();
            let stage_obs = self.obs.as_ref().map(|reg| StageObs::new(reg, name, i));
            let supervisor = self.supervisor.clone();
            let fault = self.config.fault.clone();
            pending.push(Box::new(move |mut router: Router<O>| {
                std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || {
                        run_worker(supervisor, &stage, i, || {
                            let mut collector = Collector::new();
                            let mut batch_no = 0u64;
                            loop {
                                let batch = match rx.try_recv() {
                                    Ok(batch) => batch,
                                    Err(TryRecvError::Empty) => {
                                        // About to wait: ship partial output
                                        // batches so downstream keeps working.
                                        if router.flush().is_err() {
                                            return;
                                        }
                                        match rx.recv() {
                                            Ok(batch) => batch,
                                            Err(_) => break, // upstream done
                                        }
                                    }
                                    Err(TryRecvError::Disconnected) => break,
                                };
                                if let Some(plan) = &fault {
                                    apply_worker_fault(plan, &stage, i, batch_no);
                                }
                                batch_no += 1;
                                let batch_len = batch.len();
                                let started = stage_obs.as_ref().map(|_| Instant::now());
                                op.process_batch(batch, &mut collector);
                                // Processing time only: routing (and any
                                // backpressure blocking) is the exchange hop's
                                // measurement, taken separately.
                                let elapsed = started.map(|t| t.elapsed());
                                let mut emitted = 0u64;
                                for out in collector.drain() {
                                    emitted += 1;
                                    if router.route(out).is_err() {
                                        return;
                                    }
                                }
                                if let (Some(obs), Some(elapsed)) = (&stage_obs, elapsed) {
                                    obs.batch(batch_len, emitted, elapsed);
                                }
                            }
                            op.finish(&mut collector);
                            for out in collector.drain() {
                                if router.route(out).is_err() {
                                    return;
                                }
                            }
                            let _ = router.flush();
                        });
                    })
                    .expect("failed to spawn stage thread")
            }));
        }
        Stream {
            pending,
            handles,
            config: self.config,
            obs: self.obs,
            supervisor: self.supervisor,
        }
    }

    /// Declares a **single-subtask** stage from an operator *value*.
    ///
    /// The typed alternative to `apply(name, 1, exchange, factory)` for
    /// stages that are parallelism-1 by design (aligners, centralized
    /// collectors, tree finalizers): the operator moves straight into the
    /// one subtask, so there is no factory closure to misconfigure and no
    /// stringly `expect("… has parallelism 1")` cell dance — a stage that
    /// must not be replicated *cannot* be replicated, by construction.
    pub fn single<O, Op>(self, name: &str, exchange: Exchange<T>, op: Op) -> Stream<O>
    where
        O: Send + Clone + 'static,
        Op: Operator<T, O> + 'static,
    {
        let cell = Mutex::new(Some(op));
        self.apply(name, 1, exchange, move |_| {
            cell.lock()
                .expect("single-stage operator cell poisoned")
                .take()
                .expect("single() spawns exactly one subtask")
        })
    }

    /// Declares an **N → 1 tree-aggregation reduction** over the previous
    /// stage's `width` subtasks: interior *combiner* levels of at most
    /// `fanin` inputs each, then one *finalizer* subtask producing the
    /// reduced output stream.
    ///
    /// ```text
    /// width partials → ⌈width/fanin⌉ combiners → … → 1 finalizer
    /// ```
    ///
    /// Records are routed by their **producer index**, extracted by
    /// `from`: the producers of the first level are the upstream subtasks
    /// (indices `0..width`), and every combiner must stamp its own
    /// [`TreeSlot::subtask`] index onto the records it emits so the next
    /// level can route them. Each slot is told how many inputs feed it
    /// (`TreeSlot::inputs`), which is what punctuation/barrier alignment
    /// at that slot must count to.
    ///
    /// Ordering guarantee: everything one producer emits flows to exactly
    /// one slot of the next level over one FIFO channel, so per-producer
    /// order is preserved along every root-ward path — aligned punctuation
    /// (each slot forwarding only after all `inputs` copies arrived) stays
    /// aligned at every level of the tree.
    ///
    /// With `width ≤ fanin` (including `width == 1`) there are no interior
    /// levels and the finalizer performs the whole merge — `fanin >= N`
    /// degrades to the flat N → 1 funnel this combinator replaces. `fanin`
    /// is clamped to ≥ 2.
    pub fn reduce_tree<O, C, Fin, FromF, CombF, FinF>(
        self,
        name: &str,
        width: usize,
        fanin: usize,
        from: FromF,
        combiner: CombF,
        finalizer: FinF,
    ) -> Stream<O>
    where
        O: Send + Clone + 'static,
        C: Operator<T, T> + 'static,
        Fin: Operator<T, O> + 'static,
        FromF: Fn(&T) -> usize + Send + Sync + Clone + 'static,
        CombF: Fn(TreeSlot) -> C,
        FinF: FnOnce(usize) -> Fin,
    {
        let fanin = fanin.max(2);
        let mut width = width.max(1);
        let mut stream = self;
        let mut level = 0usize;
        while width > fanin {
            let next = width.div_ceil(fanin);
            let prev_width = width;
            let f = from.clone();
            stream = stream.apply(
                &format!("{name}-l{level}"),
                next,
                Exchange::key_by(move |t: &T| (f(t) / fanin) as u64),
                |i| {
                    combiner(TreeSlot {
                        level,
                        subtask: i,
                        inputs: fanin.min(prev_width - i * fanin),
                    })
                },
            );
            width = next;
            level += 1;
        }
        stream.single(
            &format!("{name}-final"),
            Exchange::Rebalance,
            finalizer(width),
        )
    }

    /// Terminal: drains the dataflow on the calling thread, invoking `sink`
    /// for every record of the final stage, then joins all subtask threads.
    ///
    /// Panics if any subtask panicked.
    pub fn for_each(mut self, mut sink: impl FnMut(T)) {
        let (sender, receiver) = bounded::<Vec<T>>(self.config.channel_capacity);
        let hop_obs = self
            .obs
            .as_ref()
            .map(|reg| ExchangeObs::new(reg, "sink", 1));
        let template = Router::new(
            vec![sender],
            Exchange::Rebalance,
            self.config.batch_size,
            hop_obs,
        );
        let mut handles = std::mem::take(&mut self.handles);
        for (i, start) in self.pending.drain(..).enumerate() {
            handles.push(start(template.clone_for_subtask(i)));
        }
        drop(template);
        for batch in receiver.iter() {
            for record in batch {
                sink(record);
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Terminal: finalizes the dataflow and hands back a [`Receiver`] of the
    /// final stage's output batches plus a [`StreamHandle`] for joining the
    /// subtask threads. The pull-based dual of [`Stream::from_channel`]: a
    /// consumer (e.g. a network fan-out) drains results at its own pace, and
    /// **dropping the receiver early tears the whole dataflow down
    /// cleanly** — every upstream subtask observes the disconnect on its
    /// next send and exits without panicking.
    pub fn into_receiver(mut self) -> (Receiver<Vec<T>>, StreamHandle) {
        let (sender, receiver) = bounded::<Vec<T>>(self.config.channel_capacity);
        let hop_obs = self
            .obs
            .as_ref()
            .map(|reg| ExchangeObs::new(reg, "sink", 1));
        let template = Router::new(
            vec![sender],
            Exchange::Rebalance,
            self.config.batch_size,
            hop_obs,
        );
        let mut handles = std::mem::take(&mut self.handles);
        for (i, start) in self.pending.drain(..).enumerate() {
            handles.push(start(template.clone_for_subtask(i)));
        }
        drop(template);
        (receiver, StreamHandle { handles })
    }

    /// Terminal: collects the final stage's output into a vector
    /// (arrival order).
    pub fn collect_vec(self) -> Vec<T> {
        let mut out = Vec::new();
        self.for_each(|r| out.push(r));
        out
    }

    /// Terminal: runs the dataflow to completion, discarding output.
    pub fn run(self) {
        self.for_each(|_| {});
    }
}

/// Join handle for a dataflow finalized with [`Stream::into_receiver`].
pub struct StreamHandle {
    handles: Vec<JoinHandle<()>>,
}

impl StreamHandle {
    /// Waits for every subtask thread to exit. Panics if any subtask
    /// panicked (propagating the payload), mirroring [`Stream::for_each`].
    pub fn join(self) {
        for h in self.handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// True once every subtask thread has exited (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.handles.iter().all(JoinHandle::is_finished)
    }
}

/// Re-exported channel constructor so dataflow drivers can build the
/// ingestion channel for [`Stream::from_channel`] without depending on the
/// channel crate directly.
pub fn ingest_channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    bounded(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{flat_map_fn, map_fn};

    fn cfg() -> RuntimeConfig {
        RuntimeConfig {
            channel_capacity: 16,
            batch_size: 4,
            fault: None,
        }
    }

    #[test]
    fn source_to_sink_round_trip() {
        let out = Stream::source(cfg(), 1, |_| 0..100u64).collect_vec();
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Single source, single sink channel → order preserved.
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_source_produces_all_partitions() {
        let out = Stream::source(cfg(), 4, |i| {
            let base = i as u64 * 100;
            base..base + 100
        })
        .collect_vec();
        assert_eq!(out.len(), 400);
        let mut sorted = out;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn map_stage_transforms_in_parallel() {
        let out = Stream::source(cfg(), 2, |i| (0..50u64).map(move |x| x + i as u64 * 50))
            .apply("double", 3, Exchange::Rebalance, |_| map_fn(|x: u64| x * 2))
            .collect_vec();
        let mut sorted = out;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn key_by_keeps_keys_on_one_subtask() {
        // Tag each record with the subtask that processed it; verify each key
        // lands on exactly one subtask.
        let out = Stream::source(cfg(), 2, |i| (0..200u64).map(move |x| x + i as u64 * 200))
            .apply("tag", 4, Exchange::key_by(|x: &u64| x % 10), |subtask| {
                map_fn(move |x: u64| (x % 10, subtask))
            })
            .collect_vec();
        assert_eq!(out.len(), 400);
        let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (key, subtask) in out {
            let prev = owner.insert(key, subtask);
            if let Some(p) = prev {
                assert_eq!(p, subtask, "key {key} visited two subtasks");
            }
        }
    }

    #[test]
    fn per_key_fifo_order_is_preserved_through_key_by() {
        // One source subtask, keyed exchange: records of the same key must
        // arrive in emission order at the (single) owning subtask.
        let out = Stream::source(cfg(), 1, |_| (0..300u64).map(|x| (x % 3, x)))
            .apply(
                "observe",
                3,
                Exchange::key_by(|(k, _): &(u64, u64)| *k),
                |_| map_fn(|rec: (u64, u64)| rec),
            )
            .collect_vec();
        let mut last_seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (k, v) in out {
            if let Some(prev) = last_seen.insert(k, v) {
                assert!(v > prev, "key {k}: {v} arrived after {prev}");
            }
        }
    }

    #[test]
    fn flat_map_and_stateful_finish() {
        struct Count(u64);
        impl Operator<u64, u64> for Count {
            fn process(&mut self, _input: u64, _out: &mut Collector<u64>) {
                self.0 += 1;
            }
            fn finish(&mut self, out: &mut Collector<u64>) {
                out.emit(self.0);
            }
        }
        let out = Stream::source(cfg(), 1, |_| 0..100u64)
            .apply("expand", 2, Exchange::Rebalance, |_| {
                flat_map_fn(|x: u64| vec![x, x])
            })
            .apply("count", 2, Exchange::Rebalance, |_| Count(0))
            .collect_vec();
        // Two counters, together they saw 200 records.
        assert_eq!(out.iter().sum::<u64>(), 200);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn broadcast_reaches_every_subtask() {
        struct Count(u64);
        impl Operator<u64, u64> for Count {
            fn process(&mut self, _input: u64, _out: &mut Collector<u64>) {
                self.0 += 1;
            }
            fn finish(&mut self, out: &mut Collector<u64>) {
                out.emit(self.0);
            }
        }
        let out = Stream::source(cfg(), 1, |_| 0..50u64)
            .apply("count", 3, Exchange::Broadcast, |_| Count(0))
            .collect_vec();
        assert_eq!(out, vec![50, 50, 50]);
    }

    #[test]
    fn batch_size_does_not_change_stage_results() {
        for batch_size in [1usize, 3, 7, 64, 1024] {
            let config = RuntimeConfig {
                channel_capacity: 8,
                batch_size,
                fault: None,
            };
            let out = Stream::source(config, 2, |i| (0..100u64).map(move |x| x * 2 + i as u64))
                .apply("inc", 3, Exchange::Rebalance, |_| map_fn(|x: u64| x + 1))
                .apply("key", 2, Exchange::key_by(|x: &u64| *x), |_| {
                    map_fn(|x: u64| x)
                })
                .collect_vec();
            let mut sorted = out;
            sorted.sort_unstable();
            let mut want: Vec<u64> = (0..200u64).map(|x| x + 1).collect();
            want.sort_unstable();
            assert_eq!(sorted, want, "batch_size {batch_size}");
        }
    }

    #[test]
    fn operators_can_override_process_batch() {
        // An operator that emits one record per *batch* proves the runtime
        // actually delivers multi-record batches under sustained input.
        struct BatchSizes;
        impl Operator<u64, usize> for BatchSizes {
            fn process(&mut self, _input: u64, _out: &mut Collector<usize>) {
                unreachable!("process_batch overridden");
            }
            fn process_batch(&mut self, batch: Vec<u64>, out: &mut Collector<usize>) {
                out.emit(batch.len());
            }
        }
        let config = RuntimeConfig {
            channel_capacity: 16,
            batch_size: 8,
            fault: None,
        };
        let sizes = Stream::source(config, 1, |_| 0..64u64)
            .apply("sizes", 1, Exchange::Rebalance, |_| BatchSizes)
            .collect_vec();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        assert!(
            sizes.iter().any(|&s| s > 1),
            "a saturated source must produce multi-record batches: {sizes:?}"
        );
    }

    #[test]
    fn backpressure_does_not_deadlock() {
        // Tiny channels, fast producer, slow consumer.
        let config = RuntimeConfig {
            channel_capacity: 2,
            batch_size: 4,
            fault: None,
        };
        let out = Stream::source(config, 1, |_| 0..2000u64)
            .apply("slow", 1, Exchange::Rebalance, |_| {
                map_fn(|x: u64| {
                    if x.is_multiple_of(512) {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    x
                })
            })
            .collect_vec();
        assert_eq!(out.len(), 2000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn subtask_panic_propagates_to_driver() {
        Stream::source(cfg(), 1, |_| 0..10u64)
            .apply("bomb", 1, Exchange::Rebalance, |_| {
                map_fn(|x: u64| {
                    if x == 5 {
                        panic!("boom");
                    }
                    x
                })
            })
            .run();
    }

    #[test]
    fn supervised_panic_is_reported_not_propagated() {
        let (failures, reports) = bounded(16);
        Stream::source(cfg(), 1, |_| 0..10u64)
            .supervise(failures)
            .apply("bomb", 2, Exchange::Rebalance, |_| {
                map_fn(|x: u64| {
                    if x == 5 {
                        panic!("boom");
                    }
                    x
                })
            })
            .run();
        let failure = reports.try_recv().expect("failure report");
        assert_eq!(failure.stage, "bomb");
        assert!(failure.subtask < 2);
        assert!(failure.cause.contains("boom"), "cause: {}", failure.cause);
    }

    #[test]
    fn injected_panic_fires_at_the_keyed_batch() {
        let plan = FaultPlan::new()
            .point("work", 0, 1, crate::fault::FaultKind::Panic)
            .build();
        let config = RuntimeConfig {
            fault: Some(Arc::clone(&plan)),
            ..cfg()
        };
        let (failures, reports) = bounded(16);
        Stream::source(config, 1, |_| 0..100u64)
            .supervise(failures)
            .apply("work", 1, Exchange::Rebalance, |_| map_fn(|x: u64| x))
            .run();
        let failure = reports.try_recv().expect("failure report");
        assert_eq!(failure.stage, "work");
        assert!(failure.cause.contains("injected fault"));
        assert!(plan.exhausted());
    }

    #[test]
    fn single_stage_moves_the_operator_in() {
        struct Sum(u64);
        impl Operator<u64, u64> for Sum {
            fn process(&mut self, input: u64, _out: &mut Collector<u64>) {
                self.0 += input;
            }
            fn finish(&mut self, out: &mut Collector<u64>) {
                out.emit(self.0);
            }
        }
        let out = Stream::source(cfg(), 4, |i| {
            let base = i as u64 * 10;
            base..base + 10
        })
        .single("sum", Exchange::Rebalance, Sum(0))
        .collect_vec();
        assert_eq!(out, vec![(0..40u64).sum::<u64>()], "exactly one subtask");
    }

    /// A reduce_tree slot that sums `(from, value)` partials: combiners
    /// re-stamp their own index, the finalizer emits the grand total once
    /// its last input closes.
    struct TreeSum {
        me: usize,
        acc: u64,
    }
    impl Operator<(usize, u64), (usize, u64)> for TreeSum {
        fn process(&mut self, (_, v): (usize, u64), _out: &mut Collector<(usize, u64)>) {
            self.acc += v;
        }
        fn finish(&mut self, out: &mut Collector<(usize, u64)>) {
            out.emit((self.me, self.acc));
        }
    }

    #[test]
    fn reduce_tree_sums_across_levels() {
        for (width, fanin) in [
            (1usize, 2usize),
            (2, 2),
            (5, 2),
            (8, 2),
            (8, 3),
            (8, 8),
            (9, 4),
        ] {
            let out = Stream::source(cfg(), width, |i| {
                let base = i as u64 * 100;
                std::iter::once((i, (base..base + 100).sum::<u64>()))
            })
            .reduce_tree(
                "tree",
                width,
                fanin,
                |t: &(usize, u64)| t.0,
                |slot: TreeSlot| TreeSum {
                    me: slot.subtask,
                    acc: 0,
                },
                |_inputs| TreeSum { me: 0, acc: 0 },
            )
            .collect_vec();
            let want: u64 = (0..width as u64 * 100).sum();
            assert_eq!(
                out.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
                vec![want],
                "width {width} fanin {fanin}"
            );
        }
    }

    #[test]
    fn reduce_tree_slots_partition_the_producers() {
        // Record which slot each producer's records reach at level 0 of an
        // 8-wide fanin-3 tree: slots must own disjoint contiguous groups
        // of sizes 3, 3, 2.
        let seen: std::sync::Arc<Mutex<Vec<(TreeSlot, usize)>>> =
            std::sync::Arc::new(Mutex::new(Vec::new()));
        struct Observe {
            slot: TreeSlot,
            seen: std::sync::Arc<Mutex<Vec<(TreeSlot, usize)>>>,
        }
        impl Operator<(usize, u64), (usize, u64)> for Observe {
            fn process(&mut self, (from, v): (usize, u64), out: &mut Collector<(usize, u64)>) {
                self.seen.lock().unwrap().push((self.slot, from));
                out.emit((self.slot.subtask, v));
            }
        }
        struct Drain;
        impl Operator<(usize, u64), u64> for Drain {
            fn process(&mut self, (_, v): (usize, u64), out: &mut Collector<u64>) {
                out.emit(v);
            }
        }
        let sink = std::sync::Arc::clone(&seen);
        let out = Stream::source(cfg(), 8, |i| std::iter::once((i, 1u64)))
            .reduce_tree(
                "observe",
                8,
                3,
                |t: &(usize, u64)| t.0,
                move |slot: TreeSlot| Observe {
                    slot,
                    seen: std::sync::Arc::clone(&sink),
                },
                |inputs| {
                    assert_eq!(inputs, 3, "⌈8/3⌉ = 3 combiners feed the finalizer");
                    Drain
                },
            )
            .collect_vec();
        assert_eq!(out.len(), 8);
        for (slot, from) in seen.lock().unwrap().iter() {
            assert_eq!(slot.level, 0);
            assert_eq!(from / 3, slot.subtask, "producer {from} in slot {slot:?}");
            assert_eq!(slot.inputs, 3usize.min(8 - slot.subtask * 3));
        }
    }

    #[test]
    fn instrumented_stream_records_stage_and_exchange_metrics() {
        let reg = MetricRegistry::new();
        Stream::source(cfg(), 1, |_| 0..100u64)
            .instrument(&reg)
            .apply("double", 2, Exchange::Rebalance, |_| map_fn(|x: u64| x * 2))
            .run();
        let sum =
            |metric: &str| -> u64 { (0..2).map(|i| reg.counter("double", i, metric).get()).sum() };
        assert_eq!(sum("stage_records_in_total"), 100);
        assert_eq!(sum("stage_records_out_total"), 100);
        let batches = sum("stage_batches_in_total");
        assert!(batches >= 2, "each subtask saw at least one batch");
        let samples: u64 = (0..2)
            .map(|i| {
                reg.histogram("double", i, "stage_batch_seconds")
                    .snapshot()
                    .count()
            })
            .sum();
        assert_eq!(samples, batches, "one latency sample per batch");
        let text = reg.render_prometheus();
        assert!(
            text.contains("icpe_exchange_queue_depth{stage=\"double\",subtask=\"0\"}"),
            "exchange hop into the stage is instrumented: {text}"
        );
        assert!(text.contains("stage=\"sink\""), "sink hop instrumented");
        let stages: Vec<String> = reg.stage_seconds().into_iter().map(|(s, _)| s).collect();
        assert_eq!(stages, vec!["double"]);
    }

    #[test]
    fn uninstrumented_stream_registers_nothing() {
        let reg = MetricRegistry::new();
        // No .instrument() call: the registry stays empty.
        Stream::source(cfg(), 1, |_| 0..10u64)
            .apply("noop", 1, Exchange::Rebalance, |_| map_fn(|x: u64| x))
            .run();
        assert_eq!(reg.render_prometheus(), "");
    }

    #[test]
    fn three_stage_pipeline_end_to_end() {
        let out = Stream::source(cfg(), 2, |i| (0..100u64).map(move |x| x * 2 + i as u64))
            .apply("inc", 3, Exchange::Rebalance, |_| map_fn(|x: u64| x + 1))
            .apply("key-square", 2, Exchange::key_by(|x: &u64| *x), |_| {
                map_fn(|x: u64| x * x)
            })
            .collect_vec();
        assert_eq!(out.len(), 200);
        let sum: u64 = out.iter().sum();
        let want: u64 = (0..200u64).map(|x| (x + 1) * (x + 1)).sum();
        assert_eq!(sum, want);
    }
}
