//! Unified per-stage observability: metric registry, log-bucketed
//! histograms, and a bounded structured event journal.
//!
//! The paper's evaluation (§7) reports only end-to-end latency and
//! throughput; production streaming detectors need *per-stage* visibility
//! to locate hotspots before rebalancing them. This module provides one
//! registry that absorbs the previously scattered gauges:
//!
//! * [`MetricRegistry`] — a cloneable handle to atomic **counters**,
//!   **gauges**, and **histograms** keyed by `stage/subtask/name`.
//!   Registration takes a lock once (at stage build time); the hot path is
//!   sampling-free relaxed atomics.
//! * [`Histogram`] — HDR-style log-linear buckets over nanoseconds (4
//!   sub-buckets per power of two, ≤ 25 % quantile error), with exact sum,
//!   count, and max. Reporting is O(buckets), never O(samples).
//! * [`StageObs`] / [`ExchangeObs`] — the two instrumentation points the
//!   runtime threads through every dataflow: per-batch processing time and
//!   records/batches in/out around `Operator::process_batch`, and
//!   per-destination queue depth plus blocked-send (backpressure) time at
//!   each exchange hop.
//! * [`ObsEvent`] — a bounded ring journal of typed events (window sealed,
//!   barrier passed, cell migrated, subscriber shed, late batch dropped)
//!   with monotonic sequence numbers, drained by the serve tier's `EVENTS`
//!   endpoint.
//!
//! Cumulative counters survive checkpoint/restore: the driver captures
//! [`MetricRegistry::counter_checkpoint`] into the `PipelineCheckpoint`
//! and a restored registry is re-credited via [`MetricRegistry::restore`]
//! (summed across subtasks, credited to subtask 0 — the same pattern the
//! engine uses for `skipped_partitions`).

use icpe_types::{ObsCheckpoint, ObsCounterEntry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: 2 bits → 4 log-linear sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Smallest resolved magnitude: 2^10 ns ≈ 1 µs (everything below lands in
/// the first bucket).
const MIN_EXP: u32 = 10;
/// Largest resolved magnitude: 2^35 ns ≈ 34 s (everything above is counted
/// in the overflow bucket, reported only under `+Inf`).
const MAX_EXP: u32 = 35;
/// Fine buckets between the two magnitudes.
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;

/// Events retained by the journal ring buffer. Sized so an `EVENTS
/// since-seq` follower paging over a live stream has seconds — not
/// hundreds of milliseconds — of slack before eviction outruns it, even
/// with per-pattern journaling enabled (a rendered event is ~100 bytes,
/// so the ring tops out around 1 MB per registry).
pub const EVENT_CAPACITY: usize = 8192;

/// Fine-bucket index for a nanosecond value; `None` means overflow.
fn bucket_index(ns: u64) -> Option<usize> {
    if ns < (1 << MIN_EXP) {
        return Some(0);
    }
    let e = 63 - ns.leading_zeros();
    if e >= MAX_EXP {
        return None;
    }
    let sub = ((ns >> (e - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    Some((((e - MIN_EXP) as usize) << SUB_BITS) + sub)
}

/// Upper bound (ns) of a fine bucket: values in the bucket are `< bound`.
fn bucket_bound_ns(idx: usize) -> u64 {
    let e = MIN_EXP + (idx >> SUB_BITS) as u32;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    (1u64 << e) + ((sub + 1) << (e - SUB_BITS))
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn observe_ns(&self, ns: u64) {
        match bucket_index(ns) {
            Some(idx) => self.buckets[idx].fetch_add(1, Relaxed),
            None => self.overflow.fetch_add(1, Relaxed),
        };
        self.sum_ns.fetch_add(ns, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            overflow: self.overflow.load(Relaxed),
            sum_ns: self.sum_ns.load(Relaxed),
            count: self.count.load(Relaxed),
            max_ns: self.max_ns.load(Relaxed),
        }
    }
}

/// A cloneable handle to one registered (or standalone) histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A standalone histogram not attached to any registry (used by
    /// `PipelineMetrics` for its latency distribution).
    pub fn unregistered() -> Self {
        Self::default()
    }

    /// Records one duration sample (relaxed atomics; no lock).
    pub fn record(&self, d: Duration) {
        self.core
            .observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one raw nanosecond sample.
    pub fn observe_ns(&self, ns: u64) {
        self.core.observe_ns(ns);
    }

    /// A point-in-time copy of the bucket counts for O(buckets) reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// Point-in-time histogram counts (see [`Histogram::snapshot`]).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    overflow: u64,
    sum_ns: u64,
    count: u64,
    max_ns: u64,
}

impl HistogramSnapshot {
    /// Total samples observed (cumulative over the run).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples above the histogram ceiling (counted only under `+Inf`).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact mean of all samples (sum and count are exact even though
    /// quantiles are bucketed).
    pub fn mean(&self) -> Duration {
        match self.sum_ns.checked_div(self.count) {
            Some(mean_ns) => Duration::from_nanos(mean_ns),
            None => Duration::ZERO,
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns)
    }

    /// Bucketed quantile: the upper bound of the bucket containing the
    /// `q`-th sample, clamped to the exact max (≤ 25 % relative error from
    /// the log-linear bucket width).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(bucket_bound_ns(idx).min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }
}

/// A cloneable monotonic counter (relaxed atomic adds on the hot path).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.cell.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// A cloneable last-value gauge (relaxed atomic store on the hot path).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores the latest sampled value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Relaxed);
    }

    /// Last sampled value.
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// Registry key; ordered by (name, stage, subtask) so rendering groups
/// every series of a metric family under one `# TYPE` header.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    stage: String,
    subtask: u32,
}

#[derive(Debug)]
struct CounterCell {
    cell: Arc<AtomicU64>,
    /// The atomic holds nanoseconds; render as fractional seconds. Derived
    /// from the metric name (`*seconds_total`).
    nanos: bool,
}

#[derive(Debug, Default)]
struct Journal {
    events: VecDeque<ObsEvent>,
    next_seq: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<MetricKey, CounterCell>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistogramCore>>>,
    journal: Mutex<Journal>,
}

/// One structured journal entry with its monotonic sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotonic sequence number (1-based; never reused within a process).
    pub seq: u64,
    /// What happened.
    pub kind: ObsEventKind,
}

/// Typed journal events — the state transitions an operator debugging the
/// pipeline needs a history of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A snapshot window fully sealed (results emitted downstream).
    WindowSealed {
        /// The snapshot time that sealed.
        time: u32,
    },
    /// A checkpoint barrier completed its pass through the pipeline.
    BarrierPassed {
        /// The checkpoint sequence number.
        checkpoint_seq: u64,
    },
    /// The hotspot repartitioner installed a new routing epoch.
    CellMigrated {
        /// The routing epoch just installed.
        epoch: u64,
        /// Cells that changed owner in this epoch.
        cells: u64,
    },
    /// The balancer refined a hot cell into a deeper sub-cell tier.
    CellSplit {
        /// Base cell column index.
        x: i64,
        /// Base cell row index.
        y: i64,
        /// The cell's new refinement depth.
        depth: u8,
    },
    /// The balancer re-coalesced a cold refined cell one level.
    CellCoalesced {
        /// Base cell column index.
        x: i64,
        /// Base cell row index.
        y: i64,
        /// The cell's new refinement depth (0 = back to the base grid).
        depth: u8,
    },
    /// A slow subscriber's queue overflowed and it was disconnected.
    SubscriberShed {
        /// The shed subscriber's connection id.
        subscriber: u64,
    },
    /// Records arrived after their snapshot sealed and were dropped.
    LateBatchDropped {
        /// How many records the aligner dropped in this batch.
        records: u64,
    },
    /// A supervised subtask died (panic caught at the worker boundary).
    StageFailed {
        /// Stage name of the dead worker.
        stage: String,
        /// Subtask index of the dead worker.
        subtask: u64,
    },
    /// The supervisor began tearing down and relaunching the pipeline.
    PipelineRecovering {
        /// 1-based restart attempt number.
        restart: u64,
    },
    /// The pipeline came back up and finished replaying buffered records.
    PipelineRecovered {
        /// 1-based restart attempt number that succeeded.
        restart: u64,
        /// Records replayed from the post-checkpoint buffer.
        replayed: u64,
    },
    /// The supervisor exhausted its restart budget; the pipeline is
    /// terminally failed.
    PipelineFailed {
        /// Restart attempts consumed before giving up.
        restarts: u64,
    },
    /// `load_latest` skipped a torn or corrupt checkpoint on disk and fell
    /// back to an older one.
    CheckpointSkipped {
        /// Sequence number of the skipped checkpoint.
        seq: u64,
        /// Why it was unreadable (rendered `PersistError`).
        reason: String,
    },
    /// Malformed producer lines were moved to the dead-letter buffer.
    RecordQuarantined {
        /// Producer connection id the lines came from.
        conn: u64,
        /// How many lines this event covers.
        records: u64,
    },
    /// A pattern was sealed and delivered downstream. Journaled at the
    /// delivery edge so a subscriber shed mid-stream can reconnect and
    /// backfill what it missed with `EVENTS since-seq` (best-effort: the
    /// journal is a bounded ring, so backfill reaches at most
    /// [`EVENT_CAPACITY`] events into the past).
    PatternSealed {
        /// Object ids in the pattern.
        objects: Vec<u32>,
        /// Snapshot times the pattern spans.
        times: Vec<u32>,
    },
}

impl ObsEvent {
    /// One-line JSON rendering for the `EVENTS` wire endpoint.
    pub fn render_json(&self) -> String {
        match &self.kind {
            ObsEventKind::WindowSealed { time } => {
                format!(
                    "{{\"seq\":{},\"event\":\"window_sealed\",\"time\":{}}}",
                    self.seq, time
                )
            }
            ObsEventKind::BarrierPassed { checkpoint_seq } => format!(
                "{{\"seq\":{},\"event\":\"barrier_passed\",\"checkpoint_seq\":{}}}",
                self.seq, checkpoint_seq
            ),
            ObsEventKind::CellMigrated { epoch, cells } => format!(
                "{{\"seq\":{},\"event\":\"cell_migrated\",\"epoch\":{},\"cells\":{}}}",
                self.seq, epoch, cells
            ),
            ObsEventKind::CellSplit { x, y, depth } => format!(
                "{{\"seq\":{},\"event\":\"cell_split\",\"x\":{},\"y\":{},\"depth\":{}}}",
                self.seq, x, y, depth
            ),
            ObsEventKind::CellCoalesced { x, y, depth } => format!(
                "{{\"seq\":{},\"event\":\"cell_coalesced\",\"x\":{},\"y\":{},\"depth\":{}}}",
                self.seq, x, y, depth
            ),
            ObsEventKind::SubscriberShed { subscriber } => format!(
                "{{\"seq\":{},\"event\":\"subscriber_shed\",\"subscriber\":{}}}",
                self.seq, subscriber
            ),
            ObsEventKind::LateBatchDropped { records } => format!(
                "{{\"seq\":{},\"event\":\"late_batch_dropped\",\"records\":{}}}",
                self.seq, records
            ),
            ObsEventKind::StageFailed { stage, subtask } => format!(
                "{{\"seq\":{},\"event\":\"stage_failed\",\"stage\":\"{}\",\"subtask\":{}}}",
                self.seq,
                json_escape(stage),
                subtask
            ),
            ObsEventKind::PipelineRecovering { restart } => format!(
                "{{\"seq\":{},\"event\":\"pipeline_recovering\",\"restart\":{}}}",
                self.seq, restart
            ),
            ObsEventKind::PipelineRecovered { restart, replayed } => format!(
                "{{\"seq\":{},\"event\":\"pipeline_recovered\",\"restart\":{},\"replayed\":{}}}",
                self.seq, restart, replayed
            ),
            ObsEventKind::PipelineFailed { restarts } => format!(
                "{{\"seq\":{},\"event\":\"pipeline_failed\",\"restarts\":{}}}",
                self.seq, restarts
            ),
            ObsEventKind::CheckpointSkipped { seq, reason } => format!(
                "{{\"seq\":{},\"event\":\"checkpoint_skipped\",\"checkpoint_seq\":{},\"reason\":\"{}\"}}",
                self.seq,
                seq,
                json_escape(reason)
            ),
            ObsEventKind::RecordQuarantined { conn, records } => format!(
                "{{\"seq\":{},\"event\":\"record_quarantined\",\"conn\":{},\"records\":{}}}",
                self.seq, conn, records
            ),
            ObsEventKind::PatternSealed { objects, times } => format!(
                "{{\"seq\":{},\"event\":\"pattern_sealed\",\"objects\":{},\"times\":{}}}",
                self.seq,
                render_u32_array(objects),
                render_u32_array(times)
            ),
        }
    }
}

/// `[1,2,3]` — JSON array of numbers without pulling in a serializer.
fn render_u32_array(values: &[u32]) -> String {
    let mut out = String::with_capacity(2 + values.len() * 4);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping for event fields that carry free text
/// (error messages, stage names): backslash, quote, and control bytes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The cloneable registry handle shared by every stage, exchange hop, and
/// the serve tier. All clones see one underlying store.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(stage: &str, subtask: usize, name: &str) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            stage: stage.to_string(),
            subtask: subtask as u32,
        }
    }

    /// Registers (or retrieves) the counter `stage/subtask/name`. Names
    /// ending in `seconds_total` hold nanoseconds and render as seconds.
    pub fn counter(&self, stage: &str, subtask: usize, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock();
        let cell = counters
            .entry(Self::key(stage, subtask, name))
            .or_insert_with(|| CounterCell {
                cell: Arc::new(AtomicU64::new(0)),
                nanos: name.ends_with("seconds_total"),
            });
        Counter {
            cell: Arc::clone(&cell.cell),
        }
    }

    /// Registers (or retrieves) the gauge `stage/subtask/name`.
    pub fn gauge(&self, stage: &str, subtask: usize, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock();
        let cell = gauges
            .entry(Self::key(stage, subtask, name))
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge {
            cell: Arc::clone(cell),
        }
    }

    /// Registers (or retrieves) the histogram `stage/subtask/name`
    /// (nanosecond samples, rendered in seconds).
    pub fn histogram(&self, stage: &str, subtask: usize, name: &str) -> Histogram {
        let mut histograms = self.inner.histograms.lock();
        let core = histograms
            .entry(Self::key(stage, subtask, name))
            .or_default();
        Histogram {
            core: Arc::clone(core),
        }
    }

    /// Appends a typed event to the bounded journal; returns its sequence
    /// number. The ring keeps the most recent [`EVENT_CAPACITY`] entries.
    pub fn emit(&self, kind: ObsEventKind) -> u64 {
        let mut journal = self.inner.journal.lock();
        journal.next_seq += 1;
        let seq = journal.next_seq;
        if journal.events.len() >= EVENT_CAPACITY {
            journal.events.pop_front();
        }
        journal.events.push_back(ObsEvent { seq, kind });
        seq
    }

    /// Events with `seq > since`, oldest first. `since = 0` drains the
    /// whole retained window.
    pub fn events_since(&self, since: u64) -> Vec<ObsEvent> {
        let journal = self.inner.journal.lock();
        journal
            .events
            .iter()
            .filter(|e| e.seq > since)
            .cloned()
            .collect()
    }

    /// The sequence number of the newest event (0 when none were emitted).
    pub fn last_seq(&self) -> u64 {
        self.inner.journal.lock().next_seq
    }

    /// Cumulative counter values for the checkpoint: summed across
    /// subtasks, keyed `(stage, name)`, canonically sorted, zeros omitted.
    pub fn counter_checkpoint(&self) -> ObsCheckpoint {
        let counters = self.inner.counters.lock();
        let mut per: BTreeMap<(String, String), u64> = BTreeMap::new();
        for (key, cell) in counters.iter() {
            let v = cell.cell.load(Relaxed);
            if v > 0 {
                *per.entry((key.stage.clone(), key.name.clone()))
                    .or_default() += v;
            }
        }
        ObsCheckpoint {
            counters: per
                .into_iter()
                .map(|((stage, name), value)| ObsCounterEntry { stage, name, value })
                .collect(),
        }
    }

    /// Re-credits checkpointed counter totals so a restored pipeline's
    /// cumulative observability continues where the old process stopped.
    /// Totals land on subtask 0 of each stage (the deployment may have a
    /// different parallelism; only the per-stage sum is meaningful).
    pub fn restore(&self, ckpt: &ObsCheckpoint) {
        for row in &ckpt.counters {
            self.counter(&row.stage, 0, &row.name).add(row.value);
        }
    }

    /// Rewinds every registered counter to a checkpoint: all cells are
    /// zeroed, then the checkpointed totals are re-credited to subtask 0.
    /// Used by in-process recovery, where the relaunched generation shares
    /// this registry's cells with the dead one — replay then re-accumulates
    /// the post-checkpoint span exactly once. Gauges are left alone (the
    /// new generation overwrites them) and histograms keep their samples
    /// (latency distributions are informational, not conserved).
    pub fn reset_counters_to(&self, ckpt: &ObsCheckpoint) {
        {
            let counters = self.inner.counters.lock();
            for cell in counters.values() {
                cell.cell.store(0, Relaxed);
            }
        }
        self.restore(ckpt);
    }

    /// Wall-clock seconds spent in `process_batch` per stage (summed over
    /// subtasks), sorted by stage name — the bench's per-stage time-share
    /// table.
    pub fn stage_seconds(&self) -> Vec<(String, f64)> {
        let histograms = self.inner.histograms.lock();
        let mut per: BTreeMap<String, u64> = BTreeMap::new();
        for (key, core) in histograms.iter() {
            if key.name == "stage_batch_seconds" {
                *per.entry(key.stage.clone()).or_default() += core.sum_ns.load(Relaxed);
            }
        }
        per.into_iter()
            .map(|(s, ns)| (s, ns as f64 / 1e9))
            .collect()
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, `icpe_`-prefixed, with `stage`/`subtask` labels. Histogram
    /// buckets are coalesced to power-of-two bounds (the fine sub-buckets
    /// stay internal to quantile math).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        {
            let counters = self.inner.counters.lock();
            let mut family = String::new();
            for (key, cell) in counters.iter() {
                if key.name != family {
                    family = key.name.clone();
                    let _ = writeln!(out, "# TYPE icpe_{family} counter");
                }
                let series = format!(
                    "icpe_{}{{stage=\"{}\",subtask=\"{}\"}}",
                    key.name, key.stage, key.subtask
                );
                if cell.nanos {
                    let _ = writeln!(out, "{series} {:.9}", cell.cell.load(Relaxed) as f64 / 1e9);
                } else {
                    let _ = writeln!(out, "{series} {}", cell.cell.load(Relaxed));
                }
            }
        }
        {
            let gauges = self.inner.gauges.lock();
            let mut family = String::new();
            for (key, cell) in gauges.iter() {
                if key.name != family {
                    family = key.name.clone();
                    let _ = writeln!(out, "# TYPE icpe_{family} gauge");
                }
                let _ = writeln!(
                    out,
                    "icpe_{}{{stage=\"{}\",subtask=\"{}\"}} {}",
                    key.name,
                    key.stage,
                    key.subtask,
                    cell.load(Relaxed)
                );
            }
        }
        {
            let histograms = self.inner.histograms.lock();
            let mut family = String::new();
            for (key, core) in histograms.iter() {
                if key.name != family {
                    family = key.name.clone();
                    let _ = writeln!(out, "# TYPE icpe_{family} histogram");
                }
                let snap = core.snapshot();
                let labels = format!("stage=\"{}\",subtask=\"{}\"", key.stage, key.subtask);
                let mut cumulative = 0u64;
                let mut idx = 0usize;
                for e in (MIN_EXP + 1)..=MAX_EXP {
                    let upto = ((e - MIN_EXP) as usize) << SUB_BITS;
                    while idx < upto {
                        cumulative += snap.buckets[idx];
                        idx += 1;
                    }
                    let _ = writeln!(
                        out,
                        "icpe_{}_bucket{{{labels},le=\"{:.9}\"}} {cumulative}",
                        key.name,
                        (1u64 << e) as f64 / 1e9
                    );
                }
                let _ = writeln!(
                    out,
                    "icpe_{}_bucket{{{labels},le=\"+Inf\"}} {}",
                    key.name, snap.count
                );
                let _ = writeln!(
                    out,
                    "icpe_{}_sum{{{labels}}} {:.9}",
                    key.name,
                    snap.sum_ns as f64 / 1e9
                );
                let _ = writeln!(out, "icpe_{}_count{{{labels}}} {}", key.name, snap.count);
            }
        }
        out
    }
}

/// Per-subtask stage instrumentation: batches/records in, records out, and
/// the per-batch processing-time histogram. Created once per subtask at
/// stage build time; the hot path is four relaxed atomic operations per
/// batch.
#[derive(Debug, Clone)]
pub struct StageObs {
    batches_in: Counter,
    records_in: Counter,
    records_out: Counter,
    batch_seconds: Histogram,
}

impl StageObs {
    /// Registers the stage family for `stage`/`subtask`.
    pub fn new(registry: &MetricRegistry, stage: &str, subtask: usize) -> Self {
        StageObs {
            batches_in: registry.counter(stage, subtask, "stage_batches_in_total"),
            records_in: registry.counter(stage, subtask, "stage_records_in_total"),
            records_out: registry.counter(stage, subtask, "stage_records_out_total"),
            batch_seconds: registry.histogram(stage, subtask, "stage_batch_seconds"),
        }
    }

    /// Records one processed batch: input size, emitted records, and the
    /// time spent inside `process_batch` (routing/backpressure excluded —
    /// that is the exchange hop's measurement).
    pub fn batch(&self, records_in: usize, records_out: u64, elapsed: Duration) {
        self.batches_in.add(1);
        self.records_in.add(records_in as u64);
        self.records_out.add(records_out);
        self.batch_seconds.record(elapsed);
    }
}

/// Per-exchange-hop instrumentation, labelled by the *receiving* stage:
/// for each destination subtask, cumulative time spent inside the
/// (blocking, bounded) channel send — the backpressure signal — and the
/// last observed queue depth in batches.
#[derive(Debug, Clone)]
pub struct ExchangeObs {
    blocked: Vec<Counter>,
    depth: Vec<Gauge>,
}

impl ExchangeObs {
    /// Registers the exchange family for the hop into `stage` with
    /// `destinations` downstream subtasks.
    pub fn new(registry: &MetricRegistry, stage: &str, destinations: usize) -> Self {
        ExchangeObs {
            blocked: (0..destinations)
                .map(|d| registry.counter(stage, d, "exchange_blocked_seconds_total"))
                .collect(),
            depth: (0..destinations)
                .map(|d| registry.gauge(stage, d, "exchange_queue_depth"))
                .collect(),
        }
    }

    /// Records one shipped batch: how long the send blocked and the queue
    /// depth (in batches) observed right after it.
    pub fn sent(&self, dest: usize, blocked: Duration, queue_len: usize) {
        self.blocked[dest].add(blocked.as_nanos() as u64);
        self.depth[dest].set(queue_len as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let reg = MetricRegistry::new();
        let a = reg.counter("align", 0, "stage_records_in_total");
        let b = reg.counter("align", 0, "stage_records_in_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "same key shares one cell");
        let other = reg.counter("align", 1, "stage_records_in_total");
        assert_eq!(other.get(), 0, "different subtask is a different series");
    }

    #[test]
    fn gauge_keeps_last_value() {
        let reg = MetricRegistry::new();
        let g = reg.gauge("sync-shard", 2, "exchange_queue_depth");
        g.set(9);
        g.set(4);
        assert_eq!(reg.gauge("sync-shard", 2, "exchange_queue_depth").get(), 4);
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        let h = Histogram::unregistered();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.max(), Duration::from_millis(100));
        // Exact mean from the exact sum.
        assert_eq!(snap.mean(), Duration::from_micros(50500));
        // Bucketed quantiles: within the 25 % log-linear bucket width.
        let p50 = snap.quantile(0.50).as_secs_f64();
        assert!((0.050..=0.0625).contains(&p50), "p50 {p50}");
        let p95 = snap.quantile(0.95).as_secs_f64();
        assert!((0.095..=0.1).contains(&p95), "p95 {p95}");
        assert!(snap.quantile(1.0) <= snap.max());
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::unregistered();
        h.observe_ns(0);
        h.observe_ns(50); // below the 1 µs floor
        h.record(Duration::from_secs(120)); // above the 34 s ceiling
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.overflow(), 1, "the 120 s sample overflowed");
        assert_eq!(snap.max(), Duration::from_secs(120));
        assert_eq!(snap.quantile(1.0), Duration::from_secs(120));
        assert!(snap.quantile(0.34) <= Duration::from_micros(2));
    }

    #[test]
    fn fine_buckets_cover_the_range_monotonically() {
        let mut prev = 0;
        for idx in 0..BUCKETS {
            let bound = bucket_bound_ns(idx);
            assert!(bound > prev, "bounds must increase at {idx}");
            prev = bound;
            // A value just under the bound maps into a bucket ≤ idx.
            assert!(bucket_index(bound - 1).unwrap() <= idx);
        }
        assert_eq!(bucket_index(1u64 << MAX_EXP), None, "ceiling overflows");
    }

    #[test]
    fn journal_is_bounded_with_monotonic_seqs() {
        let reg = MetricRegistry::new();
        for t in 0..(EVENT_CAPACITY as u32 + 10) {
            reg.emit(ObsEventKind::WindowSealed { time: t });
        }
        let all = reg.events_since(0);
        assert_eq!(all.len(), EVENT_CAPACITY, "ring stays bounded");
        assert_eq!(all.first().unwrap().seq, 11, "oldest entries evicted");
        assert_eq!(reg.last_seq(), EVENT_CAPACITY as u64 + 10);
        let tail = reg.events_since(reg.last_seq() - 2);
        assert_eq!(tail.len(), 2);
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn events_render_as_one_json_line() {
        let reg = MetricRegistry::new();
        reg.emit(ObsEventKind::CellMigrated { epoch: 3, cells: 7 });
        let line = reg.events_since(0)[0].render_json();
        assert_eq!(
            line,
            "{\"seq\":1,\"event\":\"cell_migrated\",\"epoch\":3,\"cells\":7}"
        );
    }

    #[test]
    fn refinement_events_render_as_one_json_line() {
        let reg = MetricRegistry::new();
        reg.emit(ObsEventKind::CellSplit {
            x: -2,
            y: 5,
            depth: 1,
        });
        reg.emit(ObsEventKind::CellCoalesced {
            x: -2,
            y: 5,
            depth: 0,
        });
        let events = reg.events_since(0);
        assert_eq!(
            events[0].render_json(),
            "{\"seq\":1,\"event\":\"cell_split\",\"x\":-2,\"y\":5,\"depth\":1}"
        );
        assert_eq!(
            events[1].render_json(),
            "{\"seq\":2,\"event\":\"cell_coalesced\",\"x\":-2,\"y\":5,\"depth\":0}"
        );
    }

    #[test]
    fn recovery_events_render_as_one_json_line() {
        let reg = MetricRegistry::new();
        reg.emit(ObsEventKind::StageFailed {
            stage: "grid-query".into(),
            subtask: 1,
        });
        reg.emit(ObsEventKind::PipelineRecovering { restart: 1 });
        reg.emit(ObsEventKind::PipelineRecovered {
            restart: 1,
            replayed: 42,
        });
        reg.emit(ObsEventKind::PipelineFailed { restarts: 3 });
        reg.emit(ObsEventKind::CheckpointSkipped {
            seq: 7,
            reason: "checksum mismatch: \"bad\"".into(),
        });
        reg.emit(ObsEventKind::RecordQuarantined {
            conn: 4,
            records: 2,
        });
        let events = reg.events_since(0);
        assert_eq!(
            events[0].render_json(),
            "{\"seq\":1,\"event\":\"stage_failed\",\"stage\":\"grid-query\",\"subtask\":1}"
        );
        assert_eq!(
            events[1].render_json(),
            "{\"seq\":2,\"event\":\"pipeline_recovering\",\"restart\":1}"
        );
        assert_eq!(
            events[2].render_json(),
            "{\"seq\":3,\"event\":\"pipeline_recovered\",\"restart\":1,\"replayed\":42}"
        );
        assert_eq!(
            events[3].render_json(),
            "{\"seq\":4,\"event\":\"pipeline_failed\",\"restarts\":3}"
        );
        assert_eq!(
            events[4].render_json(),
            "{\"seq\":5,\"event\":\"checkpoint_skipped\",\"checkpoint_seq\":7,\
             \"reason\":\"checksum mismatch: \\\"bad\\\"\"}"
        );
        assert_eq!(
            events[5].render_json(),
            "{\"seq\":6,\"event\":\"record_quarantined\",\"conn\":4,\"records\":2}"
        );
    }

    #[test]
    fn pattern_sealed_renders_its_identity_arrays() {
        let reg = MetricRegistry::new();
        reg.emit(ObsEventKind::PatternSealed {
            objects: vec![3, 1, 4],
            times: vec![7, 8],
        });
        assert_eq!(
            reg.events_since(0)[0].render_json(),
            "{\"seq\":1,\"event\":\"pattern_sealed\",\"objects\":[3,1,4],\"times\":[7,8]}"
        );
    }

    #[test]
    fn reset_counters_to_rewinds_to_the_checkpoint() {
        let reg = MetricRegistry::new();
        reg.counter("align", 0, "stage_records_in_total").add(100);
        let ckpt = reg.counter_checkpoint();
        // Post-checkpoint progress on several subtasks…
        reg.counter("align", 0, "stage_records_in_total").add(30);
        reg.counter("align", 1, "stage_records_in_total").add(20);
        reg.counter("grid-query", 0, "stage_batches_in_total")
            .add(5);
        // …is discarded by the rewind; the checkpointed span survives.
        reg.reset_counters_to(&ckpt);
        assert_eq!(reg.counter_checkpoint(), ckpt);
        assert_eq!(reg.counter("align", 0, "stage_records_in_total").get(), 100);
        assert_eq!(reg.counter("align", 1, "stage_records_in_total").get(), 0);
        assert_eq!(
            reg.counter("grid-query", 0, "stage_batches_in_total").get(),
            0
        );
    }

    #[test]
    fn counter_checkpoint_round_trips_through_restore() {
        let reg = MetricRegistry::new();
        reg.counter("align", 0, "stage_records_in_total").add(100);
        reg.counter("align", 1, "stage_records_in_total").add(50);
        reg.counter("grid-query", 0, "stage_batches_in_total")
            .add(7);
        reg.counter("grid-query", 0, "stage_records_out_total"); // zero: omitted
        let ckpt = reg.counter_checkpoint();
        assert_eq!(ckpt.counters.len(), 2, "zeros omitted, subtasks summed");
        assert_eq!(ckpt.counters[0].stage, "align");
        assert_eq!(ckpt.counters[0].value, 150);

        let restored = MetricRegistry::new();
        restored.restore(&ckpt);
        assert_eq!(restored.counter_checkpoint(), ckpt, "restore is lossless");
    }

    #[test]
    fn prometheus_rendering_is_parseable_and_grouped() {
        let reg = MetricRegistry::new();
        reg.counter("align", 0, "stage_records_in_total").add(5);
        reg.counter("align", 0, "exchange_blocked_seconds_total")
            .add(1_500_000_000);
        reg.gauge("align", 0, "exchange_queue_depth").set(3);
        reg.histogram("align", 0, "stage_batch_seconds")
            .record(Duration::from_millis(2));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE icpe_stage_records_in_total counter"));
        assert!(text.contains("icpe_stage_records_in_total{stage=\"align\",subtask=\"0\"} 5"));
        assert!(
            text.contains("icpe_exchange_blocked_seconds_total{stage=\"align\",subtask=\"0\"} 1.5"),
            "nanosecond counters render as seconds: {text}"
        );
        assert!(text.contains("# TYPE icpe_exchange_queue_depth gauge"));
        assert!(text.contains("# TYPE icpe_stage_batch_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("icpe_stage_batch_seconds_count{stage=\"align\",subtask=\"0\"} 1"));
        // Every sample value parses as a finite number.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            let v: f64 = value.parse().unwrap_or_else(|_| panic!("bad value {line}"));
            assert!(v.is_finite(), "non-finite sample: {line}");
        }
        // Histogram bucket counts are monotonically non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts regressed: {line}");
            last = v;
        }
    }

    #[test]
    fn stage_seconds_sums_subtasks() {
        let reg = MetricRegistry::new();
        reg.histogram("grid-query", 0, "stage_batch_seconds")
            .record(Duration::from_millis(30));
        reg.histogram("grid-query", 1, "stage_batch_seconds")
            .record(Duration::from_millis(10));
        reg.histogram("align", 0, "stage_batch_seconds")
            .record(Duration::from_millis(5));
        let shares = reg.stage_seconds();
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].0, "align");
        assert!((shares[1].1 - 0.040).abs() < 1e-9);
    }

    #[test]
    fn stage_and_exchange_obs_record() {
        let reg = MetricRegistry::new();
        let stage = StageObs::new(&reg, "align", 0);
        stage.batch(64, 60, Duration::from_micros(100));
        stage.batch(1, 1, Duration::from_micros(50));
        assert_eq!(reg.counter("align", 0, "stage_batches_in_total").get(), 2);
        assert_eq!(reg.counter("align", 0, "stage_records_in_total").get(), 65);
        assert_eq!(reg.counter("align", 0, "stage_records_out_total").get(), 61);
        assert_eq!(
            reg.histogram("align", 0, "stage_batch_seconds")
                .snapshot()
                .count(),
            2
        );

        let hop = ExchangeObs::new(&reg, "grid-query", 2);
        hop.sent(1, Duration::from_millis(3), 17);
        assert_eq!(
            reg.counter("grid-query", 1, "exchange_blocked_seconds_total")
                .get(),
            3_000_000
        );
        assert_eq!(reg.gauge("grid-query", 1, "exchange_queue_depth").get(), 17);
        assert_eq!(reg.gauge("grid-query", 0, "exchange_queue_depth").get(), 0);
    }
}
