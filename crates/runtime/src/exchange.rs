//! Record routing between consecutive pipeline stages.
//!
//! Since the micro-batch refactor the inter-stage channels carry
//! **batches** (`Vec<T>`) instead of single records: the [`Router`] buffers
//! keyed/round-robin records per destination and ships a whole buffer in
//! one channel operation, amortizing the send/recv synchronization that
//! otherwise dominates at high record rates. Three events flush a buffer:
//!
//! * **size** — the buffer reached the configured batch size;
//! * **idle** — the owning subtask is about to block on an empty input
//!   channel and calls [`Router::flush`] (the runtime does this), so
//!   batching never adds latency when the stream is slow;
//! * **punctuation** — any broadcast-routed record (snapshot-boundary
//!   ticks, checkpoint barriers) flushes *every* buffer before it is sent,
//!   so punctuation always lands **between** batches and the per-channel
//!   FIFO order "data before its tick/barrier" is preserved exactly as in
//!   the record-at-a-time dataflow.

use crate::fault::{FaultKind, FaultPlan};
use crate::obs::ExchangeObs;
use crate::routing::RoutingTable;
use crossbeam::channel::Sender;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// Chaos hook on one subtask's outbound hop: consulted before every batch
/// send, keyed by the *receiving* stage's name (the same label the hop's
/// instrumentation uses), the sending subtask, and a subtask-local send
/// ordinal. See [`FaultPlan::send_fault`].
pub(crate) struct SendFault {
    plan: Arc<FaultPlan>,
    stage: String,
    subtask: usize,
    sends: Cell<u64>,
}

impl SendFault {
    pub(crate) fn new(plan: Arc<FaultPlan>, stage: &str) -> Self {
        SendFault {
            plan,
            stage: stage.to_string(),
            subtask: 0,
            sends: Cell::new(0),
        }
    }

    fn for_subtask(&self, subtask: usize) -> Self {
        SendFault {
            plan: Arc::clone(&self.plan),
            stage: self.stage.clone(),
            subtask,
            sends: Cell::new(0),
        }
    }

    /// Returns `true` when the batch about to be sent must be dropped.
    fn before_send(&self) -> bool {
        let ordinal = self.sends.get();
        self.sends.set(ordinal + 1);
        match self.plan.send_fault(&self.stage, self.subtask, ordinal) {
            Some(FaultKind::DelaySend(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                false
            }
            Some(FaultKind::DropSend) => true,
            _ => false,
        }
    }
}

/// Routing failed because the downstream stage hung up (all of its
/// receivers were dropped) — the upstream subtask should stop producing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "downstream stage disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Per-record routing decision for [`Exchange::PerRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Route to the subtask owning this key hash.
    Key(u64),
    /// Copy to every subtask (punctuation/ticks).
    Broadcast,
}

/// How records are distributed from one stage's subtasks to the next
/// stage's subtasks — the Flink exchange patterns the paper relies on.
pub enum Exchange<T> {
    /// Hash partitioning: records with equal keys go to the same subtask
    /// (Flink's `keyBy`). The closure maps a record to its key hash.
    KeyBy(Arc<dyn Fn(&T) -> u64 + Send + Sync>),
    /// Round-robin distribution (Flink's `rebalance`).
    Rebalance,
    /// Every record is copied to every subtask (requires `T: Clone`).
    Broadcast,
    /// Mixed mode: each record chooses keyed or broadcast routing — the
    /// pattern ICPE uses to interleave keyed data with broadcast
    /// snapshot-boundary ticks (Flink jobs do this with `keyBy` plus
    /// broadcast watermarks).
    PerRecord(Arc<dyn Fn(&T) -> Routing + Send + Sync>),
    /// [`Exchange::PerRecord`] whose keyed decisions consult a shared,
    /// swappable [`RoutingTable`] instead of raw `hash % N`: explicit
    /// assignments win, unmapped keys fall back to consistent hashing (an
    /// empty table routes exactly like `PerRecord`). The table is shared
    /// with a controller that installs new epochs while the dataflow runs —
    /// the adaptive half of hotspot-aware repartitioning.
    Dynamic(Arc<RoutingTable>, Arc<dyn Fn(&T) -> Routing + Send + Sync>),
}

impl<T> Exchange<T> {
    /// Convenience constructor for [`Exchange::KeyBy`].
    pub fn key_by(f: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Self {
        Exchange::KeyBy(Arc::new(f))
    }

    /// Convenience constructor for [`Exchange::PerRecord`].
    pub fn per_record(f: impl Fn(&T) -> Routing + Send + Sync + 'static) -> Self {
        Exchange::PerRecord(Arc::new(f))
    }

    /// Convenience constructor for [`Exchange::Dynamic`].
    pub fn dynamic(
        table: Arc<RoutingTable>,
        f: impl Fn(&T) -> Routing + Send + Sync + 'static,
    ) -> Self {
        Exchange::Dynamic(table, Arc::new(f))
    }
}

impl<T> Clone for Exchange<T> {
    fn clone(&self) -> Self {
        match self {
            Exchange::KeyBy(f) => Exchange::KeyBy(Arc::clone(f)),
            Exchange::Rebalance => Exchange::Rebalance,
            Exchange::Broadcast => Exchange::Broadcast,
            Exchange::PerRecord(f) => Exchange::PerRecord(Arc::clone(f)),
            Exchange::Dynamic(t, f) => Exchange::Dynamic(Arc::clone(t), Arc::clone(f)),
        }
    }
}

impl<T> std::fmt::Debug for Exchange<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exchange::KeyBy(_) => write!(f, "KeyBy"),
            Exchange::Rebalance => write!(f, "Rebalance"),
            Exchange::Broadcast => write!(f, "Broadcast"),
            Exchange::PerRecord(_) => write!(f, "PerRecord"),
            Exchange::Dynamic(t, _) => write!(f, "Dynamic(epoch {})", t.epoch()),
        }
    }
}

/// Where one record goes (computed before touching the buffers, so the
/// strategy borrow ends before the mutable buffer access).
enum Dest {
    Idx(usize),
    RoundRobin,
    All,
}

/// One upstream subtask's routing handle: a set of batch senders (one per
/// downstream subtask), per-destination batch buffers, and the exchange
/// strategy.
///
/// Each subtask owns its own `Router` clone so round-robin counters and
/// batch buffers are subtask-local, exactly like Flink's per-channel
/// rebalance and per-channel network buffers.
pub struct Router<T> {
    senders: Vec<Sender<Vec<T>>>,
    bufs: Vec<Vec<T>>,
    strategy: Exchange<T>,
    /// Records per destination buffer before a size flush (≥ 1; 1 restores
    /// record-at-a-time behaviour, each record its own batch).
    batch: usize,
    rr: usize,
    /// Per-destination backpressure/queue-depth instrumentation, shared by
    /// every upstream subtask's clone (the counters aggregate per
    /// destination). `None` on uninstrumented dataflows: the hot path pays
    /// one branch.
    obs: Option<ExchangeObs>,
    /// Chaos hook (delay/drop a send); `None` outside chaos runs.
    fault: Option<SendFault>,
}

impl<T> Router<T> {
    pub(crate) fn new(
        senders: Vec<Sender<Vec<T>>>,
        strategy: Exchange<T>,
        batch: usize,
        obs: Option<ExchangeObs>,
    ) -> Self {
        debug_assert!(!senders.is_empty());
        Router {
            bufs: senders.iter().map(|_| Vec::new()).collect(),
            senders,
            strategy,
            batch: batch.max(1),
            rr: 0,
            obs,
            fault: None,
        }
    }

    /// Arms the chaos hook on this hop (builder style; template routers
    /// pass it on to every subtask clone).
    pub(crate) fn with_fault(mut self, fault: Option<SendFault>) -> Self {
        self.fault = fault;
        self
    }

    pub(crate) fn clone_for_subtask(&self, subtask: usize) -> Self {
        Router {
            senders: self.senders.clone(),
            bufs: self.senders.iter().map(|_| Vec::new()).collect(),
            strategy: self.strategy.clone(),
            batch: self.batch,
            // Stagger round-robin starts so subtasks do not all hammer
            // downstream subtask 0 first.
            rr: subtask % self.senders.len(),
            obs: self.obs.clone(),
            fault: self.fault.as_ref().map(|f| f.for_subtask(subtask)),
        }
    }

    /// Routes one record into its destination's batch buffer, shipping the
    /// buffer when it reaches the batch size. Broadcast-routed records
    /// flush every buffer first and then travel as their own batch, so
    /// punctuation lands between batches. Blocks when the target channel
    /// is full (backpressure). Returns `Err` when the downstream stage is
    /// gone.
    pub fn route(&mut self, record: T) -> Result<(), Disconnected>
    where
        T: Clone,
    {
        let n = self.senders.len() as u64;
        let dest = match &self.strategy {
            Exchange::KeyBy(f) => Dest::Idx((f(&record) % n) as usize),
            Exchange::Rebalance => Dest::RoundRobin,
            Exchange::Broadcast => Dest::All,
            Exchange::PerRecord(f) => match f(&record) {
                Routing::Key(k) => Dest::Idx((k % n) as usize),
                Routing::Broadcast => Dest::All,
            },
            Exchange::Dynamic(table, f) => match f(&record) {
                Routing::Key(k) => Dest::Idx(table.subtask(k, self.senders.len())),
                Routing::Broadcast => Dest::All,
            },
        };
        match dest {
            Dest::Idx(idx) => self.push_to(idx, record),
            Dest::RoundRobin => {
                let idx = self.rr;
                self.rr = (self.rr + 1) % self.senders.len();
                self.push_to(idx, record)
            }
            Dest::All => self.broadcast(record),
        }
    }

    /// Ships every non-empty batch buffer downstream. The runtime calls
    /// this before a subtask blocks on an empty input channel (so batching
    /// never trades latency) and at end of stream; operators never see
    /// partial batches held back indefinitely.
    pub fn flush(&mut self) -> Result<(), Disconnected> {
        for idx in 0..self.senders.len() {
            self.flush_one(idx)?;
        }
        Ok(())
    }

    fn push_to(&mut self, idx: usize, record: T) -> Result<(), Disconnected> {
        let buf = &mut self.bufs[idx];
        if buf.capacity() == 0 {
            buf.reserve_exact(self.batch);
        }
        buf.push(record);
        if self.bufs[idx].len() >= self.batch {
            self.flush_one(idx)?;
        }
        Ok(())
    }

    fn flush_one(&mut self, idx: usize) -> Result<(), Disconnected> {
        if self.bufs[idx].is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.bufs[idx]);
        self.send_to(idx, batch)
    }

    /// Ships one batch to destination `idx`, timing the (blocking, bounded)
    /// send and sampling the queue depth when the hop is instrumented — the
    /// per-exchange backpressure signal.
    fn send_to(&self, idx: usize, batch: Vec<T>) -> Result<(), Disconnected> {
        if let Some(fault) = &self.fault {
            if fault.before_send() {
                return Ok(()); // injected drop: the batch is lost by design
            }
        }
        match &self.obs {
            Some(obs) => {
                let started = Instant::now();
                let result = self.senders[idx].send(batch).map_err(|_| Disconnected);
                obs.sent(idx, started.elapsed(), self.senders[idx].len());
                result
            }
            None => self.senders[idx].send(batch).map_err(|_| Disconnected),
        }
    }

    fn broadcast(&mut self, record: T) -> Result<(), Disconnected>
    where
        T: Clone,
    {
        // Punctuation cut: everything routed before this record reaches
        // its subtask before the broadcast does.
        self.flush()?;
        let last = self.senders.len() - 1;
        for idx in 0..last {
            self.send_to(idx, vec![record.clone()])?;
        }
        self.send_to(last, vec![record])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, Receiver};

    fn routers_and_receivers(
        n: usize,
        strategy: Exchange<u64>,
        batch: usize,
    ) -> (Router<u64>, Vec<Receiver<Vec<u64>>>) {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| bounded(64)).unzip();
        (Router::new(senders, strategy, batch, None), receivers)
    }

    fn drain(rx: &Receiver<Vec<u64>>) -> Vec<u64> {
        rx.try_iter().flatten().collect()
    }

    #[test]
    fn key_by_is_deterministic_per_key() {
        let (mut r, rx) = routers_and_receivers(4, Exchange::key_by(|x: &u64| *x), 2);
        for v in [5u64, 5, 5, 9, 9] {
            r.route(v).unwrap();
        }
        r.flush().unwrap();
        drop(r);
        let counts: Vec<usize> = rx.iter().map(|c| drain(c).len()).collect();
        // key 5 → subtask 1, key 9 → subtask 1 (9 % 4 = 1)... both to 1.
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert_eq!(counts[1], 5);
    }

    #[test]
    fn rebalance_spreads_evenly() {
        let (mut r, rx) = routers_and_receivers(3, Exchange::Rebalance, 4);
        for v in 0..9u64 {
            r.route(v).unwrap();
        }
        r.flush().unwrap();
        drop(r);
        for c in rx {
            assert_eq!(drain(&c).len(), 3);
        }
    }

    #[test]
    fn broadcast_copies_to_all() {
        let (mut r, rx) = routers_and_receivers(3, Exchange::Broadcast, 8);
        r.route(7).unwrap();
        r.route(8).unwrap();
        drop(r);
        for c in rx {
            assert_eq!(drain(&c), vec![7, 8]);
        }
    }

    #[test]
    fn per_record_mixes_keyed_and_broadcast() {
        // Even records keyed, odd records broadcast.
        let (mut r, rx) = routers_and_receivers(
            3,
            Exchange::per_record(|x: &u64| {
                if x.is_multiple_of(2) {
                    Routing::Key(*x)
                } else {
                    Routing::Broadcast
                }
            }),
            16,
        );
        r.route(6).unwrap(); // key 6 → subtask 0 (buffered)
        r.route(1).unwrap(); // broadcast: flushes the buffer first
        drop(r);
        let got: Vec<Vec<u64>> = rx.iter().map(drain).collect();
        assert_eq!(got[0], vec![6, 1], "buffered data precedes punctuation");
        assert_eq!(got[1], vec![1]);
        assert_eq!(got[2], vec![1]);
    }

    #[test]
    fn size_flush_ships_full_batches_without_explicit_flush() {
        let (mut r, rx) = routers_and_receivers(1, Exchange::key_by(|_| 0), 3);
        for v in 0..6u64 {
            r.route(v).unwrap();
        }
        // Two full batches of 3 shipped by size alone.
        let batches: Vec<Vec<u64>> = rx[0].try_iter().collect();
        assert_eq!(batches, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        r.route(6).unwrap();
        assert_eq!(rx[0].try_iter().count(), 0, "partial batch stays buffered");
        r.flush().unwrap();
        assert_eq!(rx[0].try_iter().collect::<Vec<_>>(), vec![vec![6]]);
    }

    #[test]
    fn dynamic_follows_table_swaps_and_falls_back() {
        let table = Arc::new(RoutingTable::new());
        let (mut r, rx) = routers_and_receivers(
            4,
            Exchange::dynamic(Arc::clone(&table), |x: &u64| {
                if *x == u64::MAX {
                    Routing::Broadcast
                } else {
                    Routing::Key(*x)
                }
            }),
            1,
        );
        r.route(6).unwrap(); // unmapped: hash fallback 6 % 4 = 2
        table.install(1, std::collections::HashMap::from([(6u64, 0usize)]), 1);
        r.route(6).unwrap(); // mapped: subtask 0
        r.route(u64::MAX).unwrap(); // broadcast unaffected by the table
        drop(r);
        let got: Vec<Vec<u64>> = rx.iter().map(drain).collect();
        assert_eq!(got[0], vec![6, u64::MAX]);
        assert_eq!(got[2], vec![6, u64::MAX]);
        assert_eq!(got[1], vec![u64::MAX]);
        assert_eq!(got[3], vec![u64::MAX]);
    }

    #[test]
    fn route_fails_when_downstream_dropped() {
        let (mut r, rx) = routers_and_receivers(2, Exchange::Rebalance, 1);
        drop(rx);
        assert!(r.route(1).is_err());
    }

    #[test]
    fn instrumented_router_counts_blocked_sends_and_depth() {
        let reg = crate::obs::MetricRegistry::new();
        let obs = ExchangeObs::new(&reg, "down", 2);
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..2).map(|_| bounded::<Vec<u64>>(64)).unzip();
        let mut r = Router::new(senders, Exchange::key_by(|x: &u64| *x), 2, Some(obs));
        for v in [0u64, 0, 0, 1, 1] {
            r.route(v).unwrap();
        }
        r.flush().unwrap();
        // Destination 0 received two batches ([0,0] by size, [0] by flush),
        // destination 1 one batch; depth gauges saw the queue afterwards.
        assert_eq!(receivers[0].len(), 2);
        assert_eq!(reg.gauge("down", 0, "exchange_queue_depth").get(), 2);
        assert_eq!(reg.gauge("down", 1, "exchange_queue_depth").get(), 1);
        // The send timer ran (value may round to zero ns on a fast path,
        // so just assert the series exists via a second handle).
        let _ = reg
            .counter("down", 0, "exchange_blocked_seconds_total")
            .get();
    }

    #[test]
    fn send_faults_drop_exactly_the_keyed_batch() {
        let plan = FaultPlan::new()
            .point("down", 0, 0, FaultKind::DropSend)
            .point("down", 0, 1, FaultKind::DelaySend(1))
            .build();
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..1).map(|_| bounded::<Vec<u64>>(8)).unzip();
        let template = Router::new(senders, Exchange::Rebalance, 2, None)
            .with_fault(Some(SendFault::new(plan, "down")));
        let mut r = template.clone_for_subtask(0);
        drop(template);
        r.route(1).unwrap();
        r.route(2).unwrap(); // size flush → send #0 → injected drop
        r.route(3).unwrap();
        r.flush().unwrap(); // send #1 → delayed, then delivered
        r.route(4).unwrap();
        r.flush().unwrap(); // send #2 → plan exhausted, normal
        drop(r);
        assert_eq!(drain(&receivers[0]), vec![3, 4], "batch [1,2] was dropped");
    }

    #[test]
    fn subtask_clones_stagger_round_robin() {
        let (r, rx) = routers_and_receivers(2, Exchange::Rebalance, 1);
        let mut r0 = r.clone_for_subtask(0);
        let mut r1 = r.clone_for_subtask(1);
        r0.route(10).unwrap(); // → subtask 0
        r1.route(20).unwrap(); // → subtask 1 (staggered start)
        drop((r, r0, r1));
        assert_eq!(drain(&rx[0]), vec![10]);
        assert_eq!(drain(&rx[1]), vec![20]);
    }
}
