//! Record routing between consecutive pipeline stages.

use crate::routing::RoutingTable;
use crossbeam::channel::Sender;
use std::sync::Arc;

/// Routing failed because the downstream stage hung up (all of its
/// receivers were dropped) — the upstream subtask should stop producing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "downstream stage disconnected")
    }
}

impl std::error::Error for Disconnected {}

/// Per-record routing decision for [`Exchange::PerRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Route to the subtask owning this key hash.
    Key(u64),
    /// Copy to every subtask (punctuation/ticks).
    Broadcast,
}

/// How records are distributed from one stage's subtasks to the next
/// stage's subtasks — the Flink exchange patterns the paper relies on.
pub enum Exchange<T> {
    /// Hash partitioning: records with equal keys go to the same subtask
    /// (Flink's `keyBy`). The closure maps a record to its key hash.
    KeyBy(Arc<dyn Fn(&T) -> u64 + Send + Sync>),
    /// Round-robin distribution (Flink's `rebalance`).
    Rebalance,
    /// Every record is copied to every subtask (requires `T: Clone`).
    Broadcast,
    /// Mixed mode: each record chooses keyed or broadcast routing — the
    /// pattern ICPE uses to interleave keyed data with broadcast
    /// snapshot-boundary ticks (Flink jobs do this with `keyBy` plus
    /// broadcast watermarks).
    PerRecord(Arc<dyn Fn(&T) -> Routing + Send + Sync>),
    /// [`Exchange::PerRecord`] whose keyed decisions consult a shared,
    /// swappable [`RoutingTable`] instead of raw `hash % N`: explicit
    /// assignments win, unmapped keys fall back to consistent hashing (an
    /// empty table routes exactly like `PerRecord`). The table is shared
    /// with a controller that installs new epochs while the dataflow runs —
    /// the adaptive half of hotspot-aware repartitioning.
    Dynamic(Arc<RoutingTable>, Arc<dyn Fn(&T) -> Routing + Send + Sync>),
}

impl<T> Exchange<T> {
    /// Convenience constructor for [`Exchange::KeyBy`].
    pub fn key_by(f: impl Fn(&T) -> u64 + Send + Sync + 'static) -> Self {
        Exchange::KeyBy(Arc::new(f))
    }

    /// Convenience constructor for [`Exchange::PerRecord`].
    pub fn per_record(f: impl Fn(&T) -> Routing + Send + Sync + 'static) -> Self {
        Exchange::PerRecord(Arc::new(f))
    }

    /// Convenience constructor for [`Exchange::Dynamic`].
    pub fn dynamic(
        table: Arc<RoutingTable>,
        f: impl Fn(&T) -> Routing + Send + Sync + 'static,
    ) -> Self {
        Exchange::Dynamic(table, Arc::new(f))
    }
}

impl<T> Clone for Exchange<T> {
    fn clone(&self) -> Self {
        match self {
            Exchange::KeyBy(f) => Exchange::KeyBy(Arc::clone(f)),
            Exchange::Rebalance => Exchange::Rebalance,
            Exchange::Broadcast => Exchange::Broadcast,
            Exchange::PerRecord(f) => Exchange::PerRecord(Arc::clone(f)),
            Exchange::Dynamic(t, f) => Exchange::Dynamic(Arc::clone(t), Arc::clone(f)),
        }
    }
}

impl<T> std::fmt::Debug for Exchange<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exchange::KeyBy(_) => write!(f, "KeyBy"),
            Exchange::Rebalance => write!(f, "Rebalance"),
            Exchange::Broadcast => write!(f, "Broadcast"),
            Exchange::PerRecord(_) => write!(f, "PerRecord"),
            Exchange::Dynamic(t, _) => write!(f, "Dynamic(epoch {})", t.epoch()),
        }
    }
}

/// One upstream subtask's routing handle: a set of senders (one per
/// downstream subtask) plus the exchange strategy.
///
/// Each subtask owns its own `Router` clone so round-robin counters are
/// subtask-local, exactly like Flink's per-channel rebalance.
pub struct Router<T> {
    senders: Vec<Sender<T>>,
    strategy: Exchange<T>,
    rr: usize,
}

impl<T> Router<T> {
    pub(crate) fn new(senders: Vec<Sender<T>>, strategy: Exchange<T>) -> Self {
        debug_assert!(!senders.is_empty());
        Router {
            senders,
            strategy,
            rr: 0,
        }
    }

    pub(crate) fn clone_for_subtask(&self, subtask: usize) -> Self {
        Router {
            senders: self.senders.clone(),
            strategy: self.strategy.clone(),
            // Stagger round-robin starts so subtasks do not all hammer
            // downstream subtask 0 first.
            rr: subtask % self.senders.len(),
        }
    }

    /// Routes one record. Blocks when the target channel is full
    /// (backpressure). Returns `Err` when the downstream stage is gone.
    pub fn route(&mut self, record: T) -> Result<(), Disconnected>
    where
        T: Clone,
    {
        match &self.strategy {
            Exchange::KeyBy(f) => {
                let idx = (f(&record) % self.senders.len() as u64) as usize;
                self.senders[idx].send(record).map_err(|_| Disconnected)
            }
            Exchange::Rebalance => {
                let idx = self.rr;
                self.rr = (self.rr + 1) % self.senders.len();
                self.senders[idx].send(record).map_err(|_| Disconnected)
            }
            Exchange::Broadcast => self.broadcast(record),
            Exchange::PerRecord(f) => match f(&record) {
                Routing::Key(k) => {
                    let idx = (k % self.senders.len() as u64) as usize;
                    self.senders[idx].send(record).map_err(|_| Disconnected)
                }
                Routing::Broadcast => self.broadcast(record),
            },
            Exchange::Dynamic(table, f) => match f(&record) {
                Routing::Key(k) => {
                    let idx = table.subtask(k, self.senders.len());
                    self.senders[idx].send(record).map_err(|_| Disconnected)
                }
                Routing::Broadcast => self.broadcast(record),
            },
        }
    }

    fn broadcast(&self, record: T) -> Result<(), Disconnected>
    where
        T: Clone,
    {
        let last = self.senders.len() - 1;
        for s in &self.senders[..last] {
            s.send(record.clone()).map_err(|_| Disconnected)?;
        }
        self.senders[last].send(record).map_err(|_| Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn routers_and_receivers(
        n: usize,
        strategy: Exchange<u64>,
    ) -> (Router<u64>, Vec<crossbeam::channel::Receiver<u64>>) {
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| bounded(64)).unzip();
        (Router::new(senders, strategy), receivers)
    }

    #[test]
    fn key_by_is_deterministic_per_key() {
        let (mut r, rx) = routers_and_receivers(4, Exchange::key_by(|x: &u64| *x));
        for v in [5u64, 5, 5, 9, 9] {
            r.route(v).unwrap();
        }
        drop(r);
        let counts: Vec<usize> = rx.iter().map(|c| c.try_iter().count()).collect();
        // key 5 → subtask 1, key 9 → subtask 1 (9 % 4 = 1)... both to 1.
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert_eq!(counts[1], 5);
    }

    #[test]
    fn rebalance_spreads_evenly() {
        let (mut r, rx) = routers_and_receivers(3, Exchange::Rebalance);
        for v in 0..9u64 {
            r.route(v).unwrap();
        }
        drop(r);
        for c in rx {
            assert_eq!(c.try_iter().count(), 3);
        }
    }

    #[test]
    fn broadcast_copies_to_all() {
        let (mut r, rx) = routers_and_receivers(3, Exchange::Broadcast);
        r.route(7).unwrap();
        r.route(8).unwrap();
        drop(r);
        for c in rx {
            assert_eq!(c.try_iter().collect::<Vec<_>>(), vec![7, 8]);
        }
    }

    #[test]
    fn per_record_mixes_keyed_and_broadcast() {
        // Even records keyed, odd records broadcast.
        let (mut r, rx) = routers_and_receivers(
            3,
            Exchange::per_record(|x: &u64| {
                if x.is_multiple_of(2) {
                    Routing::Key(*x)
                } else {
                    Routing::Broadcast
                }
            }),
        );
        r.route(6).unwrap(); // key 6 → subtask 0
        r.route(1).unwrap(); // broadcast
        drop(r);
        let got: Vec<Vec<u64>> = rx.iter().map(|c| c.try_iter().collect()).collect();
        assert_eq!(got[0], vec![6, 1]);
        assert_eq!(got[1], vec![1]);
        assert_eq!(got[2], vec![1]);
    }

    #[test]
    fn dynamic_follows_table_swaps_and_falls_back() {
        let table = Arc::new(RoutingTable::new());
        let (mut r, rx) = routers_and_receivers(
            4,
            Exchange::dynamic(Arc::clone(&table), |x: &u64| {
                if *x == u64::MAX {
                    Routing::Broadcast
                } else {
                    Routing::Key(*x)
                }
            }),
        );
        r.route(6).unwrap(); // unmapped: hash fallback 6 % 4 = 2
        table.install(1, std::collections::HashMap::from([(6u64, 0usize)]), 1);
        r.route(6).unwrap(); // mapped: subtask 0
        r.route(u64::MAX).unwrap(); // broadcast unaffected by the table
        drop(r);
        let got: Vec<Vec<u64>> = rx.iter().map(|c| c.try_iter().collect()).collect();
        assert_eq!(got[0], vec![6, u64::MAX]);
        assert_eq!(got[2], vec![6, u64::MAX]);
        assert_eq!(got[1], vec![u64::MAX]);
        assert_eq!(got[3], vec![u64::MAX]);
    }

    #[test]
    fn route_fails_when_downstream_dropped() {
        let (mut r, rx) = routers_and_receivers(2, Exchange::Rebalance);
        drop(rx);
        assert!(r.route(1).is_err());
    }

    #[test]
    fn subtask_clones_stagger_round_robin() {
        let (r, rx) = routers_and_receivers(2, Exchange::Rebalance);
        let mut r0 = r.clone_for_subtask(0);
        let mut r1 = r.clone_for_subtask(1);
        r0.route(10).unwrap(); // → subtask 0
        r1.route(20).unwrap(); // → subtask 1 (staggered start)
        drop((r, r0, r1));
        assert_eq!(rx[0].try_iter().collect::<Vec<_>>(), vec![10]);
        assert_eq!(rx[1].try_iter().collect::<Vec<_>>(), vec![20]);
    }
}
