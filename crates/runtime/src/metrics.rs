//! Per-snapshot latency and throughput measurement.
//!
//! The paper reports two performance measures (§7): the **average latency**
//! per snapshot (time from a snapshot entering the pipeline to its results
//! being emitted) and the **throughput** in snapshots processed per second
//! (tps). `PipelineMetrics` is a thread-safe recorder shared by the ingest
//! and sink stages.

use crate::obs::Histogram;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    ingest: HashMap<u32, Instant>,
    /// Cumulative log-bucketed latency distribution. Constant memory and
    /// O(buckets) reporting regardless of run length — `report()` runs on
    /// every `STATUS` request, so it must never sort a sample window.
    latency: Histogram,
    /// Total snapshots completed (ingest + done), across the whole run.
    completed: usize,
    first_done: Option<Instant>,
    last_done: Option<Instant>,
    /// Records that arrived after their snapshot sealed and were dropped.
    late_records: u64,
    /// Largest snapshot time that entered the pipeline.
    max_ingested: Option<u32>,
    /// Largest snapshot time fully processed.
    max_sealed: Option<u32>,
}

/// A cloneable, thread-safe latency/throughput recorder keyed by snapshot
/// time.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    inner: Arc<Mutex<Inner>>,
}

impl PipelineMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks snapshot `t` as having entered the pipeline.
    pub fn mark_ingest(&self, t: u32) {
        let mut inner = self.inner.lock();
        inner.ingest.entry(t).or_insert_with(Instant::now);
        inner.max_ingested = Some(inner.max_ingested.map_or(t, |m| m.max(t)));
    }

    /// Marks snapshot `t` as fully processed (results emitted).
    pub fn mark_done(&self, t: u32) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if let Some(start) = inner.ingest.remove(&t) {
            inner.completed += 1;
            inner.latency.record(now - start);
        }
        inner.first_done.get_or_insert(now);
        inner.last_done = Some(now);
        inner.max_sealed = Some(inner.max_sealed.map_or(t, |m| m.max(t)));
    }

    /// Counts records dropped for arriving after their snapshot sealed.
    pub fn mark_late(&self, n: u64) {
        self.inner.lock().late_records += n;
    }

    /// Rehydrates the cumulative gauges from a checkpoint so a restored
    /// pipeline's observability continues where the old one stopped instead
    /// of resetting to zero. Latency samples are wall-clock and cannot
    /// meaningfully survive a process boundary; they restart empty.
    pub fn restore(&self, progress: &icpe_types::ProgressCheckpoint) {
        let mut inner = self.inner.lock();
        inner.completed = progress.snapshots_completed as usize;
        inner.late_records = progress.late_records;
        // At a consistent cut nothing is in flight: everything ingested has
        // sealed, so both frontiers resume at the sealed frontier and any
        // in-flight ingest marks from before the cut are void (in-process
        // recovery reuses the same metrics handle across generations).
        inner.ingest.clear();
        inner.max_ingested = progress.max_sealed;
        inner.max_sealed = progress.max_sealed;
    }

    /// Live position of the stream: how far ingestion has advanced, how far
    /// processing has caught up, and the resulting per-stage lag — the
    /// serving layer's health gauges.
    pub fn progress(&self) -> StreamProgress {
        let inner = self.inner.lock();
        StreamProgress {
            max_ingested: inner.max_ingested,
            max_sealed: inner.max_sealed,
            in_flight: inner.ingest.len(),
            late_records: inner.late_records,
        }
    }

    /// Summarizes what was recorded so far. O(buckets) — never O(samples):
    /// mean and max come exact from the histogram's sum/max cells, the
    /// percentiles from a bucket walk.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock();
        let lat = inner.latency.snapshot();
        let span = match (inner.first_done, inner.last_done) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => Duration::ZERO,
        };
        let throughput = if span.is_zero() || inner.completed < 2 {
            f64::NAN
        } else {
            // First completion starts the clock, so completed-1 completions
            // happen within `span`.
            (inner.completed - 1) as f64 / span.as_secs_f64()
        };
        MetricsReport {
            snapshots: inner.completed,
            avg_latency: lat.mean(),
            p50_latency: lat.quantile(0.50),
            p95_latency: lat.quantile(0.95),
            max_latency: lat.max(),
            throughput_tps: throughput,
            late_records: inner.late_records,
        }
    }
}

/// Live stream-position gauges (see [`PipelineMetrics::progress`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamProgress {
    /// Largest snapshot time that entered the pipeline, if any.
    pub max_ingested: Option<u32>,
    /// Largest snapshot time fully processed, if any.
    pub max_sealed: Option<u32>,
    /// Snapshots currently between ingest and completion.
    pub in_flight: usize,
    /// Records dropped for arriving after their snapshot sealed.
    pub late_records: u64,
}

impl StreamProgress {
    /// Snapshots of lag between ingestion and completed processing.
    pub fn lag(&self) -> u32 {
        match (self.max_ingested, self.max_sealed) {
            (Some(i), Some(s)) => i.saturating_sub(s),
            (Some(i), None) => i.saturating_add(1),
            _ => 0,
        }
    }
}

/// Summary statistics over the recorded snapshots. Counts, mean, and max
/// are cumulative and exact over the whole run; the percentiles are
/// log-bucketed (≤ 25 % relative error) so reporting stays O(buckets) no
/// matter how long the server has been sealing snapshots.
#[derive(Debug, Clone, Copy)]
pub struct MetricsReport {
    /// Number of snapshots with both ingest and done marks.
    pub snapshots: usize,
    /// Mean end-to-end latency.
    pub avg_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// Worst latency.
    pub max_latency: Duration,
    /// Snapshots per second between the first and last completion
    /// (`NaN` when fewer than two snapshots completed).
    pub throughput_tps: f64,
    /// Records dropped for arriving after their snapshot sealed.
    pub late_records: u64,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} snapshots | avg {:.3} ms | p50 {:.3} ms | p95 {:.3} ms | max {:.3} ms | {:.1} tps",
            self.snapshots,
            self.avg_latency.as_secs_f64() * 1e3,
            self.p50_latency.as_secs_f64() * 1e3,
            self.p95_latency.as_secs_f64() * 1e3,
            self.max_latency.as_secs_f64() * 1e3,
            self.throughput_tps,
        )?;
        if self.late_records > 0 {
            write!(f, " | {} late dropped", self.late_records)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let m = PipelineMetrics::new();
        let r = m.report();
        assert_eq!(r.snapshots, 0);
        assert_eq!(r.avg_latency, Duration::ZERO);
        assert!(r.throughput_tps.is_nan());
    }

    #[test]
    fn latency_is_recorded_per_snapshot() {
        let m = PipelineMetrics::new();
        m.mark_ingest(1);
        m.mark_ingest(2);
        std::thread::sleep(Duration::from_millis(2));
        m.mark_done(1);
        m.mark_done(2);
        let r = m.report();
        assert_eq!(r.snapshots, 2);
        assert!(r.avg_latency >= Duration::from_millis(2));
        assert!(r.max_latency >= r.p50_latency);
    }

    #[test]
    fn done_without_ingest_is_ignored_for_latency() {
        let m = PipelineMetrics::new();
        m.mark_done(9);
        assert_eq!(m.report().snapshots, 0);
    }

    #[test]
    fn duplicate_ingest_keeps_first_timestamp() {
        let m = PipelineMetrics::new();
        m.mark_ingest(1);
        std::thread::sleep(Duration::from_millis(2));
        m.mark_ingest(1); // ignored
        m.mark_done(1);
        assert!(m.report().avg_latency >= Duration::from_millis(2));
    }

    #[test]
    fn latency_history_is_cumulative_in_constant_memory() {
        // Far more samples than the old 8192-sample sliding window: the
        // histogram keeps the full cumulative distribution in constant
        // memory, and reporting no longer sorts anything.
        let m = PipelineMetrics::new();
        let n = 50_000u32;
        for t in 0..n {
            m.mark_ingest(t);
            m.mark_done(t);
        }
        let r = m.report();
        assert_eq!(r.snapshots, n as usize, "count stays cumulative");
        assert_eq!(m.inner.lock().latency.snapshot().count(), n as u64);
        assert!(r.p50_latency <= r.p95_latency);
        assert!(r.p95_latency <= r.max_latency);
    }

    #[test]
    fn restore_rehydrates_cumulative_gauges() {
        let m = PipelineMetrics::new();
        m.restore(&icpe_types::ProgressCheckpoint {
            snapshots_completed: 40,
            late_records: 3,
            max_sealed: Some(39),
        });
        let p = m.progress();
        assert_eq!(p.late_records, 3);
        assert_eq!(p.max_sealed, Some(39));
        assert_eq!(p.max_ingested, Some(39));
        assert_eq!(p.lag(), 0, "nothing in flight at a consistent cut");
        assert_eq!(m.report().snapshots, 40);
        // New work keeps accumulating on top of the restored base.
        m.mark_ingest(40);
        m.mark_done(40);
        assert_eq!(m.report().snapshots, 41);
        assert_eq!(m.progress().max_sealed, Some(40));
    }

    #[test]
    fn shared_across_threads() {
        let m = PipelineMetrics::new();
        let m2 = m.clone();
        for t in 0..50 {
            m.mark_ingest(t);
        }
        let h = std::thread::spawn(move || {
            for t in 0..50 {
                m2.mark_done(t);
            }
        });
        h.join().unwrap();
        let r = m.report();
        assert_eq!(r.snapshots, 50);
        assert!(r.throughput_tps > 0.0);
    }
}
