//! Per-snapshot latency and throughput measurement.
//!
//! The paper reports two performance measures (§7): the **average latency**
//! per snapshot (time from a snapshot entering the pipeline to its results
//! being emitted) and the **throughput** in snapshots processed per second
//! (tps). `PipelineMetrics` is a thread-safe recorder shared by the ingest
//! and sink stages.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    ingest: HashMap<u32, Instant>,
    latencies: Vec<(u32, Duration)>,
    first_done: Option<Instant>,
    last_done: Option<Instant>,
}

/// A cloneable, thread-safe latency/throughput recorder keyed by snapshot
/// time.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    inner: Arc<Mutex<Inner>>,
}

impl PipelineMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks snapshot `t` as having entered the pipeline.
    pub fn mark_ingest(&self, t: u32) {
        let mut inner = self.inner.lock();
        inner.ingest.entry(t).or_insert_with(Instant::now);
    }

    /// Marks snapshot `t` as fully processed (results emitted).
    pub fn mark_done(&self, t: u32) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if let Some(start) = inner.ingest.remove(&t) {
            inner.latencies.push((t, now - start));
        }
        inner.first_done.get_or_insert(now);
        inner.last_done = Some(now);
    }

    /// Summarizes what was recorded so far.
    pub fn report(&self) -> MetricsReport {
        let inner = self.inner.lock();
        let mut lat: Vec<Duration> = inner.latencies.iter().map(|&(_, d)| d).collect();
        lat.sort_unstable();
        let count = lat.len();
        let avg = if count == 0 {
            Duration::ZERO
        } else {
            lat.iter().sum::<Duration>() / count as u32
        };
        let pct = |p: f64| -> Duration {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                lat[((lat.len() - 1) as f64 * p) as usize]
            }
        };
        let span = match (inner.first_done, inner.last_done) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => Duration::ZERO,
        };
        let throughput = if span.is_zero() || count < 2 {
            f64::NAN
        } else {
            // First completion starts the clock, so count-1 completions
            // happen within `span`.
            (count - 1) as f64 / span.as_secs_f64()
        };
        MetricsReport {
            snapshots: count,
            avg_latency: avg,
            p50_latency: pct(0.50),
            p95_latency: pct(0.95),
            max_latency: lat.last().copied().unwrap_or(Duration::ZERO),
            throughput_tps: throughput,
        }
    }
}

/// Summary statistics over the recorded snapshots.
#[derive(Debug, Clone, Copy)]
pub struct MetricsReport {
    /// Number of snapshots with both ingest and done marks.
    pub snapshots: usize,
    /// Mean end-to-end latency.
    pub avg_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// Worst latency.
    pub max_latency: Duration,
    /// Snapshots per second between the first and last completion
    /// (`NaN` when fewer than two snapshots completed).
    pub throughput_tps: f64,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} snapshots | avg {:.3} ms | p50 {:.3} ms | p95 {:.3} ms | max {:.3} ms | {:.1} tps",
            self.snapshots,
            self.avg_latency.as_secs_f64() * 1e3,
            self.p50_latency.as_secs_f64() * 1e3,
            self.p95_latency.as_secs_f64() * 1e3,
            self.max_latency.as_secs_f64() * 1e3,
            self.throughput_tps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let m = PipelineMetrics::new();
        let r = m.report();
        assert_eq!(r.snapshots, 0);
        assert_eq!(r.avg_latency, Duration::ZERO);
        assert!(r.throughput_tps.is_nan());
    }

    #[test]
    fn latency_is_recorded_per_snapshot() {
        let m = PipelineMetrics::new();
        m.mark_ingest(1);
        m.mark_ingest(2);
        std::thread::sleep(Duration::from_millis(2));
        m.mark_done(1);
        m.mark_done(2);
        let r = m.report();
        assert_eq!(r.snapshots, 2);
        assert!(r.avg_latency >= Duration::from_millis(2));
        assert!(r.max_latency >= r.p50_latency);
    }

    #[test]
    fn done_without_ingest_is_ignored_for_latency() {
        let m = PipelineMetrics::new();
        m.mark_done(9);
        assert_eq!(m.report().snapshots, 0);
    }

    #[test]
    fn duplicate_ingest_keeps_first_timestamp() {
        let m = PipelineMetrics::new();
        m.mark_ingest(1);
        std::thread::sleep(Duration::from_millis(2));
        m.mark_ingest(1); // ignored
        m.mark_done(1);
        assert!(m.report().avg_latency >= Duration::from_millis(2));
    }

    #[test]
    fn shared_across_threads() {
        let m = PipelineMetrics::new();
        let m2 = m.clone();
        for t in 0..50 {
            m.mark_ingest(t);
        }
        let h = std::thread::spawn(move || {
            for t in 0..50 {
                m2.mark_done(t);
            }
        });
        h.join().unwrap();
        let r = m.report();
        assert_eq!(r.snapshots, 50);
        assert!(r.throughput_tps > 0.0);
    }
}
