//! Deterministic fault injection (the chaos harness) and the typed
//! failure report workers send to a supervisor.
//!
//! A [`FaultPlan`] is a finite list of [`FaultPoint`]s, each keyed by the
//! *logical* position where it fires — stage name, subtask index, and a
//! per-subtask batch (or send / checkpoint) ordinal — never by wall-clock
//! time. Two runs over the same input with the same plan therefore fault
//! at exactly the same record boundary, which is what lets the chaos
//! equivalence suite compare a self-healed run against an uninterrupted
//! one. Every point is one-shot: it fires at most once per plan *instance*
//! (an `AtomicBool` latch), so a pipeline relaunched around the same
//! `Arc<FaultPlan>` does not re-trigger the fault it just recovered from.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What happens when a fault point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the subtask worker (supervised workers report and exit;
    /// unsupervised ones propagate to the driver as before).
    Panic,
    /// Stall the worker for this many milliseconds, then continue —
    /// exercises backpressure and barrier alignment under a slow stage.
    Stall(u64),
    /// Delay one outbound exchange send by this many milliseconds.
    DelaySend(u64),
    /// Silently drop one outbound exchange batch. **Loses data by
    /// design** — used to test detection, never equivalence.
    DropSend,
    /// Fail the next matching checkpoint capture/write.
    CheckpointFail,
    /// Torn-write the next matching checkpoint (the file is truncated
    /// mid-payload, as if the process died during the write).
    CheckpointTorn,
}

/// One armed fault: fires when execution reaches the keyed position.
#[derive(Debug)]
pub struct FaultPoint {
    /// Stage name the fault targets (e.g. `"grid-query"`); ignored for
    /// checkpoint faults.
    pub stage: String,
    /// Subtask index within the stage; ignored for checkpoint faults.
    pub subtask: usize,
    /// Per-subtask ordinal: the n-th batch processed (worker faults), the
    /// n-th batch sent (send faults), or the checkpoint sequence number
    /// (checkpoint faults). Zero-based except checkpoint seqs, which use
    /// the pipeline's own numbering.
    pub ordinal: u64,
    /// What to do there.
    pub kind: FaultKind,
    fired: AtomicBool,
}

impl FaultPoint {
    fn fire_once(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }

    /// Whether this point has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

/// A deterministic set of fault points, shared (via `Arc`) by every worker
/// of every generation of a pipeline.
#[derive(Debug, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault point (builder style).
    pub fn point(
        mut self,
        stage: impl Into<String>,
        subtask: usize,
        ordinal: u64,
        kind: FaultKind,
    ) -> FaultPlan {
        self.points.push(FaultPoint {
            stage: stage.into(),
            subtask,
            ordinal,
            kind,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Wraps the plan for sharing across workers and generations.
    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(self)
    }

    /// The armed points (for reporting / assertions).
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// True when every point has fired.
    pub fn exhausted(&self) -> bool {
        self.points.iter().all(FaultPoint::fired)
    }

    /// Consulted by a worker before processing its `batch`-th input batch.
    /// Returns a [`FaultKind::Panic`] or [`FaultKind::Stall`] to apply,
    /// firing the point.
    pub fn worker_fault(&self, stage: &str, subtask: usize, batch: u64) -> Option<FaultKind> {
        self.match_fire(stage, subtask, batch, |k| {
            matches!(k, FaultKind::Panic | FaultKind::Stall(_))
        })
    }

    /// Consulted by an exchange router before its `send`-th outbound batch
    /// from (`stage`, `subtask`). Returns a [`FaultKind::DelaySend`] or
    /// [`FaultKind::DropSend`] to apply, firing the point.
    pub fn send_fault(&self, stage: &str, subtask: usize, send: u64) -> Option<FaultKind> {
        self.match_fire(stage, subtask, send, |k| {
            matches!(k, FaultKind::DelaySend(_) | FaultKind::DropSend)
        })
    }

    /// Consulted before capturing/writing checkpoint `seq`. Returns a
    /// [`FaultKind::CheckpointFail`] or [`FaultKind::CheckpointTorn`] to
    /// apply, firing the point. Stage and subtask keys are ignored here —
    /// a checkpoint is a whole-pipeline cut.
    pub fn checkpoint_fault(&self, seq: u64) -> Option<FaultKind> {
        for p in &self.points {
            let matches_kind = matches!(
                p.kind,
                FaultKind::CheckpointFail | FaultKind::CheckpointTorn
            );
            if matches_kind && p.ordinal == seq && p.fire_once() {
                return Some(p.kind);
            }
        }
        None
    }

    fn match_fire(
        &self,
        stage: &str,
        subtask: usize,
        ordinal: u64,
        want: impl Fn(FaultKind) -> bool,
    ) -> Option<FaultKind> {
        for p in &self.points {
            if want(p.kind)
                && p.stage == stage
                && p.subtask == subtask
                && p.ordinal == ordinal
                && p.fire_once()
            {
                return Some(p.kind);
            }
        }
        None
    }

    /// Parses a compact fault spec, for wiring plans through environment
    /// variables (CI smoke jobs): a `;`-separated list of points, each
    ///
    /// ```text
    /// panic@STAGE:SUBTASK:BATCH
    /// stall@STAGE:SUBTASK:BATCH:MILLIS
    /// delay@STAGE:SUBTASK:SEND:MILLIS
    /// drop@STAGE:SUBTASK:SEND
    /// ckptfail@SEQ
    /// ckpttorn@SEQ
    /// ```
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault spec `{part}`: missing `@`"))?;
            let fields: Vec<&str> = rest.split(':').collect();
            let num = |s: &str| -> Result<u64, String> {
                s.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("fault spec `{part}`: {e}"))
            };
            plan = match (kind.trim(), fields.as_slice()) {
                ("panic", [stage, sub, batch]) => {
                    plan.point(*stage, num(sub)? as usize, num(batch)?, FaultKind::Panic)
                }
                ("stall", [stage, sub, batch, ms]) => plan.point(
                    *stage,
                    num(sub)? as usize,
                    num(batch)?,
                    FaultKind::Stall(num(ms)?),
                ),
                ("delay", [stage, sub, send, ms]) => plan.point(
                    *stage,
                    num(sub)? as usize,
                    num(send)?,
                    FaultKind::DelaySend(num(ms)?),
                ),
                ("drop", [stage, sub, send]) => {
                    plan.point(*stage, num(sub)? as usize, num(send)?, FaultKind::DropSend)
                }
                ("ckptfail", [seq]) => plan.point("", 0, num(seq)?, FaultKind::CheckpointFail),
                ("ckpttorn", [seq]) => plan.point("", 0, num(seq)?, FaultKind::CheckpointTorn),
                _ => return Err(format!("fault spec `{part}`: unknown form")),
            };
        }
        Ok(plan)
    }
}

/// A worker's typed report that it died: sent to the supervisor channel
/// instead of unwinding across the runtime when supervision is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFailure {
    /// Stage name of the dead worker.
    pub stage: String,
    /// Subtask index of the dead worker.
    pub subtask: usize,
    /// Rendered panic payload (best effort).
    pub cause: String,
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage `{}` subtask {} failed: {}",
            self.stage, self.subtask, self.cause
        )
    }
}

/// Renders a caught panic payload as a string (best effort).
pub fn panic_cause(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_fire_exactly_once() {
        let plan = FaultPlan::new().point("grid-query", 1, 2, FaultKind::Panic);
        assert_eq!(plan.worker_fault("grid-query", 1, 1), None);
        assert_eq!(plan.worker_fault("grid-query", 0, 2), None);
        assert_eq!(plan.worker_fault("sync-shard", 1, 2), None);
        assert_eq!(
            plan.worker_fault("grid-query", 1, 2),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            plan.worker_fault("grid-query", 1, 2),
            None,
            "one-shot: the relaunched generation must not re-fault"
        );
        assert!(plan.exhausted());
    }

    #[test]
    fn kinds_route_to_their_hook() {
        let plan = FaultPlan::new()
            .point("a", 0, 0, FaultKind::Panic)
            .point("a", 0, 0, FaultKind::DropSend)
            .point("", 0, 3, FaultKind::CheckpointTorn);
        // The send hook must not consume the panic point and vice versa.
        assert_eq!(plan.send_fault("a", 0, 0), Some(FaultKind::DropSend));
        assert_eq!(plan.worker_fault("a", 0, 0), Some(FaultKind::Panic));
        assert_eq!(plan.checkpoint_fault(2), None);
        assert_eq!(plan.checkpoint_fault(3), Some(FaultKind::CheckpointTorn));
        assert_eq!(plan.checkpoint_fault(3), None);
    }

    #[test]
    fn spec_round_trip() {
        let plan = FaultPlan::from_spec("panic@grid-query:0:2; stall@sync-shard:1:0:50;ckptfail@4")
            .unwrap();
        assert_eq!(plan.points().len(), 3);
        assert_eq!(
            plan.worker_fault("grid-query", 0, 2),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            plan.worker_fault("sync-shard", 1, 0),
            Some(FaultKind::Stall(50))
        );
        assert_eq!(plan.checkpoint_fault(4), Some(FaultKind::CheckpointFail));
        assert!(FaultPlan::from_spec("boom@x").is_err());
        assert!(FaultPlan::from_spec("panic@x:y:z").is_err());
    }

    #[test]
    fn panic_cause_renders_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_cause(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_cause(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(7u32);
        assert_eq!(panic_cause(s.as_ref()), "panic (non-string payload)");
    }
}
