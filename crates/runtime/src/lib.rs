//! # icpe-runtime — a minimal pipelined stream-processing runtime
//!
//! The paper deploys ICPE on Apache Flink, relying on three platform
//! primitives: **keyed partitioning** (`keyBy` on a grid key or trajectory
//! id), **pipelined tuple-at-a-time transfer** between operators, and
//! **operator-local state** in parallel subtasks. This crate provides exactly
//! those primitives as an in-process, multi-threaded dataflow:
//!
//! * [`Stream`] — a builder for linear dataflows; every stage runs `p`
//!   parallel subtasks on OS threads connected by bounded crossbeam channels
//!   (bounded = natural backpressure, Flink's pipelined transfer mode).
//!   Transfers are **vectorized**: channels carry micro-batches (`Vec<T>`)
//!   assembled by per-destination router buffers, amortizing channel
//!   synchronization exactly as Flink's network buffers amortize theirs;
//! * [`Exchange`] — the routing strategy between consecutive stages
//!   (key-hash, round-robin, or broadcast);
//! * [`Operator`] — the subtask logic: process one record (or one batch via
//!   [`Operator::process_batch`]), emit any number;
//! * [`TimeAligner`] — the paper's §4 stream-synchronization mechanism: the
//!   per-record *"last time"* link is chained to decide when a snapshot is
//!   complete and may be sealed, even under out-of-order arrival;
//! * [`PipelineMetrics`] — per-snapshot latency and throughput, the two
//!   measures reported in every experiment of the paper;
//! * [`MetricRegistry`] — the unified per-stage observability surface:
//!   atomic counters/gauges/histograms keyed `stage/subtask/name`, plus a
//!   bounded structured event journal. A [`Stream::instrument`]ed dataflow
//!   records per-batch processing time and records in/out at every stage
//!   and queue depth plus blocked-send time at every exchange hop.
//!
//! The "cluster" of the paper (1 master + 10 slaves) maps to stage
//! parallelism: Figure 14's `N` machines become `N` subtasks per stage.

pub mod aligner;
pub mod exchange;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod operator;
pub mod routing;
pub mod stream;

pub use aligner::{
    AlignOperator, AlignStats, AlignerConfig, AlignerStatus, Routed, ShardedAligner, TimeAligner,
};
pub use exchange::{Disconnected, Exchange, Routing};
pub use fault::{FaultKind, FaultPlan, FaultPoint, StageFailure};
pub use metrics::{MetricsReport, PipelineMetrics, StreamProgress};
pub use obs::{
    Counter, ExchangeObs, Gauge, Histogram, MetricRegistry, ObsEvent, ObsEventKind, StageObs,
};
pub use operator::{filter_fn, flat_map_fn, map_fn, Collector, Operator};
pub use routing::{RoutingStatus, RoutingTable};
pub use stream::{
    ingest_channel, RuntimeConfig, Stream, StreamHandle, TreeSlot, DEFAULT_BATCH_SIZE,
};
