//! The operator abstraction: per-subtask record processing logic.

/// Collects the records an operator emits; the runtime drains it into the
/// downstream router after every call.
#[derive(Debug)]
pub struct Collector<O> {
    buf: Vec<O>,
}

impl<O> Default for Collector<O> {
    fn default() -> Self {
        Collector::new()
    }
}

impl<O> Collector<O> {
    /// An empty collector. Public so operators can be driven directly in
    /// tests; inside a dataflow the runtime owns the collector.
    pub fn new() -> Self {
        Collector { buf: Vec::new() }
    }

    /// Emits one record downstream.
    #[inline]
    pub fn emit(&mut self, record: O) {
        self.buf.push(record);
    }

    /// Emits every record of an iterator.
    #[inline]
    pub fn emit_all(&mut self, records: impl IntoIterator<Item = O>) {
        self.buf.extend(records);
    }

    pub(crate) fn drain(&mut self) -> std::vec::Drain<'_, O> {
        self.buf.drain(..)
    }
}

/// A streaming operator: one instance runs per parallel subtask and owns its
/// local state (mirroring a Flink keyed/operator state scope).
pub trait Operator<I, O>: Send {
    /// Processes one input record; emits any number of outputs.
    fn process(&mut self, input: I, out: &mut Collector<O>);

    /// Processes one micro-batch of input records — the entry point the
    /// vectorized runtime actually calls. Defaults to unrolling into
    /// [`Operator::process`], so operators are batching-agnostic unless
    /// they override this to amortize per-batch work (scratch reuse, one
    /// lock hold per batch, …). Overrides must preserve record order.
    fn process_batch(&mut self, batch: Vec<I>, out: &mut Collector<O>) {
        for input in batch {
            self.process(input, out);
        }
    }

    /// Called once when the input stream is exhausted; flush any state.
    fn finish(&mut self, _out: &mut Collector<O>) {}
}

/// A stateless 1→1 operator from a closure.
pub fn map_fn<I, O, F>(f: F) -> impl Operator<I, O>
where
    F: FnMut(I) -> O + Send,
{
    struct MapOp<F>(F);
    impl<I, O, F> Operator<I, O> for MapOp<F>
    where
        F: FnMut(I) -> O + Send,
    {
        fn process(&mut self, input: I, out: &mut Collector<O>) {
            out.emit((self.0)(input));
        }
    }
    MapOp(f)
}

/// A stateless 1→n operator from a closure returning an iterator.
pub fn flat_map_fn<I, O, It, F>(f: F) -> impl Operator<I, O>
where
    It: IntoIterator<Item = O>,
    F: FnMut(I) -> It + Send,
{
    struct FlatMapOp<F>(F);
    impl<I, O, It, F> Operator<I, O> for FlatMapOp<F>
    where
        It: IntoIterator<Item = O>,
        F: FnMut(I) -> It + Send,
    {
        fn process(&mut self, input: I, out: &mut Collector<O>) {
            out.emit_all((self.0)(input));
        }
    }
    FlatMapOp(f)
}

/// A stateless filter operator from a predicate.
pub fn filter_fn<I, F>(f: F) -> impl Operator<I, I>
where
    F: FnMut(&I) -> bool + Send,
{
    struct FilterOp<F>(F);
    impl<I, F> Operator<I, I> for FilterOp<F>
    where
        F: FnMut(&I) -> bool + Send,
    {
        fn process(&mut self, input: I, out: &mut Collector<I>) {
            if (self.0)(&input) {
                out.emit(input);
            }
        }
    }
    FilterOp(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_emit_and_drain() {
        let mut c = Collector::new();
        c.emit(1);
        c.emit_all([2, 3]);
        let drained: Vec<i32> = c.drain().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(c.drain().count(), 0);
    }

    #[test]
    fn map_fn_transforms() {
        let mut op = map_fn(|x: i32| x * 2);
        let mut c = Collector::new();
        op.process(21, &mut c);
        assert_eq!(c.drain().collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn flat_map_fn_expands() {
        let mut op = flat_map_fn(|x: i32| vec![x; x as usize]);
        let mut c = Collector::new();
        op.process(3, &mut c);
        assert_eq!(c.drain().collect::<Vec<_>>(), vec![3, 3, 3]);
        op.process(0, &mut c);
        assert_eq!(c.drain().count(), 0);
    }

    #[test]
    fn filter_fn_drops() {
        let mut op = filter_fn(|x: &i32| x % 2 == 0);
        let mut c = Collector::new();
        op.process(1, &mut c);
        op.process(2, &mut c);
        op.process(3, &mut c);
        op.process(4, &mut c);
        assert_eq!(c.drain().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn stateful_operator_keeps_state_across_calls() {
        struct Sum(i64);
        impl Operator<i64, i64> for Sum {
            fn process(&mut self, input: i64, _out: &mut Collector<i64>) {
                self.0 += input;
            }
            fn finish(&mut self, out: &mut Collector<i64>) {
                out.emit(self.0);
            }
        }
        let mut op = Sum(0);
        let mut c = Collector::new();
        for i in 1..=10 {
            op.process(i, &mut c);
        }
        assert_eq!(c.drain().count(), 0);
        op.finish(&mut c);
        assert_eq!(c.drain().collect::<Vec<_>>(), vec![55]);
    }
}
