//! Property-based proof that sharding the aligner head is invisible to
//! detection semantics: on randomized, out-of-order skewed workloads the
//! sharded TimeAligner + fused GridAllocate head seals the *exact same
//! pattern multiset* — and drops the *exact same late records* — as the
//! serial head (align_shards = 1, parallelism = 1), for all three
//! enumeration engines, across arbitrary shard counts, batch sizes, both
//! aggregation-tree shapes, and a checkpoint/restore cut that resumes on a
//! *different* shard count.
//!
//! Why this must hold: the seal decision is a global min-over-chains
//! frontier, and the sharded head keeps it global — the serial router owns
//! every chain and classifies each record Keep/Late in ingest order exactly
//! as the serial `TimeAligner` would, before any shard-parallel work
//! happens. The shards only buffer rows and run the stateless per-record
//! cell assignment; the merge tree reassembles per-time partials whose row
//! sets are disjoint by construction. Nothing downstream of the routing
//! decision can change *which* records participate, so the sealed pattern
//! multiset is pinned to the serial semantics.

use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_runtime::{AlignerConfig, TimeAligner};
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Canonical multiset form: every pattern (duplicates included) as a
/// sortable key.
fn multiset(patterns: &[Pattern]) -> Vec<(Vec<ObjectId>, Vec<Timestamp>)> {
    let mut out: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .iter()
        .map(|p| (p.objects.clone(), p.times.times().to_vec()))
        .collect();
    out.sort();
    out
}

/// 36 objects reporting every tick: 36 records per window.
const RECORDS_PER_TICK: usize = 36;

fn skewed_records(seed: u64, ticks: u32) -> Vec<GpsRecord> {
    HotspotGenerator::new(HotspotConfig {
        num_objects: RECORDS_PER_TICK,
        num_ticks: ticks,
        area: 120.0,
        num_sites: 9,
        zipf_s: 1.4,
        retarget_every: 12,
        speed: 10.0,
        seed,
        ..HotspotConfig::default()
    })
    .traces()
    .to_gps_records()
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Bounded arrival-order scramble: each record may arrive up to roughly two
/// windows away from its in-order slot — the everyday disorder the §4
/// last-time chaining exists to absorb.
fn scramble(records: &mut [GpsRecord], seed: u64) {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let n = records.len();
    for i in 0..n {
        let span = (xorshift(&mut s) % (2 * RECORDS_PER_TICK as u64)) as usize;
        let j = (i + span).min(n - 1);
        records.swap(i, j);
    }
}

/// Pulls every ~`every`-th record whose position lies in `src` and
/// re-inserts the group at `dest` — a partition of the input stream healing
/// long after the fact. Records displaced past the forced-seal horizon land
/// as genuine late arrivals at the min-over-frontiers boundary.
fn displace(
    records: Vec<GpsRecord>,
    seed: u64,
    src: std::ops::Range<usize>,
    dest: usize,
    every: u64,
) -> Vec<GpsRecord> {
    let mut s = seed | 1;
    let mut kept = Vec::with_capacity(records.len());
    let mut moved = Vec::new();
    for (i, r) in records.into_iter().enumerate() {
        if src.contains(&i) && xorshift(&mut s).is_multiple_of(every) {
            moved.push(r);
        } else {
            kept.push(r);
        }
    }
    let dest = dest.min(kept.len());
    kept.splice(dest..dest, moved);
    kept
}

/// The serial §4 oracle: feed the identical arrival sequence through a
/// plain single-threaded [`TimeAligner`] and report how many records it
/// drops as late. The sharded head must agree record-for-record.
fn serial_late_count(records: &[GpsRecord], aligner: AlignerConfig) -> u64 {
    let mut oracle = TimeAligner::new(aligner);
    let mut scratch = Vec::new();
    for r in records {
        oracle.push_into(*r, &mut scratch);
        scratch.clear();
    }
    oracle.late_dropped()
}

fn config(
    kind: EnumeratorKind,
    parallelism: usize,
    shards: usize,
    batch: usize,
    fanin: usize,
    aligner: AlignerConfig,
) -> IcpeConfig {
    IcpeConfig::builder()
        .constraints(Constraints::new(3, 6, 3, 2).expect("valid"))
        .epsilon(1.0)
        .min_pts(3)
        .parallelism(parallelism)
        .align_shards(shards)
        .sync_fanin(fanin)
        .enumerator(kind)
        .batch_size(batch)
        .aligner(aligner)
        // Migrate at the slightest imbalance, every window: the balancer now
        // runs in the snapshot-merge finalizer, so keeping it hot proves the
        // merge tree still presents it one coherent per-window view.
        .rebalance(BalancerConfig {
            theta: 1.01,
            cooldown_windows: 0,
            ..BalancerConfig::default()
        })
        .build()
        .expect("valid config")
}

/// Runs the pipeline pushing records in ingest chunks of `chunk` (1 = the
/// single-record `push` path), collecting every sealed pattern plus the
/// late-drop total.
fn run_collecting(config: &IcpeConfig, records: &[GpsRecord], chunk: usize) -> (Vec<Pattern>, u64) {
    let sink: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&sink);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            out.lock().unwrap().push(p);
        }
    });
    if chunk <= 1 {
        for r in records {
            live.push(*r).unwrap();
        }
    } else {
        for slice in records.chunks(chunk) {
            live.push_batch(slice.to_vec()).unwrap();
        }
    }
    let report = live.finish();
    let patterns = std::mem::take(&mut *sink.lock().unwrap());
    (patterns, report.late_records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded ≡ serial, all engines, arbitrary shard counts decoupled from
    /// the body parallelism, arbitrary batch and ingest-chunk sizes, both
    /// tree shapes (fanin 2 = the deepest snapshot-merge tree, N = the flat
    /// funnel), on out-of-order input. The baseline is the parallelism-1 /
    /// single-shard deployment whose head degenerates to the pre-sharding
    /// serial aligner.
    #[test]
    fn sharded_head_seals_identical_pattern_multisets(
        seed in 0u64..500,
        parallelism in 2usize..5,
        shards in 1usize..6,
        kind_idx in 0usize..3,
        batch in 1usize..64,
        chunk in 1usize..80,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let fanin = if deep_tree { 2 } else { shards.max(2) };
        let mut records = skewed_records(seed, 24);
        scramble(&mut records, seed ^ 0xA5A5);
        let aligner = AlignerConfig::default();
        let (want, want_late) =
            run_collecting(&config(kind, 1, 1, 1, 2, aligner), &records, 1);
        let (got, got_late) =
            run_collecting(&config(kind, parallelism, shards, batch, fanin, aligner), &records, chunk);
        prop_assert_eq!(
            got_late,
            want_late,
            "late-drop decisions diverged: kind {:?} shards {}",
            kind,
            shards
        );
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} shards {} batch {} chunk {} fanin {}",
            kind,
            parallelism,
            shards,
            batch,
            chunk,
            fanin
        );
    }

    /// A checkpoint cut mid-disorder, resumed on a *different* aligner shard
    /// count (and the other tree shape), still seals the uninterrupted
    /// serial multiset: the router piece carries the chains and the global
    /// frontier, the buffer-only shard pieces re-partition to whatever
    /// `hash_id(owner) % N'` says on the new deployment, and no sealed or
    /// buffered row is lost or doubled in the move.
    #[test]
    fn reshard_restore_matches_uninterrupted_serial(
        seed in 0u64..500,
        parallelism in 2usize..5,
        shards in 1usize..6,
        shard_delta in 1usize..5,
        kind_idx in 0usize..3,
        batch in 1usize..64,
        cut_windows in 8u32..16,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        // Guaranteed different shard count on resume (delta ∈ 1..=4 mod 5).
        let resume_shards = (shards - 1 + shard_delta) % 5 + 1;
        prop_assert_ne!(resume_shards, shards);
        let fanin = if deep_tree { 2 } else { shards.max(2) };
        let resume_fanin = if deep_tree { resume_shards.max(2) } else { 2 };
        let mut records = skewed_records(seed, 24);
        scramble(&mut records, seed ^ 0x5A5A);
        // Stragglers from the first twelve windows resurface at the end:
        // whatever the forced-seal horizon has passed by then must be
        // dropped identically on both sides of the cut.
        let records = displace(
            records,
            seed | 1,
            0..12 * RECORDS_PER_TICK,
            usize::MAX,
            5,
        );
        let aligner = AlignerConfig::default();
        let (want, want_late) =
            run_collecting(&config(kind, 1, 1, 1, 2, aligner), &records, 1);

        let cut = (cut_windows as usize * RECORDS_PER_TICK).min(records.len());
        let cfg = config(kind, parallelism, shards, batch, fanin, aligner);
        let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pre);
        let live = IcpePipeline::launch(&cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        for slice in records[..cut].chunks(batch) {
            live.push_batch(slice.to_vec()).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        prop_assert_eq!(ckpt.records_ingested as usize, cut, "exact record-granular cut");
        let delivered_before = pre.lock().unwrap().clone();
        drop(live); // crash: the end-of-stream flush is discarded

        let resume_cfg = config(kind, parallelism, resume_shards, batch, resume_fanin, aligner);
        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&resume_cfg, &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        for slice in records[cut..].chunks(batch) {
            resumed.push_batch(slice.to_vec()).unwrap();
        }
        let report = resumed.finish();

        prop_assert_eq!(
            report.late_records,
            want_late,
            "late total across the reshard cut must match the serial run"
        );
        let mut got = delivered_before;
        got.extend(post.lock().unwrap().clone());
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} shards {}→{} batch {} cut {} fanin {}→{}",
            kind,
            shards,
            resume_shards,
            batch,
            cut,
            fanin,
            resume_fanin
        );
    }
}

/// A tight horizon so displaced stragglers reliably cross the forced-seal
/// boundary: times lagging more than 6 intervals behind the newest witness
/// stop blocking, and anything resurfacing behind the sealed frontier must
/// drop.
const TIGHT: AlignerConfig = AlignerConfig {
    max_lag: 6,
    emit_empty: true,
    lateness: 2,
};

/// Late-data torture at the min-over-frontiers seal boundary: a partition
/// of the stream heals after the forced-seal horizon has passed it, and the
/// sharded head must make the *identical* drop decision for every straggler
/// that the serial `TimeAligner` makes — not merely a similar count on a
/// similar workload, but equality against the exact oracle on the exact
/// arrival sequence, across shard counts.
#[test]
fn late_boundary_drops_match_the_serial_aligner_oracle() {
    let mut records = skewed_records(11, 24);
    scramble(&mut records, 0xDECAF);
    let records = displace(records, 13, 0..14 * RECORDS_PER_TICK, usize::MAX, 5);
    let oracle = serial_late_count(&records, TIGHT);
    assert!(oracle > 0, "workload must actually exercise the late path");

    let (want, serial_late) =
        run_collecting(&config(EnumeratorKind::Fba, 1, 1, 1, 2, TIGHT), &records, 1);
    assert_eq!(
        serial_late, oracle,
        "the serial pipeline head is the oracle's twin"
    );
    for shards in [2usize, 4] {
        let (got, late) = run_collecting(
            &config(EnumeratorKind::Fba, 3, shards, 16, 2, TIGHT),
            &records,
            24,
        );
        assert_eq!(
            late, oracle,
            "shards {shards}: sharded head must drop exactly the oracle's set"
        );
        assert_eq!(multiset(&got), multiset(&want), "shards {shards}");
    }
}

/// Counter conservation across a reshard cycle: the per-shard checkpoint
/// pieces must *sum* to the serial totals (late drops land both before and
/// after the cut here), and restoring onto a different shard count must not
/// multiply them — merged totals are credited to the router piece exactly
/// once, and a second checkpoint after the reshard still reads the serial
/// count.
#[test]
fn late_counters_survive_a_reshard_cycle_without_multiplication() {
    let mut records = skewed_records(17, 28);
    scramble(&mut records, 0xBEEF);
    // Two partitions heal mid-stream: one before the cut, one after.
    let records = displace(
        records,
        19,
        0..6 * RECORDS_PER_TICK,
        18 * RECORDS_PER_TICK,
        3,
    );
    let records = displace(
        records,
        23,
        7 * RECORDS_PER_TICK..12 * RECORDS_PER_TICK,
        23 * RECORDS_PER_TICK,
        3,
    );
    let cut = 20 * RECORDS_PER_TICK;
    let oracle_cut = serial_late_count(&records[..cut], TIGHT);
    let oracle_full = serial_late_count(&records, TIGHT);
    assert!(oracle_cut > 0, "drops must land before the cut");
    assert!(oracle_full > oracle_cut, "and more after it");

    let cfg = config(EnumeratorKind::Fba, 3, 3, 16, 2, TIGHT);
    let live = IcpePipeline::launch(&cfg, |_| {});
    for slice in records[..cut].chunks(16) {
        live.push_batch(slice.to_vec()).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    assert_eq!(
        ckpt.aligner.late_dropped, oracle_cut,
        "merged shard pieces must sum to the serial drop count"
    );
    assert_eq!(
        ckpt.progress.late_records, oracle_cut,
        "progress mirrors the merged aligner counter"
    );
    drop(live);

    // Resume on a different shard count; the restored gauge resumes from
    // the cut instead of zero.
    let resume_cfg = config(EnumeratorKind::Fba, 3, 5, 16, 2, TIGHT);
    let resumed = IcpePipeline::launch_from(&resume_cfg, &ckpt, |_| {}).unwrap();
    assert_eq!(
        resumed
            .align_status()
            .expect("sharded head exposes gauges")
            .late_dropped,
        oracle_cut,
        "restored late gauge seeds from the checkpoint"
    );
    for slice in records[cut..].chunks(16) {
        resumed.push_batch(slice.to_vec()).unwrap();
    }
    let ckpt2 = resumed.checkpoint().unwrap();
    assert_eq!(
        ckpt2.aligner.late_dropped, oracle_full,
        "a reshard cycle must neither multiply nor lose late credit"
    );
    let report = resumed.finish();
    assert_eq!(report.late_records, oracle_full);
}

/// The head's gauges track the sharded deployment while it runs: shard
/// count, live chains, and a sealed frontier that has actually advanced.
#[test]
fn aligner_gauges_track_the_sharded_head() {
    let records = skewed_records(29, 24);
    let cfg = config(EnumeratorKind::Fba, 2, 4, 16, 2, AlignerConfig::default());
    let live = IcpePipeline::launch(&cfg, |_| {});
    for slice in records.chunks(16) {
        live.push_batch(slice.to_vec()).unwrap();
    }
    // A checkpoint round-trips through every stage, so the gauges published
    // on the router thread are current when it returns.
    let _ = live.checkpoint().unwrap();
    let status = live.align_status().expect("sharded head exposes gauges");
    assert_eq!(status.shards, 4);
    assert!(status.chains > 0, "36 live trajectories must register");
    assert!(status.sealed_up_to > 0, "frontier must have advanced");
    assert!(
        status.min_shard_frontier <= status.max_shard_frontier,
        "frontier range is ordered"
    );
    assert!(status.imbalance() >= 1.0);
    live.finish();
}
