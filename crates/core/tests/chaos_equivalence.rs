//! Chaos equivalence: the self-healing pipeline under deterministic fault
//! injection delivers **exactly** what an uninterrupted run delivers.
//!
//! The harness (see `icpe_runtime::FaultPlan`) keys every fault to a
//! logical position — stage, subtask, per-subtask batch ordinal — so a
//! supervised run and its baseline process identical inputs and the fault
//! fires at an identical record boundary every time. The supervised run
//! then must:
//!
//! * seal the **identical pattern multiset** (duplicates included — a
//!   pattern delivered twice across the recovery cut would show up here),
//! * seal every snapshot **exactly once**,
//! * conserve the progress counters (`snapshots` in the final report),
//! * end `Healthy`, with the restart on the books and every armed fault
//!   point fired.
//!
//! The matrix crosses fault kinds (worker panic, worker stall, delayed
//! exchange send) and fault sites (align-route, grid-query, sync-shard,
//! enumerate) with all three enumeration engines (BA / FBA / VBA) and
//! parallelism 1 / 2 / 4; a proptest then randomizes the fault site over
//! randomized workloads.

use icpe_core::{
    EnumeratorKind, HealthState, IcpeConfig, IcpePipeline, PipelineEvent, Supervision,
};
use icpe_runtime::FaultPlan;
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const SNAPSHOTS: usize = 12;

fn records(seed: u64) -> Vec<GpsRecord> {
    icpe_gen::GroupWalkGenerator::new(icpe_gen::GroupWalkConfig {
        num_objects: 18,
        num_groups: 2,
        group_size: 4,
        num_snapshots: SNAPSHOTS as u32,
        seed,
        ..icpe_gen::GroupWalkConfig::default()
    })
    .traces()
    .to_gps_records()
}

/// Canonical multiset form: every delivery (duplicates included) as a
/// sortable key.
fn multiset(patterns: &[Pattern]) -> Vec<(Vec<ObjectId>, Vec<Timestamp>)> {
    let mut out: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .iter()
        .map(|p| (p.objects.clone(), p.times.times().to_vec()))
        .collect();
    out.sort();
    out
}

/// Small batches keep fault-point batch ordinals dense (every generation
/// sees several batches per stage per snapshot), so injected faults fire
/// deterministically early in the stream.
fn config(kind: EnumeratorKind, n: usize, fault: Option<&str>) -> IcpeConfig {
    let mut b = IcpeConfig::builder()
        .constraints(Constraints::new(3, 4, 2, 2).unwrap())
        .epsilon(2.5)
        .min_pts(3)
        .parallelism(n)
        .batch_size(4)
        .enumerator(kind);
    if let Some(spec) = fault {
        b = b
            .supervised(Supervision {
                backoff: std::time::Duration::from_millis(1),
                checkpoint_every_records: Some(24),
                ..Supervision::default()
            })
            .fault_plan(Arc::new(FaultPlan::from_spec(spec).unwrap()));
    }
    b.build().unwrap()
}

struct RunOutput {
    patterns: Vec<Pattern>,
    seals: Vec<u32>,
    snapshots: u64,
    final_health: HealthState,
    restarts: u64,
}

fn run(config: &IcpeConfig, records: &[GpsRecord]) -> RunOutput {
    let patterns: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let seals: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let (p, s) = (Arc::clone(&patterns), Arc::clone(&seals));
    let live = IcpePipeline::launch(config, move |event| match event {
        PipelineEvent::Pattern(pat) => p.lock().unwrap().push(pat),
        PipelineEvent::SnapshotSealed { time } => s.lock().unwrap().push(time),
    });
    let health = live.health_handle();
    let obs = live.obs().clone();
    for r in records {
        live.push(*r).unwrap();
    }
    let report = live.finish();
    let out = RunOutput {
        patterns: patterns.lock().unwrap().clone(),
        seals: seals.lock().unwrap().clone(),
        snapshots: report.snapshots as u64,
        final_health: health.get(),
        restarts: obs
            .counter("supervisor", 0, "pipeline_restarts_total")
            .get(),
    };
    out
}

/// One supervised-vs-baseline comparison under `spec`.
fn assert_chaos_equivalence(kind: EnumeratorKind, n: usize, spec: &str, seed: u64) {
    let input = records(seed);
    let baseline = run(&config(kind, n, None), &input);
    assert!(
        !baseline.patterns.is_empty(),
        "workload must plant detectable groups ({kind:?} n={n} seed={seed})"
    );

    let chaotic = config(kind, n, Some(spec));
    let plan = chaotic.runtime.fault.clone().unwrap();
    let healed = run(&chaotic, &input);

    assert!(
        plan.exhausted(),
        "a fault point never fired ({kind:?} n={n} spec={spec}): {:?}",
        plan.points()
            .iter()
            .filter(|p| !p.fired())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        multiset(&healed.patterns),
        multiset(&baseline.patterns),
        "healed multiset diverged ({kind:?} n={n} spec={spec})"
    );
    let mut seals = healed.seals.clone();
    seals.sort_unstable();
    assert_eq!(
        seals,
        (0..SNAPSHOTS as u32).collect::<Vec<_>>(),
        "every snapshot seals exactly once ({kind:?} n={n} spec={spec})"
    );
    assert_eq!(
        healed.snapshots, SNAPSHOTS as u64,
        "progress counters conserved ({kind:?} n={n} spec={spec})"
    );
    assert_eq!(
        healed.final_health,
        HealthState::Healthy,
        "pipeline ends healthy ({kind:?} n={n} spec={spec})"
    );
}

const ENGINES: [EnumeratorKind; 3] = [
    EnumeratorKind::Baseline,
    EnumeratorKind::Fba,
    EnumeratorKind::Vba,
];

#[test]
fn panic_mid_stream_heals_identically_across_engines_and_parallelism() {
    for kind in ENGINES {
        // (parallelism, fault site): every pipeline stage takes a hit
        // somewhere in the matrix, including a subtask other than 0.
        for (n, spec) in [
            (1, "panic@enumerate:0:1"),
            (2, "panic@grid-query:1:1"),
            (4, "panic@align-route:0:2"),
        ] {
            assert_chaos_equivalence(kind, n, spec, 0xC0FFEE);
        }
    }
}

#[test]
fn double_panic_and_stall_heal_identically() {
    // Two failures in one run (two recovery cycles), plus a stalled sync
    // shard exercising barrier alignment under a slow stage.
    assert_chaos_equivalence(
        EnumeratorKind::Fba,
        2,
        "panic@align-route:0:1;panic@enumerate:1:2;stall@sync-shard:1:0:25",
        0xC0FFEE,
    );
}

#[test]
fn delayed_exchange_send_is_invisible() {
    // DelaySend holds one outbound batch back without losing it — ordering
    // within a channel is preserved, so detection must not notice.
    assert_chaos_equivalence(
        EnumeratorKind::Vba,
        2,
        "delay@grid-query:0:1:30;panic@sync-merge-final:0:0",
        0xBEEF,
    );
}

#[test]
fn restart_counters_land_in_the_registry() {
    let input = records(7);
    let cfg = config(EnumeratorKind::Fba, 2, Some("panic@align-route:0:2"));
    let healed = run(&cfg, &input);
    assert!(
        healed.restarts >= 1,
        "pipeline_restarts_total accounted the recovery"
    );
    assert_eq!(healed.final_health, HealthState::Healthy);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Randomized chaos: any single panic at a random (stage, subtask,
    /// ordinal) over a randomized workload heals to the uninterrupted
    /// run's exact delivery multiset.
    #[test]
    fn random_panic_site_heals_identically(
        seed in 0u64..1_000,
        kind_ix in 0usize..3,
        n in 1usize..=3,
        site_ix in 0usize..4,
        subtask in 0usize..3,
        ordinal in 0u64..3,
    ) {
        let site = ["align-route", "grid-query", "sync-shard", "enumerate"][site_ix];
        let subtask = subtask % n;
        // Low ordinals on a busy stage always fire; `sync-shard` sees one
        // batch per window per shard, so keep its ordinal at 0.
        let ordinal = if site == "sync-shard" { 0 } else { ordinal };
        let spec = format!("panic@{site}:{subtask}:{ordinal}");
        assert_chaos_equivalence(ENGINES[kind_ix], n, &spec, seed);
    }
}
