//! Property-based proof that sub-cell refinement is invisible to detection
//! semantics: on randomized skewed workloads, with the balancer forced to
//! split hot cells (and, in the thrash shape, to coalesce them right back),
//! the pipeline seals the *exact same pattern multiset* as the unrefined
//! static deployment — for all three enumeration engines, and across a
//! checkpoint/restore cut taken mid-refinement onto a *different*
//! parallelism and shard count.
//!
//! Why this must hold: `refine_expand` re-keys each window's objects onto
//! the balancer's current sub-cell tier with ε-padded replication at
//! sub-cell borders (the candidate pair set is provably unchanged — see
//! `prop_index.rs`), and splits/coalesces land strictly between windows,
//! so every window's cells are keyed under exactly one tree wherever the
//! routing table places them.

use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Canonical multiset form: every pattern (duplicates included) as a
/// sortable key.
fn multiset(patterns: &[Pattern]) -> Vec<(Vec<ObjectId>, Vec<Timestamp>)> {
    let mut out: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .iter()
        .map(|p| (p.objects.clone(), p.times.times().to_vec()))
        .collect();
    out.sort();
    out
}

fn skewed_records(seed: u64, objects: usize, ticks: u32) -> Vec<GpsRecord> {
    HotspotGenerator::new(HotspotConfig {
        num_objects: objects,
        num_ticks: ticks,
        area: 120.0,
        num_sites: 9,
        zipf_s: 1.4,
        retarget_every: 12,
        speed: 10.0,
        seed,
        ..HotspotConfig::default()
    })
    .traces()
    .to_gps_records()
}

/// `refined`: `None` = static unrefined baseline; `Some(coalesce_frac)` =
/// adaptive with refinement forced on (split at 5% of a fair share, depth
/// up to 2). A high `coalesce_frac` deliberately breaks hysteresis so
/// cells split and coalesce back window after window — the thrash shape.
fn config(
    kind: EnumeratorKind,
    parallelism: usize,
    refined: Option<f64>,
    sync_fanin: usize,
) -> IcpeConfig {
    let mut b = IcpeConfig::builder()
        .constraints(Constraints::new(3, 6, 3, 2).expect("valid"))
        .epsilon(1.0)
        .min_pts(3)
        .parallelism(parallelism)
        .sync_fanin(sync_fanin)
        .enumerator(kind);
    if let Some(coalesce_frac) = refined {
        b = b
            .rebalance(BalancerConfig {
                theta: 1.01,
                cooldown_windows: 0,
                ..BalancerConfig::default()
            })
            .refine_max_depth(2)
            .refine_split_frac(0.05)
            .refine_coalesce_frac(coalesce_frac);
    }
    b.build().expect("valid config")
}

fn run_collecting(config: &IcpeConfig, records: &[GpsRecord]) -> Vec<Pattern> {
    let sink: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&sink);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            out.lock().unwrap().push(p);
        }
    });
    for r in records {
        live.push(*r).unwrap();
    }
    live.finish();
    let patterns = std::mem::take(&mut *sink.lock().unwrap());
    patterns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Refined ≡ unrefined, all engines, forced splits — in both the
    /// hysteresis shape (cells stay split once hot) and the thrash shape
    /// (cells coalesce right back, exercising the re-key paths in both
    /// directions every few windows).
    #[test]
    fn refined_routing_seals_identical_pattern_multisets(
        seed in 0u64..500,
        parallelism in 2usize..5,
        kind_idx in 0usize..3,
        thrash in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let coalesce_frac = if thrash { 0.4 } else { 0.02 };
        let records = skewed_records(seed, 36, 24);
        let want = run_collecting(&config(kind, parallelism, None, 2), &records);
        let got = run_collecting(&config(kind, parallelism, Some(coalesce_frac), 2), &records);
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} thrash {}",
            kind,
            parallelism,
            thrash
        );
    }

    /// A checkpoint cut with sub-cells active restores onto a *different*
    /// parallelism (and shard count) and still seals the uninterrupted
    /// static run's multiset: the refinement tree rides the checkpoint,
    /// the restored balancer re-places sub-cell keys across the new
    /// subtask count, and no window is torn by the cut.
    #[test]
    fn restore_mid_refinement_onto_different_parallelism(
        seed in 0u64..500,
        kind_idx in 0usize..3,
        cut_windows in 8u32..16,
        grow in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let (p_before, p_after) = if grow { (2, 4) } else { (4, 2) };
        let records = skewed_records(seed, 36, 24);
        let want = run_collecting(&config(kind, p_before, None, 2), &records);

        // Cut at a record boundary of `cut_windows` full windows (36
        // records per tick: every object reports every tick).
        let cut = (cut_windows as usize * 36).min(records.len());
        let cfg = config(kind, p_before, Some(0.02), 2);
        let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pre);
        let live = IcpePipeline::launch(&cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        for r in &records[..cut] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        let delivered_before = pre.lock().unwrap().clone();
        drop(live); // crash: the end-of-stream flush is discarded

        let routing_ckpt = ckpt.routing.clone().expect("adaptive checkpoints carry routing");
        let cfg2 = config(kind, p_after, Some(0.02), 2);
        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&cfg2, &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        let resumed_epoch = resumed
            .routing_status()
            .expect("grid clusterer has routing")
            .epoch;
        prop_assert_eq!(
            resumed_epoch, routing_ckpt.epoch,
            "restore must resume on the checkpointed routing epoch"
        );
        for r in &records[cut..] {
            resumed.push(*r).unwrap();
        }
        resumed.finish();

        let mut got = delivered_before;
        got.extend(post.lock().unwrap().clone());
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} {}→{} cut {} refinements {}",
            kind,
            p_before,
            p_after,
            cut,
            routing_ckpt.refinements.len()
        );
    }
}

/// Deterministic companion: on a seed known to run hot, the cut really is
/// mid-refinement — the checkpoint carries an active tree and a non-zero
/// split count (so the proptests above are not vacuously passing with
/// refinement never triggering).
#[test]
fn forced_splits_actually_happen() {
    let records = skewed_records(7, 36, 24);
    let cfg = config(EnumeratorKind::Fba, 4, Some(0.02), 2);
    let live = IcpePipeline::launch(&cfg, |_| {});
    for r in &records[..(16 * 36).min(records.len())] {
        live.push(*r).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    let status = live.routing_status().expect("grid clusterer has routing");
    live.finish();
    let routing = ckpt.routing.expect("adaptive checkpoint carries routing");
    assert!(
        !routing.refinements.is_empty(),
        "expected an active refinement tree at the cut"
    );
    assert!(
        routing.splits > 0,
        "expected splits on the hotspot workload"
    );
    assert!(
        routing.assignments.iter().any(|a| a.level > 0),
        "sub-cell keys reach the placement"
    );
    assert!(status.refined_cells > 0, "STATUS gauges mirror the tree");
    assert!(status.splits > 0);
}
