//! Property-based end-to-end test: the distributed pipeline and the
//! synchronous engine report identical pattern sets on randomized planted
//! workloads, for every enumeration engine and any parallelism.

use icpe_core::{EnumeratorKind, IcpeConfig, IcpeEngine, IcpePipeline};
use icpe_gen::{GroupWalkConfig, GroupWalkGenerator};
use icpe_pattern::unique_object_sets;
use icpe_types::{Constraints, GpsRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_equals_engine_on_random_workloads(
        seed in 0u64..1_000,
        num_groups in 1usize..4,
        group_size in 3usize..6,
        gap_len in 0u32..4,
        parallelism in 1usize..5,
        kind_idx in 0usize..3,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let gen = GroupWalkGenerator::new(GroupWalkConfig {
            num_objects: num_groups * group_size + 8,
            num_groups,
            group_size,
            num_snapshots: 30,
            active_len: 10,
            gap_len,
            cohesion_radius: 0.6,
            seed,
            ..GroupWalkConfig::default()
        });
        let snaps = gen.snapshots();
        let config = IcpeConfig::builder()
            .constraints(Constraints::new(3, 8, 4, 3).expect("valid"))
            .epsilon(1.6)
            .min_pts(3)
            .parallelism(parallelism)
            .enumerator(kind)
            .build()
            .expect("valid config");

        // Synchronous engine.
        let mut engine = IcpeEngine::new(config.clone());
        let mut sync_patterns = Vec::new();
        for s in &snaps {
            sync_patterns.extend(engine.push_snapshot(s.clone()));
        }
        sync_patterns.extend(engine.finish());

        // Distributed pipeline over the equivalent record stream.
        let mut records: Vec<GpsRecord> = Vec::new();
        for s in &snaps {
            for e in &s.entries {
                records.push(GpsRecord::new(e.id, e.location, s.time, e.last_time));
            }
        }
        let out = IcpePipeline::run(&config, records);

        prop_assert_eq!(
            unique_object_sets(&out.patterns),
            unique_object_sets(&sync_patterns),
            "kind {:?} parallelism {}",
            kind,
            parallelism
        );
    }
}
