//! Property-based proof that adaptive (hotspot-rebalanced) routing is
//! invisible to detection semantics: on randomized skewed workloads, with
//! the balancer forced to migrate essentially every window, the pipeline
//! seals the *exact same pattern multiset* as static routing — for all
//! three enumeration engines, and across a checkpoint/restore cut taken
//! mid-migration (the restored deployment must also resume on the
//! checkpointed routing epoch).
//!
//! Why this must hold: a cell's objects all route to whichever subtask
//! the table names, and the table only swaps at window boundaries — so
//! every window's cell group is processed whole, wherever it lands.

use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Canonical multiset form: every pattern (duplicates included) as a
/// sortable key.
fn multiset(patterns: &[Pattern]) -> Vec<(Vec<ObjectId>, Vec<Timestamp>)> {
    let mut out: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .iter()
        .map(|p| (p.objects.clone(), p.times.times().to_vec()))
        .collect();
    out.sort();
    out
}

fn skewed_records(seed: u64, objects: usize, ticks: u32) -> Vec<GpsRecord> {
    HotspotGenerator::new(HotspotConfig {
        num_objects: objects,
        num_ticks: ticks,
        area: 120.0,
        num_sites: 9,
        zipf_s: 1.4,
        retarget_every: 12,
        speed: 10.0,
        seed,
        ..HotspotConfig::default()
    })
    .traces()
    .to_gps_records()
}

fn config(
    kind: EnumeratorKind,
    parallelism: usize,
    adaptive: bool,
    sync_fanin: usize,
) -> IcpeConfig {
    let mut b = IcpeConfig::builder()
        .constraints(Constraints::new(3, 6, 3, 2).expect("valid"))
        .epsilon(1.0)
        .min_pts(3)
        .parallelism(parallelism)
        .sync_fanin(sync_fanin)
        .enumerator(kind);
    if adaptive {
        // Migrate at the slightest imbalance, every window: the point is
        // to force as many mid-stream migrations as possible.
        b = b.rebalance(BalancerConfig {
            theta: 1.01,
            cooldown_windows: 0,
            ..BalancerConfig::default()
        });
    }
    b.build().expect("valid config")
}

fn run_collecting(config: &IcpeConfig, records: &[GpsRecord]) -> (Vec<Pattern>, u64) {
    let sink: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&sink);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            out.lock().unwrap().push(p);
        }
    });
    let routing = live.routing().cloned();
    for r in records {
        live.push(*r).unwrap();
    }
    live.finish();
    let epoch = routing.map_or(0, |r| r.status().epoch);
    let patterns = std::mem::take(&mut *sink.lock().unwrap());
    (patterns, epoch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Adaptive ≡ static, all engines, forced migrations — on both
    /// sharded-sync tree shapes (fanin 2 = interior combiner levels,
    /// fanin N = flat funnel): cell migrations re-route *query* work
    /// while the pair→shard keying stays fixed, so the merge path must
    /// absorb arbitrarily re-placed windows unchanged.
    #[test]
    fn adaptive_routing_seals_identical_pattern_multisets(
        seed in 0u64..500,
        parallelism in 2usize..5,
        kind_idx in 0usize..3,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let fanin = if deep_tree { 2 } else { parallelism.max(2) };
        let records = skewed_records(seed, 36, 24);
        let (want, _) = run_collecting(&config(kind, parallelism, false, fanin), &records);
        let (got, epoch) = run_collecting(&config(kind, parallelism, true, fanin), &records);
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} epoch {} fanin {}",
            kind,
            parallelism,
            epoch,
            fanin
        );
    }

    /// Adaptive with a checkpoint/restore cut mid-migration ≡ an
    /// uninterrupted static run, and the restored pipeline resumes on the
    /// checkpointed routing epoch. With parallelism > 2 at fanin 2 the
    /// barrier that takes the cut aligns at tree-*interior* combiner
    /// slots, which is exactly where a misaligned barrier would capture a
    /// torn window.
    #[test]
    fn restore_mid_migration_resumes_on_checkpointed_epoch(
        seed in 0u64..500,
        parallelism in 2usize..5,
        kind_idx in 0usize..3,
        cut_windows in 8u32..16,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        let fanin = if deep_tree { 2 } else { parallelism.max(2) };
        let records = skewed_records(seed, 36, 24);
        let (want, _) = run_collecting(&config(kind, parallelism, false, fanin), &records);

        // Cut at a record boundary of `cut_windows` full windows (36
        // records per tick: every object reports every tick).
        let cut = (cut_windows as usize * 36).min(records.len());
        let cfg = config(kind, parallelism, true, fanin);
        let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pre);
        let live = IcpePipeline::launch(&cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        for r in &records[..cut] {
            live.push(*r).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        let delivered_before = pre.lock().unwrap().clone();
        drop(live); // crash: the end-of-stream flush is discarded

        let routing_ckpt = ckpt.routing.clone().expect("adaptive checkpoints carry routing");
        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&cfg, &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        let resumed_epoch = resumed
            .routing_status()
            .expect("grid clusterer has routing")
            .epoch;
        prop_assert_eq!(
            resumed_epoch, routing_ckpt.epoch,
            "restore must resume on the checkpointed routing epoch"
        );
        for r in &records[cut..] {
            resumed.push(*r).unwrap();
        }
        resumed.finish();

        let mut got = delivered_before;
        got.extend(post.lock().unwrap().clone());
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} cut {} ckpt epoch {}",
            kind,
            parallelism,
            cut,
            routing_ckpt.epoch
        );
    }
}

/// Deterministic companion: on a seed known to migrate, the checkpoint's
/// routing section is populated and the epoch really advanced before the
/// cut (so the proptest above is not vacuously passing on epoch 0).
#[test]
fn forced_migrations_actually_happen() {
    let records = skewed_records(7, 36, 24);
    let cfg = config(EnumeratorKind::Fba, 4, true, 2);
    let live = IcpePipeline::launch(&cfg, |_| {});
    for r in &records[..(16 * 36).min(records.len())] {
        live.push(*r).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    live.finish();
    let routing = ckpt.routing.expect("adaptive checkpoint carries routing");
    assert!(
        routing.epoch > 0,
        "expected mid-stream migrations on the skewed workload"
    );
    assert!(routing.cells_migrated > 0);
    assert!(!routing.loads.is_empty(), "learned loads are checkpointed");
}
