//! Property-based proof that micro-batch vectorization is invisible to
//! detection semantics: on randomized skewed workloads the batched
//! pipeline seals the *exact same pattern multiset* as the record-at-a-time
//! (batch size 1) pipeline — for all three enumeration engines, across a
//! checkpoint/restore cut, and with the hotspot balancer forcing mid-stream
//! routing migrations on top.
//!
//! Why this must hold: batch buffers only defer *when* records cross an
//! exchange hop, never where they go or in what per-channel order; and
//! every broadcast-routed punctuation (snapshot tick, checkpoint barrier)
//! flushes the buffers first, so ticks and barriers land between batches
//! exactly as they landed between records.

use icpe_core::{BalancerConfig, EnumeratorKind, IcpeConfig, IcpePipeline, PipelineEvent};
use icpe_gen::{HotspotConfig, HotspotGenerator};
use icpe_types::{Constraints, GpsRecord, ObjectId, Pattern, Timestamp};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Canonical multiset form: every pattern (duplicates included) as a
/// sortable key.
fn multiset(patterns: &[Pattern]) -> Vec<(Vec<ObjectId>, Vec<Timestamp>)> {
    let mut out: Vec<(Vec<ObjectId>, Vec<Timestamp>)> = patterns
        .iter()
        .map(|p| (p.objects.clone(), p.times.times().to_vec()))
        .collect();
    out.sort();
    out
}

fn skewed_records(seed: u64, objects: usize, ticks: u32) -> Vec<GpsRecord> {
    HotspotGenerator::new(HotspotConfig {
        num_objects: objects,
        num_ticks: ticks,
        area: 120.0,
        num_sites: 9,
        zipf_s: 1.4,
        retarget_every: 12,
        speed: 10.0,
        seed,
        ..HotspotConfig::default()
    })
    .traces()
    .to_gps_records()
}

fn config(
    kind: EnumeratorKind,
    parallelism: usize,
    batch: usize,
    adaptive: bool,
    sync_fanin: usize,
) -> IcpeConfig {
    let mut b = IcpeConfig::builder()
        .constraints(Constraints::new(3, 6, 3, 2).expect("valid"))
        .epsilon(1.0)
        .min_pts(3)
        .parallelism(parallelism)
        .sync_fanin(sync_fanin)
        .enumerator(kind)
        .batch_size(batch);
    if adaptive {
        // Migrate at the slightest imbalance, every window: the point is
        // to force as many mid-stream migrations as possible while the
        // batched hops are in play.
        b = b.rebalance(BalancerConfig {
            theta: 1.01,
            cooldown_windows: 0,
            ..BalancerConfig::default()
        });
    }
    b.build().expect("valid config")
}

/// Runs the pipeline pushing records in ingest chunks of `chunk` (1 = the
/// single-record `push` path), collecting every sealed pattern.
fn run_collecting(config: &IcpeConfig, records: &[GpsRecord], chunk: usize) -> Vec<Pattern> {
    let sink: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&sink);
    let live = IcpePipeline::launch(config, move |e| {
        if let PipelineEvent::Pattern(p) = e {
            out.lock().unwrap().push(p);
        }
    });
    if chunk <= 1 {
        for r in records {
            live.push(*r).unwrap();
        }
    } else {
        for slice in records.chunks(chunk) {
            live.push_batch(slice.to_vec()).unwrap();
        }
    }
    live.finish();
    let patterns = std::mem::take(&mut *sink.lock().unwrap());
    patterns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched ≡ unbatched, all engines, arbitrary batch and ingest-chunk
    /// sizes — across the sharded-sync axis too: the tree fanin (2 = the
    /// deepest tree, N = the flat funnel) must be invisible to the sealed
    /// multiset, and the serial seed it is compared against is the
    /// parallelism-1 deployment whose sync path degenerates to the
    /// pre-sharding single funnel.
    #[test]
    fn batched_pipeline_seals_identical_pattern_multisets(
        seed in 0u64..500,
        parallelism in 2usize..5,
        kind_idx in 0usize..3,
        batch in 2usize..96,
        chunk in 1usize..80,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        // fanin ∈ {2, N}: the deepest aggregation tree vs the flat funnel.
        let fanin = if deep_tree { 2 } else { parallelism.max(2) };
        let records = skewed_records(seed, 36, 24);
        let want = run_collecting(&config(kind, 1, 1, false, 2), &records, 1);
        let got = run_collecting(&config(kind, parallelism, batch, false, fanin), &records, chunk);
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} batch {} chunk {} fanin {}",
            kind,
            parallelism,
            batch,
            chunk,
            fanin
        );
    }

    /// Batched + forced rebalance migrations + a checkpoint/restore cut
    /// mid-stream ≡ an uninterrupted unbatched static run — and the
    /// restored pipeline may even resume with a *different* batch size
    /// (batching is transport, not state). With parallelism > 2 and
    /// fanin 2 the barrier aligns through tree-*interior* combiner levels
    /// on both sides of the cut, and the restored deployment may run a
    /// different tree shape than the one that wrote the checkpoint.
    #[test]
    fn batched_restore_with_migrations_matches_unbatched(
        seed in 0u64..500,
        parallelism in 2usize..5,
        kind_idx in 0usize..3,
        batch in 2usize..96,
        resume_batch in 1usize..96,
        cut_windows in 8u32..16,
        deep_tree in proptest::bool::ANY,
    ) {
        let kind = [
            EnumeratorKind::Baseline,
            EnumeratorKind::Fba,
            EnumeratorKind::Vba,
        ][kind_idx];
        // fanin ∈ {2, N}; the resumed deployment uses the other shape.
        let fanin = if deep_tree { 2 } else { parallelism.max(2) };
        let resume_fanin = if deep_tree { parallelism.max(2) } else { 2 };
        let records = skewed_records(seed, 36, 24);
        let want = run_collecting(&config(kind, 1, 1, false, 2), &records, 1);

        // Cut at a record boundary of `cut_windows` full windows (36
        // records per tick: every object reports every tick).
        let cut = (cut_windows as usize * 36).min(records.len());
        let cfg = config(kind, parallelism, batch, true, fanin);
        let pre: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pre);
        let live = IcpePipeline::launch(&cfg, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        });
        for slice in records[..cut].chunks(batch) {
            live.push_batch(slice.to_vec()).unwrap();
        }
        let ckpt = live.checkpoint().unwrap();
        prop_assert_eq!(ckpt.records_ingested as usize, cut, "exact record-granular cut");
        let delivered_before = pre.lock().unwrap().clone();
        drop(live); // crash: the end-of-stream flush is discarded

        let resume_cfg = config(kind, parallelism, resume_batch, true, resume_fanin);
        let post: Arc<Mutex<Vec<Pattern>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&post);
        let resumed = IcpePipeline::launch_from(&resume_cfg, &ckpt, move |e| {
            if let PipelineEvent::Pattern(p) = e {
                sink.lock().unwrap().push(p);
            }
        })
        .unwrap();
        for slice in records[cut..].chunks(resume_batch) {
            resumed.push_batch(slice.to_vec()).unwrap();
        }
        resumed.finish();

        let mut got = delivered_before;
        got.extend(post.lock().unwrap().clone());
        prop_assert_eq!(
            multiset(&got),
            multiset(&want),
            "kind {:?} parallelism {} batch {} resume_batch {} cut {} fanin {}→{}",
            kind,
            parallelism,
            batch,
            resume_batch,
            cut,
            fanin,
            resume_fanin
        );
    }
}

/// Deterministic companion: the adaptive run in the proptest really does
/// migrate mid-stream under batching (so the combined property is not
/// vacuously passing on routing epoch 0).
#[test]
fn batched_migrations_actually_happen() {
    let records = skewed_records(7, 36, 24);
    let cfg = config(EnumeratorKind::Fba, 4, 64, true, 2);
    let live = IcpePipeline::launch(&cfg, |_| {});
    for slice in records.chunks(64) {
        live.push_batch(slice.to_vec()).unwrap();
    }
    let ckpt = live.checkpoint().unwrap();
    live.finish();
    let routing = ckpt.routing.expect("adaptive checkpoint carries routing");
    assert!(
        routing.epoch > 0,
        "expected mid-stream migrations on the skewed workload"
    );
}
