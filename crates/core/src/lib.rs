//! # icpe-core — the assembled ICPE framework
//!
//! Ties the substrates together into the paper's processing flow (Fig. 3):
//!
//! ```text
//! streaming GPS records
//!   → Discretization          (icpe-types::Discretizer)
//!   → Time alignment          (icpe-runtime::TimeAligner, §4 "last time")
//!   → Indexed clustering      (icpe-cluster: GridAllocate → GridQuery →
//!                              GridSync → DBSCAN, §5)
//!   → Pattern enumeration     (icpe-pattern: BA / FBA / VBA, §6)
//!   → co-movement patterns
//! ```
//!
//! Two deployment forms are provided:
//!
//! * [`IcpeEngine`] — a deterministic, single-threaded engine processing one
//!   snapshot at a time. The reference form: used by correctness tests, the
//!   per-phase latency benchmarks, and as the simplest API entry point.
//! * [`pipeline::IcpePipeline`] — the distributed streaming deployment on
//!   `icpe-runtime`: parallel keyed GridQuery subtasks, parallel keyed
//!   enumeration subtasks, broadcast snapshot-boundary ticks, and
//!   latency/throughput metrics — the paper's Flink job, in-process. Runs
//!   either batch ([`IcpePipeline::run`]) or live
//!   ([`IcpePipeline::launch`]): records pushed through a bounded channel,
//!   results delivered to a sink callback — the form the `icpe-serve`
//!   network layer deploys.

pub mod config;
pub mod engine;
pub mod pipeline;

pub use config::{
    ClustererKind, EnumeratorKind, IcpeConfig, IcpeConfigBuilder, Supervision, DEFAULT_SYNC_FANIN,
};
pub use engine::{IcpeEngine, StreamingEngine};
pub use icpe_cluster::{BalancerConfig, SyncStatus};
pub use icpe_runtime::AlignerStatus;
pub use icpe_runtime::RoutingStatus;
pub use pipeline::{
    AlignHandle, HealthHandle, HealthState, IcpePipeline, LivePipeline, PipelineEvent,
    PipelineOutput, RecordSender, RoutingHandle, SyncHandle,
};
