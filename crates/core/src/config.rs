//! ICPE configuration: every knob of Table 3 plus deployment options.

use icpe_cluster::BalancerConfig;
use icpe_pattern::Semantics;
use icpe_runtime::{AlignerConfig, FaultPlan, RuntimeConfig};
use icpe_types::{Constraints, DbscanParams, DistanceMetric, TypeError};
use std::sync::Arc;
use std::time::Duration;

/// Self-healing supervision policy (see `IcpePipeline::launch` with
/// [`IcpeConfigBuilder::supervised`]): how the supervisor restarts the
/// dataflow after a subtask dies, and how often it takes automatic
/// checkpoints to bound the replay buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervision {
    /// Restart attempts before the pipeline goes terminally `Failed`.
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per consecutive restart.
    pub backoff: Duration,
    /// Backoff ceiling for the exponential schedule.
    pub max_backoff: Duration,
    /// Take an automatic checkpoint every this many ingested records
    /// (`None` disables them). Record-count cadence keeps the cut — and
    /// therefore recovery — deterministic, and bounds both the replay
    /// buffer and the dedup ledger the supervisor keeps between cuts.
    pub checkpoint_every_records: Option<u64>,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            max_restarts: 5,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            checkpoint_every_records: Some(8192),
        }
    }
}

/// Which clustering method runs in the clustering phase (§7.1 comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClustererKind {
    /// The paper's range-join clustering (GridAllocate + GridQuery with
    /// Lemmas 1–2, then DBSCAN).
    #[default]
    Rjc,
    /// The SRJ baseline: full-region replication, build-then-query.
    Srj,
    /// The GDC baseline: ε-grid DBSCAN, single partition.
    Gdc,
}

impl ClustererKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ClustererKind::Rjc => "RJC",
            ClustererKind::Srj => "SRJ",
            ClustererKind::Gdc => "GDC",
        }
    }
}

/// Default fanin of the sharded GridSync aggregation tree: how many
/// partial merges each combiner absorbs. 4 keeps the tree at most one
/// interior level deep up to parallelism 16 while still fanning the
/// dedup work out; `≥ N` degrades to a flat N → 1 funnel.
pub const DEFAULT_SYNC_FANIN: usize = 4;

/// Which enumeration engine runs in the pattern phase (§7.2 comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumeratorKind {
    /// Baseline (SPARE adapted): exponential subset enumeration.
    Baseline,
    /// Fixed-length bit compression (best latency).
    #[default]
    Fba,
    /// Variable-length bit compression (best throughput).
    Vba,
}

impl EnumeratorKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            EnumeratorKind::Baseline => "B",
            EnumeratorKind::Fba => "F",
            EnumeratorKind::Vba => "V",
        }
    }
}

/// Full ICPE configuration. Build with [`IcpeConfig::builder`].
#[derive(Debug, Clone)]
pub struct IcpeConfig {
    /// Grid cell width `lg` of the GR-index.
    pub lg: f64,
    /// DBSCAN density parameters (ε, minPts).
    pub dbscan: DbscanParams,
    /// Distance metric (defaults to Chebyshev — the paper's square range
    /// region; see `icpe-types`).
    pub metric: DistanceMetric,
    /// The `CP(M, K, L, G)` pattern constraints.
    pub constraints: Constraints,
    /// Temporal validity semantics (default: Definition-4 subsequence).
    pub semantics: Semantics,
    /// Clustering method.
    pub clusterer: ClustererKind,
    /// Enumeration engine.
    pub enumerator: EnumeratorKind,
    /// Parallelism `N` of the keyed stages (GridQuery, GridSync shards,
    /// enumeration) in the streaming deployment — the paper's machine
    /// count.
    pub parallelism: usize,
    /// Fanin of the GridSync aggregation tree (clamped ≥ 2): the sharded
    /// sync stage's `N` partial merges reduce through ⌈N/fanin⌉ combiners
    /// per level down to one finalizer. Ignored by GDC.
    pub sync_fanin: usize,
    /// Parallelism of the sharded aligner head (TimeAligner + fused
    /// GridAllocate), keyed by trajectory id. Defaults to `parallelism`;
    /// `1` degenerates to a single aligner shard behind the frontier
    /// router. Ignored by GDC, which keeps the serial head.
    pub align_shards: usize,
    /// Runtime channel capacity (backpressure depth).
    pub runtime: RuntimeConfig,
    /// Stream time-alignment settings.
    pub aligner: AlignerConfig,
    /// Baseline guard (see `icpe-pattern`).
    pub max_baseline_partition: usize,
    /// Hotspot-aware adaptive cell routing for the keyed GridQuery stage:
    /// `Some` runs the load balancer (see `icpe_cluster::balance`) and
    /// swaps cell→subtask routes at window boundaries; `None` (default)
    /// keeps the paper's static `hash(cell) % N` exchange. Ignored by the
    /// GDC clusterer, which has no keyed grid stage.
    pub rebalance: Option<BalancerConfig>,
    /// Per-stage/per-exchange instrumentation (default `true`): every
    /// stage records batch-processing-time histograms and records in/out,
    /// every exchange hop records queue depth and blocked-send time, into
    /// the pipeline's metric registry. `false` leaves the registry empty
    /// (the no-op baseline `bench_throughput --check` compares overhead
    /// against); the registry itself and the event journal always exist.
    pub instrument: bool,
    /// Self-healing supervision: `Some` makes `IcpePipeline::launch` wrap
    /// the dataflow in a supervisor that catches subtask panics, restores
    /// the latest (in-memory) checkpoint, replays the records since the
    /// cut, and suppresses duplicate deliveries across the recovery —
    /// `None` (default) keeps the fail-fast behavior where a subtask panic
    /// propagates out of `LivePipeline::finish`.
    pub supervision: Option<Supervision>,
}

impl IcpeConfig {
    /// Starts a builder with the Table-3 default shape (clustering defaults
    /// must still be scaled to the workload's coordinate units via
    /// [`IcpeConfigBuilder::epsilon`] / [`IcpeConfigBuilder::grid_width`]).
    pub fn builder() -> IcpeConfigBuilder {
        IcpeConfigBuilder::default()
    }

    /// The engine-side configuration for the pattern phase.
    pub(crate) fn engine_config(&self) -> icpe_pattern::EngineConfig {
        let mut cfg = icpe_pattern::EngineConfig::new(self.constraints);
        cfg.semantics = self.semantics;
        cfg.max_baseline_partition = self.max_baseline_partition;
        cfg
    }
}

/// Builder for [`IcpeConfig`].
#[derive(Debug, Clone)]
pub struct IcpeConfigBuilder {
    lg: Option<f64>,
    eps: f64,
    min_pts: usize,
    metric: DistanceMetric,
    constraints: Option<Constraints>,
    semantics: Semantics,
    clusterer: ClustererKind,
    enumerator: EnumeratorKind,
    parallelism: usize,
    sync_fanin: usize,
    align_shards: Option<usize>,
    runtime: RuntimeConfig,
    aligner: AlignerConfig,
    max_baseline_partition: usize,
    rebalance: Option<BalancerConfig>,
    instrument: bool,
    supervision: Option<Supervision>,
}

impl Default for IcpeConfigBuilder {
    fn default() -> Self {
        IcpeConfigBuilder {
            lg: None,
            eps: 1.0,
            min_pts: 10,
            metric: DistanceMetric::Chebyshev,
            constraints: None,
            semantics: Semantics::default(),
            clusterer: ClustererKind::default(),
            enumerator: EnumeratorKind::default(),
            parallelism: 4,
            sync_fanin: DEFAULT_SYNC_FANIN,
            align_shards: None,
            runtime: RuntimeConfig::default(),
            aligner: AlignerConfig::default(),
            max_baseline_partition: 22,
            rebalance: None,
            instrument: true,
            supervision: None,
        }
    }
}

impl IcpeConfigBuilder {
    /// Sets the pattern constraints `CP(M, K, L, G)` (required).
    pub fn constraints(mut self, c: Constraints) -> Self {
        self.constraints = Some(c);
        self
    }

    /// Sets the DBSCAN distance threshold ε (required in workload units).
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets DBSCAN's `minPts` (default 10, the paper's fixed value).
    pub fn min_pts(mut self, min_pts: usize) -> Self {
        self.min_pts = min_pts;
        self
    }

    /// Sets the grid cell width `lg` (default: `8 × ε`, a mid-range choice
    /// on the paper's Figure-11 sweet spot).
    pub fn grid_width(mut self, lg: f64) -> Self {
        self.lg = Some(lg);
        self
    }

    /// Sets the distance metric.
    pub fn metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the temporal validity semantics.
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Selects the clustering method.
    pub fn clusterer(mut self, kind: ClustererKind) -> Self {
        self.clusterer = kind;
        self
    }

    /// Selects the enumeration engine.
    pub fn enumerator(mut self, kind: EnumeratorKind) -> Self {
        self.enumerator = kind;
        self
    }

    /// Sets the keyed-stage parallelism `N`.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Sets the GridSync aggregation-tree fanin (default
    /// [`DEFAULT_SYNC_FANIN`], clamped ≥ 2). `fanin ≥ N` collapses the
    /// tree to a flat N → 1 funnel.
    pub fn sync_fanin(mut self, fanin: usize) -> Self {
        self.sync_fanin = fanin.max(2);
        self
    }

    /// Sets the aligner-head shard count (default: follow `parallelism`,
    /// clamped ≥ 1). The sealed output is shard-count-invariant — the
    /// equivalence battery in `aligner_equivalence.rs` pins this — so the
    /// knob is purely a throughput/latency trade.
    pub fn align_shards(mut self, shards: usize) -> Self {
        self.align_shards = Some(shards.max(1));
        self
    }

    /// Overrides the runtime settings.
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the records-per-batch of every exchange hop (micro-batch
    /// vectorization; default [`icpe_runtime::DEFAULT_BATCH_SIZE`]). `1`
    /// restores record-at-a-time transfers — the pre-batching dataflow and
    /// the baseline `bench_throughput` compares against. Batching is
    /// invisible to detection semantics: ticks and checkpoint barriers
    /// always land between batches, so the sealed pattern multiset is
    /// identical at every batch size.
    pub fn batch_size(mut self, records: usize) -> Self {
        self.runtime.batch_size = records.max(1);
        self
    }

    /// Sets the inter-subtask channel capacity in batches (backpressure
    /// depth; default 1024).
    pub fn channel_capacity(mut self, batches: usize) -> Self {
        self.runtime.channel_capacity = batches.max(1);
        self
    }

    /// Overrides the aligner settings.
    pub fn aligner(mut self, aligner: AlignerConfig) -> Self {
        self.aligner = aligner;
        self
    }

    /// Overrides the Baseline partition-size guard.
    pub fn max_baseline_partition(mut self, n: usize) -> Self {
        self.max_baseline_partition = n;
        self
    }

    /// Enables hotspot-aware adaptive cell routing with the given
    /// balancer settings ([`BalancerConfig::default`] for the stock
    /// thresholds).
    pub fn rebalance(mut self, config: BalancerConfig) -> Self {
        self.rebalance = Some(config);
        self
    }

    /// Sets the maximum sub-cell refinement depth of the adaptive balancer
    /// (default 0 = refinement off). Depth `d` lets a hot base cell split
    /// into up to `4^d` sub-cells, lifting the cell-granularity floor of
    /// the placement. Implies [`IcpeConfigBuilder::rebalance`] with stock
    /// thresholds when no balancer config was set yet.
    pub fn refine_max_depth(mut self, depth: u8) -> Self {
        self.rebalance
            .get_or_insert_with(BalancerConfig::default)
            .refine_max_depth = depth;
        self
    }

    /// Sets the split trigger: a cell is refined one level deeper when its
    /// decayed load exceeds this fraction of a subtask's fair share
    /// (default 0.5). Implies `rebalance` like
    /// [`IcpeConfigBuilder::refine_max_depth`].
    pub fn refine_split_frac(mut self, frac: f64) -> Self {
        self.rebalance
            .get_or_insert_with(BalancerConfig::default)
            .refine_split_frac = frac;
        self
    }

    /// Sets the coalesce trigger: a refined base cell folds one level back
    /// when its total decayed load falls below this fraction of a fair
    /// share (default 0.15; keep well under `refine_split_frac` for
    /// hysteresis). Implies `rebalance` like
    /// [`IcpeConfigBuilder::refine_max_depth`].
    pub fn refine_coalesce_frac(mut self, frac: f64) -> Self {
        self.rebalance
            .get_or_insert_with(BalancerConfig::default)
            .refine_coalesce_frac = frac;
        self
    }

    /// Toggles per-stage/per-exchange instrumentation (default `true`;
    /// `false` is the no-op-registry baseline the overhead check in
    /// `bench_throughput` compares against).
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Enables self-healing supervision with the given restart/backoff
    /// policy ([`Supervision::default`] for the stock one).
    pub fn supervised(mut self, policy: Supervision) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Installs a deterministic fault-injection plan (the chaos harness):
    /// worker panics/stalls and exchange delays/drops fire at the keyed
    /// logical positions. Checkpoint-write faults from the same plan are
    /// wired separately, at the persist layer. Testing only.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.runtime.fault = Some(plan);
        self
    }

    /// Validates and builds the configuration.
    pub fn build(self) -> Result<IcpeConfig, TypeError> {
        let constraints = self.constraints.ok_or_else(|| {
            TypeError::InvalidConstraints("constraints(M,K,L,G) must be provided".into())
        })?;
        let dbscan = DbscanParams::new(self.eps, self.min_pts)?;
        let lg = self.lg.unwrap_or(8.0 * self.eps);
        if lg <= 0.0 || !lg.is_finite() {
            return Err(TypeError::InvalidDbscanParams(format!(
                "grid width must be positive and finite, got {lg}"
            )));
        }
        Ok(IcpeConfig {
            lg,
            dbscan,
            metric: self.metric,
            constraints,
            semantics: self.semantics,
            clusterer: self.clusterer,
            enumerator: self.enumerator,
            parallelism: self.parallelism,
            sync_fanin: self.sync_fanin,
            align_shards: self.align_shards.unwrap_or(self.parallelism).max(1),
            runtime: self.runtime,
            aligner: self.aligner,
            max_baseline_partition: self.max_baseline_partition,
            rebalance: self.rebalance,
            instrument: self.instrument,
            supervision: self.supervision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_constraints() {
        assert!(IcpeConfig::builder().build().is_err());
    }

    #[test]
    fn builder_defaults_are_sane() {
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(3, 4, 2, 2).unwrap())
            .epsilon(0.5)
            .build()
            .unwrap();
        assert_eq!(c.lg, 4.0); // 8 × ε
        assert_eq!(c.dbscan.min_pts, 10);
        assert_eq!(c.clusterer, ClustererKind::Rjc);
        assert_eq!(c.enumerator, EnumeratorKind::Fba);
        assert!(c.parallelism >= 1);
    }

    #[test]
    fn builder_rejects_bad_eps() {
        let b = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .epsilon(-1.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(ClustererKind::Rjc.name(), "RJC");
        assert_eq!(ClustererKind::Srj.name(), "SRJ");
        assert_eq!(ClustererKind::Gdc.name(), "GDC");
        assert_eq!(EnumeratorKind::Baseline.name(), "B");
        assert_eq!(EnumeratorKind::Fba.name(), "F");
        assert_eq!(EnumeratorKind::Vba.name(), "V");
    }

    #[test]
    fn parallelism_clamps_to_one() {
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .parallelism(0)
            .build()
            .unwrap();
        assert_eq!(c.parallelism, 1);
    }

    #[test]
    fn align_shards_follows_parallelism_unless_set() {
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .parallelism(6)
            .build()
            .unwrap();
        assert_eq!(c.align_shards, 6);
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .parallelism(6)
            .align_shards(0)
            .build()
            .unwrap();
        assert_eq!(c.align_shards, 1, "explicit value clamps to ≥ 1");
    }

    #[test]
    fn refine_knobs_imply_rebalance() {
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .refine_max_depth(2)
            .refine_split_frac(0.4)
            .refine_coalesce_frac(0.1)
            .build()
            .unwrap();
        let b = c.rebalance.expect("refine knobs enable the balancer");
        assert_eq!(b.refine_max_depth, 2);
        assert_eq!(b.refine_split_frac, 0.4);
        assert_eq!(b.refine_coalesce_frac, 0.1);
    }

    #[test]
    fn sync_fanin_defaults_and_clamps() {
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .build()
            .unwrap();
        assert_eq!(c.sync_fanin, DEFAULT_SYNC_FANIN);
        let c = IcpeConfig::builder()
            .constraints(Constraints::new(2, 2, 1, 1).unwrap())
            .sync_fanin(0)
            .build()
            .unwrap();
        assert_eq!(c.sync_fanin, 2);
    }
}
